"""Bulk analysis engine throughput: batched vs scalar on 50k requests.

The acceptance benchmark for the vectorized analysis engine: build a
50,000-request synthetic warehouse with a *recurring* very short
bottleneck (one VLRT burst every 10 s — the paper's VSBs recur
throughout a run, so a real diagnosis walks dozens of anomaly
windows), then time the pre-engine scalar workflow against the bulk
workflow and assert a >=10x end-to-end speedup — plus, the part that
makes the speedup trustworthy, identical outputs from both.

The scalar baseline is preserved *here*, verbatim from the pre-cache
engine, so it cannot silently inherit later optimizations:

* ``scalar_reference_reconstruct`` issues one query per tier table
  per request and re-reads each table's schema per call (the code
  predates MScopeDB's schema cache);
* ``ScalarReferenceDiagnoser`` re-pulls every tier's boundary spans
  and every candidate's series from SQL per anomaly window, and
  re-runs the O(n log n) VLRT detection per window for the
  interaction-skew table.
"""

import time

import pytest

from repro.analysis.anomaly import detect_vlrt
from repro.analysis.causal import CausalHop, CausalPath, reconstruct_paths_bulk
from repro.analysis.diagnosis import Diagnoser, QueueFinding
from repro.analysis.metrics import metric_series
from repro.analysis.queues import tier_queue_lengths
from repro.common.timebase import ms
from repro.warehouse.db import MScopeDB, quote_identifier

from conftest import report
from record import record

EPOCH = 1_000_000_000
MS = 1_000
N_REQUESTS = 50_000
SPACING_US = 10 * MS  # one request every 10 ms -> ~500 s of traffic
BURST_PERIOD_MS = 10_000  # a VSB flares every 10 s
BURST_SIZE = 10

TIER_TABLES = {
    "apache": "apache_events_web1",
    "tomcat": "tomcat_events_app1",
    "mysql": "mysql_events_db1",
}

EVENT_COLUMNS = [
    ("request_id", "TEXT"),
    ("interaction", "TEXT"),
    ("upstream_arrival_us", "INTEGER"),
    ("upstream_departure_us", "INTEGER"),
]


def _burst_starts_ms():
    duration_ms = (N_REQUESTS * SPACING_US) // 1_000
    return range(BURST_PERIOD_MS, duration_ms - 2_000, BURST_PERIOD_MS)


def _request_spans():
    """50k requests: healthy traffic plus one VLRT burst every 10 s."""
    bursts = list(_burst_starts_ms())
    healthy = N_REQUESTS - BURST_SIZE * len(bursts)
    spans = [(i * SPACING_US, i * SPACING_US + 5 * MS) for i in range(healthy)]
    for start_ms in bursts:
        spans += [
            (start_ms * MS + i * MS, (start_ms + 300) * MS + i * MS)
            for i in range(BURST_SIZE)
        ]
    return spans


@pytest.fixture(scope="module")
def big_warehouse(tmp_path_factory):
    db = MScopeDB(tmp_path_factory.mktemp("bench_diag") / "mscope.db")
    spans = _request_spans()
    interactions = ("ViewStory", "StoryDetail", "Login", "PostComment")
    for tier_index, table in enumerate(TIER_TABLES.values()):
        # Each tier sees the request slightly later for slightly less
        # time — a plausible nesting that keeps hop order non-trivial.
        pad = 500 * tier_index
        db.create_table(table, EVENT_COLUMNS)
        db.insert_rows(
            table,
            [c for c, _ in EVENT_COLUMNS],
            (
                (
                    f"R0A{i:09d}",
                    interactions[i % 4],
                    EPOCH + a + pad,
                    EPOCH + d - pad,
                )
                for i, (a, d) in enumerate(spans)
            ),
        )
        # The importer builds this index on real warehouses; without it
        # the scalar baseline degenerates to 150k full scans and the
        # comparison flatters the bulk engine dishonestly.
        db.create_index(table, "request_id")
    duration_s = (N_REQUESTS * SPACING_US) // 1_000_000
    samples = duration_s * 20  # one disk sample per 50 ms
    per_burst = BURST_PERIOD_MS // 50  # sample indices between bursts

    def disk_value(i):
        # Saturated during each burst's first 400 ms, quiet otherwise.
        return 97.0 if i >= per_burst and i % per_burst < 8 else 6.0

    db.create_table(
        "collectl_db1", [("timestamp_us", "INTEGER"), ("dsk_pctutil", "REAL")]
    )
    db.insert_rows(
        "collectl_db1",
        ["timestamp_us", "dsk_pctutil"],
        ((EPOCH + i * 50 * MS, disk_value(i)) for i in range(samples)),
    )
    db.register_monitor("collectl", "db1", "p", "collectl_csv", "collectl_db1")
    db.create_table(
        "collectl_web1", [("timestamp_us", "INTEGER"), ("mem_dirty", "INTEGER")]
    )
    db.insert_rows(
        "collectl_web1",
        ["timestamp_us", "mem_dirty"],
        ((EPOCH + i * 50 * MS, 20_000) for i in range(samples)),
    )
    db.register_monitor("collectl", "web1", "p", "collectl_csv", "collectl_web1")
    yield db
    db.close()


# ----------------------------------------------------------------------
# the preserved scalar baseline


def scalar_reference_reconstruct(db, request_id, tier_tables):
    """Pre-engine ``reconstruct_path``: per-tier point queries, with
    the schema re-read from the catalog on every call (verbatim from
    before MScopeDB grew its schema cache)."""
    hops = []
    for tier, table in tier_tables.items():
        rows = db.query(f"PRAGMA table_info({quote_identifier(table)})")
        overrides = dict(
            db.query(
                "SELECT column_name, sql_type FROM schema_catalog "
                "WHERE table_name = ?",
                (table,),
            )
        )
        columns = {row[1] for row in rows}
        del overrides  # fetched (as the old table_schema did), unused here
        if "request_id" not in columns:
            continue
        select_ds = (
            "downstream_sending_us" if "downstream_sending_us" in columns else "NULL"
        )
        select_dr = (
            "downstream_receiving_us"
            if "downstream_receiving_us" in columns
            else "NULL"
        )
        rows = db.query(
            f"SELECT upstream_arrival_us, upstream_departure_us, "
            f"{select_ds}, {select_dr} FROM {quote_identifier(table)} "
            f"WHERE request_id = ? ORDER BY upstream_arrival_us, rowid",
            (request_id,),
        )
        for arrival, departure, sending, receiving in rows:
            hops.append(
                CausalHop(
                    tier=tier,
                    upstream_arrival_us=arrival,
                    upstream_departure_us=departure,
                    downstream_sending_us=sending,
                    downstream_receiving_us=receiving,
                )
            )
    hops.sort(key=lambda h: h.upstream_arrival_us)
    return CausalPath(request_id=request_id, hops=hops)


class ScalarReferenceDiagnoser(Diagnoser):
    """The pre-cache diagnosis engine, preserved as the baseline.

    Re-pulls every tier's boundary spans and every candidate's series
    from SQL *per anomaly window*, and re-detects VLRTs per window for
    the interaction table — the N+1 patterns the SeriesCache and the
    hoisted skew inputs removed.  Only the three analysis stages are
    overridden; detection, ranking, and report assembly stay shared,
    so output differences could only come from the data path under
    test.
    """

    def _queue_analysis(self, window, horizon, step):
        context_start = max(0, window.start - ms(1_000))
        context_stop = min(horizon, window.stop + ms(1_000))
        queues = tier_queue_lengths(
            self.db,
            self.tier_tables,
            context_start,
            context_stop,
            step,
            self.epoch_us,
        )
        findings = []
        for tier, series in queues.items():
            inside = series.window(window.start, window.stop)
            outside_values = [
                series.window(context_start, window.start).mean(),
                series.window(window.stop, context_stop).mean(),
            ]
            baseline = sum(outside_values) / len(outside_values)
            findings.append(
                QueueFinding(
                    tier=tier, peak_queue=inside.max(), baseline_queue=baseline
                )
            )
        pushback = [f.tier for f in findings if f.amplification >= 3.0]
        front_tier = next(iter(self.tier_tables))
        return findings, pushback, queues[front_tier]

    def _resource_analysis(self, window, candidates, front_queue, queue_step_us):
        causes = []
        for candidate in candidates:
            series = metric_series(
                self.db,
                candidate.table,
                candidate.columns,
                epoch_us=self.epoch_us,
                start=window.start - ms(500),
                stop=window.stop + ms(500),
            )
            if series.is_empty():
                continue
            inside = series.window(window.start, window.stop)
            if inside.is_empty():
                continue
            if candidate.kind == "dirty_pages":
                cause = self._dirty_page_cause(candidate, inside)
            else:
                cause = self._saturation_cause(
                    candidate, inside, front_queue, series
                )
            if cause is not None:
                causes.append(cause)
        causes.sort(key=lambda c: c.score, reverse=True)
        return causes

    def _interaction_analysis(self, window, skew):
        vlrt_counts = {}
        totals = {}
        vlrt_ids = {
            v.request_id
            for v in detect_vlrt(skew.completions)
            if window.start <= v.completed_at <= window.stop
        }
        for sample in skew.completions:
            if not sample.interaction:
                continue
            totals[sample.interaction] = totals.get(sample.interaction, 0) + 1
            if sample.request_id in vlrt_ids:
                vlrt_counts[sample.interaction] = (
                    vlrt_counts.get(sample.interaction, 0) + 1
                )
        return {
            name: (count, count / totals[name])
            for name, count in vlrt_counts.items()
        }


# ----------------------------------------------------------------------


def test_bulk_engine_speedup(big_warehouse):
    db = big_warehouse
    ids = [f"R0A{i:09d}" for i in range(N_REQUESTS)]
    expected_windows = len(list(_burst_starts_ms()))

    # Two timed rounds per engine, keeping each side's minimum: the
    # ratio under test is engine cost, not scheduler noise, and the
    # minimum is the least-contended observation of each.
    scalar_s = bulk_s = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        scalar_paths = [
            scalar_reference_reconstruct(db, rid, TIER_TABLES) for rid in ids
        ]
        scalar_reports = ScalarReferenceDiagnoser(db, epoch_us=EPOCH).diagnose()
        scalar_s = min(scalar_s, time.perf_counter() - t0)

    for _ in range(2):
        t0 = time.perf_counter()
        bulk_diagnoser = Diagnoser(db, epoch_us=EPOCH)
        bulk_paths = list(reconstruct_paths_bulk(db, ids, TIER_TABLES))
        bulk_reports = bulk_diagnoser.diagnose()
        bulk_s = min(bulk_s, time.perf_counter() - t0)

    # Identical answers first — a fast wrong engine is worthless.
    assert len(bulk_paths) == len(scalar_paths) == N_REQUESTS
    assert all(
        b.request_id == s.request_id and b.hops == s.hops
        for b, s in zip(bulk_paths[::977], scalar_paths[::977])
    )
    assert bulk_reports == scalar_reports
    assert len(bulk_reports) == expected_windows

    speedup = scalar_s / bulk_s
    report(
        f"Diagnosis throughput: bulk vs scalar "
        f"(50k requests, {expected_windows} anomaly windows)",
        f"scalar reconstruct+diagnose: {scalar_s:8.2f} s\n"
        f"bulk   reconstruct+diagnose: {bulk_s:8.2f} s\n"
        f"end-to-end speedup:          {speedup:8.1f}x\n"
        f"series-cache hits/misses:    "
        f"{bulk_diagnoser.cache.hits}/{bulk_diagnoser.cache.misses}",
    )
    record(
        "bulk_engine_speedup",
        requests=N_REQUESTS,
        anomaly_windows=expected_windows,
        scalar_s=round(scalar_s, 3),
        bulk_s=round(bulk_s, 3),
        speedup=round(speedup, 1),
        cache_hits=bulk_diagnoser.cache.hits,
        cache_misses=bulk_diagnoser.cache.misses,
    )
    assert speedup >= 10.0, f"bulk engine only {speedup:.1f}x faster"


def test_parallel_windows_match_serial(big_warehouse):
    """jobs=N on the big warehouse: identical reports, wall time shown."""
    db = big_warehouse
    t0 = time.perf_counter()
    serial = Diagnoser(db, epoch_us=EPOCH).diagnose()
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = Diagnoser(db, epoch_us=EPOCH, jobs=4).diagnose()
    parallel_s = time.perf_counter() - t0
    assert parallel == serial
    report(
        "Parallel window fan-out (jobs=4)",
        f"serial:   {serial_s:6.2f} s\nparallel: {parallel_s:6.2f} s\n"
        f"(identical reports either way)",
    )
    record(
        "parallel_windows",
        serial_s=round(serial_s, 3),
        parallel_s=round(parallel_s, 3),
        jobs=4,
    )
