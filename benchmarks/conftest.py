"""Shared scenario runs for the figure benchmarks.

Scenario simulations are the expensive part; each is run once per
session and every benchmark measures its analysis stage against it.
The reproduced figure text is printed so a benchmark run doubles as a
results report (see EXPERIMENTS.md).
"""

import pytest

from repro.experiments.scenarios import (
    baseline_run,
    load_warehouse,
    scenario_a,
    scenario_b,
)
from repro.common.timebase import seconds

#: Workloads used by the overhead sweeps (paper: 1000–8000 users).
OVERHEAD_WORKLOADS = (1000, 2000, 4000, 8000)
#: Run length for evaluation runs (paper: 7 min; scaled for a laptop).
EVAL_DURATION = seconds(6)


def report(title: str, text: str) -> None:
    """Print a reproduced-figure block into the benchmark output."""
    print(f"\n=== {title} ===\n{text}\n")


@pytest.fixture(scope="session")
def scenario_a_run(tmp_path_factory):
    return scenario_a(log_dir=tmp_path_factory.mktemp("bench_a_logs"))


@pytest.fixture(scope="session")
def scenario_a_db(scenario_a_run):
    return load_warehouse(scenario_a_run)


@pytest.fixture(scope="session")
def scenario_b_run(tmp_path_factory):
    return scenario_b(log_dir=tmp_path_factory.mktemp("bench_b_logs"))


@pytest.fixture(scope="session")
def accuracy_run():
    return baseline_run(8000, duration=EVAL_DURATION, with_sysviz=True)
