"""Figure 5 — request execution-path reconstruction.

Paper shape: joining the event records sharing one request ID across
every tier reconstructs the execution path explicitly, establishing
happens-before relationships among the component servers.
"""

from conftest import report
from repro.analysis.causal import reconstruct_path
from repro.experiments.figures_anomaly import figure_05


def test_fig05_causal_path_ground_truth(benchmark, scenario_a_run):
    result = benchmark(figure_05, scenario_a_run)
    report("Figure 5 (trace view)", result.to_text())
    arrivals = [hop.upstream_arrival for hop in result.hops]
    assert arrivals == sorted(arrivals)


def test_fig05_causal_path_from_warehouse(benchmark, scenario_a_run, scenario_a_db):
    slowest = max(
        scenario_a_run.result.traces, key=lambda t: t.response_time()
    )

    def reconstruct():
        return reconstruct_path(scenario_a_db, slowest.request_id)

    path = benchmark(reconstruct)
    path.validate_happens_before()
    report(
        "Figure 5 (warehouse join)",
        f"request {path.request_id}: {len(path.hops)} hops, "
        f"dominant tier {path.dominant_tier()}, "
        f"breakdown {path.tier_breakdown_ms()}",
    )
    assert abs(path.response_time_ms() - slowest.response_time_ms()) < 5.0
