"""Kernel and simulator throughput benchmarks.

Not paper results — these measure the substrate itself: raw event
throughput of the discrete-event kernel and end-to-end simulated
requests per wall-second of the full four-tier system.  They guard
against performance regressions that would make the figure sweeps
impractically slow.
"""

from repro.common.timebase import ms, seconds
from repro.ntier import NTierSystem, SystemConfig
from repro.rubbos import WorkloadSpec
from repro.sim import Engine


def test_kernel_event_throughput(benchmark):
    """Pure engine: a ping-pong of timeouts (two events per round)."""

    def run_kernel():
        engine = Engine()

        def ticker():
            for _ in range(50_000):
                yield engine.timeout(10)

        engine.process(ticker())
        engine.run()
        return engine.now

    final = benchmark(run_kernel)
    assert final == 500_000


def test_full_system_simulation_rate(benchmark):
    """Whole testbed: simulated requests per benchmark round."""

    def run_system():
        config = SystemConfig(
            workload=WorkloadSpec(
                users=150, think_time_us=ms(700), ramp_up_us=ms(200)
            ),
            seed=3,
        )
        result = NTierSystem(config).run(seconds(2))
        return len(result.traces)

    completed = benchmark.pedantic(run_system, rounds=3, iterations=1)
    assert completed > 300
