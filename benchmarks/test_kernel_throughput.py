"""Kernel and simulator throughput benchmarks.

Not paper results — these measure the substrate itself: raw event
throughput of both simulator kernels and end-to-end simulated
requests per wall-second of the full four-tier system.  They guard
against performance regressions that would make the figure sweeps
impractically slow, and they hold the vector kernel to its headline
claim: >= 10x the scalar kernel's event rate on timer traffic.

The full-system check pins the *exact* trace count at its seed: the
simulation is deterministic, so any drift is a behavior change (an
RNG stream reordered, a tie broken differently), never noise.  A
floor like ``completed > 300`` would keep passing through exactly the
bugs determinism is supposed to catch.

``MSCOPE_SCALE_USERS`` scales the open-loop sweep tier: 150 locally
(default), 10000 in the CI kernel-bench job, 100000 in the nightly
smoke.  Measured numbers land in the shared bench-record artifact
(``MSCOPE_BENCH_JSON``, schema ``mscope-bench-record/v1``).
"""

import os
import time

from record import record

from repro.common.timebase import ms, seconds
from repro.ntier import NTierSystem, SystemConfig
from repro.rubbos import WorkloadSpec
from repro.sim import Engine, TrafficGenerator

#: Open-loop sweep population (CI smoke: 10k, nightly: 100k).
SCALE_USERS = int(os.environ.get("MSCOPE_SCALE_USERS", "150"))

#: The vector kernel's contract: at least this many times the scalar
#: kernel's event rate, measured on the same machine in one process.
VECTOR_FLOOR = 10.0

#: Exact end-to-end trace count at seed 3, 150 users, 2 s — pinned
#: from a reference run; both kernels must reproduce it.
PINNED_TRACES = 390

_PING_ROUNDS = 50_000
_PING_EVENTS = 2 * _PING_ROUNDS


def _pingpong_engine():
    engine = Engine()

    def ticker():
        for _ in range(_PING_ROUNDS):
            yield engine.timeout(10)

    engine.process(ticker())
    return engine


def _best_rate(run, events, repeats=3):
    """Best observed events/sec over ``repeats`` fresh runs."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        best = max(best, events / elapsed)
    return best


def _scalar_rate(repeats=3):
    return _best_rate(
        lambda: _pingpong_engine().run(), _PING_EVENTS, repeats
    )


def test_kernel_event_throughput(benchmark):
    """Scalar engine: a ping-pong of timeouts (two events per round)."""

    def run_kernel():
        engine = _pingpong_engine()
        engine.run()
        return engine.now

    final = benchmark(run_kernel)
    assert final == _PING_ROUNDS * 10
    record("scalar_pingpong", events_per_sec=round(_scalar_rate()))


def test_run_loop_not_slower_than_step_loop():
    """The inlined ``run()`` pop loop must hold its lead over step().

    ``Engine.run`` bypasses ``step()``'s method call and double head
    indexing per event; this is the micro-optimization the __slots__ /
    hoisted-allocation work bought.  Equal-within-noise is acceptable,
    slower is a regression.
    """

    def step_loop():
        engine = _pingpong_engine()
        while engine._agenda:
            engine.step()

    # Interleave the measurements: frequency scaling and cache warm-up
    # drift over a bench run, and alternating keeps that drift from
    # landing entirely on one side of the ratio.
    run_rate = step_rate = 0.0
    for _ in range(6):
        run_rate = max(run_rate, _scalar_rate(repeats=1))
        step_rate = max(step_rate, _best_rate(step_loop, _PING_EVENTS, 1))
    ratio = run_rate / step_rate
    record(
        "run_vs_step",
        run_events_per_sec=round(run_rate),
        step_events_per_sec=round(step_rate),
        ratio=round(ratio, 3),
    )
    assert ratio >= 0.9, (
        f"run() fast path regressed below step() rate: {ratio:.2f}x"
    )


def _full_system(kernel: str):
    config = SystemConfig(
        workload=WorkloadSpec(
            users=150, think_time_us=ms(700), ramp_up_us=ms(200)
        ),
        seed=3,
        kernel=kernel,
    )
    return NTierSystem(config).run(seconds(2))


def test_full_system_simulation_rate(benchmark):
    """Whole testbed: simulated requests per benchmark round."""
    completed = benchmark.pedantic(
        lambda: len(_full_system("scalar").traces), rounds=3, iterations=1
    )
    assert completed == PINNED_TRACES
    record("full_system_scalar", traces=completed, seed=3, users=150)


def test_full_system_kernels_agree(benchmark):
    """The vector kernel reproduces the pinned trace count exactly."""
    completed = benchmark.pedantic(
        lambda: len(_full_system("vector").traces), rounds=3, iterations=1
    )
    assert completed == PINNED_TRACES
    record("full_system_vector", traces=completed, seed=3, users=150)


_SWEEP_USERS = 5_000
_SWEEP_THINK = ms(700)
_SWEEP_RAMP = ms(200)
_SWEEP_HORIZON = seconds(20)


def _scalar_open_loop_rate(repeats=3):
    """Scalar kernel running the *same* open-loop workload.

    One generator process per user: ramp sleep, then an endless
    think-draw / interaction-draw loop — the workload the vector
    sweep replaces, event for event.  Events are counted with the
    vector sweep's formula (boot + pop and re-arm per firing) so the
    two rates divide cleanly.
    """
    import random

    def sweep():
        engine = Engine()
        rng = random.Random(3)
        mix = random.Random(4)
        count = [0]

        def user():
            yield engine.timeout(int(rng.random() * _SWEEP_RAMP))
            while True:
                count[0] += 1
                mix.random()  # interaction choice
                yield engine.timeout(
                    int(rng.expovariate(1.0 / _SWEEP_THINK)) + 1
                )

        for _ in range(_SWEEP_USERS):
            engine.process(user())
        start = time.perf_counter()
        engine.run(until=_SWEEP_HORIZON)
        elapsed = time.perf_counter() - start
        return (_SWEEP_USERS + 2 * count[0]) / elapsed

    return max(sweep() for _ in range(repeats))


def test_vector_sweep_floor():
    """Vector kernel >= 10x scalar events/sec on timer traffic.

    Apples-to-apples: both kernels run the same 5000-user open-loop
    workload (ramp, exponential think, interaction choice) on the
    same machine in the same process, and events are counted the same
    way on both sides.
    """
    spec = WorkloadSpec(
        users=_SWEEP_USERS,
        think_time_us=_SWEEP_THINK,
        ramp_up_us=_SWEEP_RAMP,
    )
    reports = []

    def sweep():
        reports.append(
            TrafficGenerator(spec, seed=3).generate(
                horizon_us=_SWEEP_HORIZON, analyze_tiers=False
            )
        )

    scalar_rate = _scalar_open_loop_rate()
    sweep()
    events = reports[-1].events
    vector_rate = _best_rate(sweep, events)
    ratio = vector_rate / scalar_rate
    record(
        "vector_floor",
        scalar_events_per_sec=round(scalar_rate),
        vector_events_per_sec=round(vector_rate),
        speedup=round(ratio, 2),
        events=events,
        users=_SWEEP_USERS,
    )
    print(
        f"\nkernel events/sec: scalar={scalar_rate:,.0f} "
        f"vector={vector_rate:,.0f} ({ratio:.1f}x)"
    )
    assert ratio >= VECTOR_FLOOR, (
        f"vector kernel below {VECTOR_FLOOR:.0f}x floor: {ratio:.2f}x "
        f"({vector_rate:,.0f} vs {scalar_rate:,.0f} events/sec)"
    )


def test_scale_sweep_smoke():
    """Env-scaled open-loop sweep with full tier analysis.

    At the default 150 users this is a quick sanity pass; the CI
    kernel-bench job runs it at 10k users and the nightly smoke at
    100k, where the per-tier load tables and saturation flags are the
    point of the exercise.
    """
    spec = WorkloadSpec(
        users=SCALE_USERS, think_time_us=ms(700), ramp_up_us=ms(200)
    )
    generator = TrafficGenerator(spec, seed=3)
    start = time.perf_counter()
    report = generator.generate(horizon_us=seconds(10))
    elapsed = time.perf_counter() - start
    assert report.arrivals > 0
    assert report.users == SCALE_USERS
    assert set(report.tiers) == {"apache", "tomcat", "cjdbc", "mysql"}
    for load in report.tiers.values():
        assert len(load.entry) == report.arrivals
    rate = report.events / elapsed
    record(
        "scale_sweep",
        users=SCALE_USERS,
        arrivals=report.arrivals,
        events=report.events,
        events_per_sec=round(rate),
        arrival_rate_per_sec=round(report.arrival_rate_per_sec(), 1),
        saturated=[t for t, load in report.tiers.items() if load.saturated],
        seconds=round(elapsed, 3),
    )
    print(
        f"\nscale sweep: {SCALE_USERS} users, {report.arrivals} arrivals, "
        f"{rate:,.0f} events/sec"
    )
