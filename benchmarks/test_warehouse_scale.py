"""Scale-out warehouse benchmark: parallel shard ingest and pruned reads.

Two measurements back the sharded warehouse's performance claims:

* **ingest throughput** — loading the same million synthetic Collectl
  rows (four hosts' worth) into one monolithic mScopeDB file with a
  single writer, vs four :class:`ShardHostWriter` processes each
  owning its host's shard files.  The floor is the acceptance
  criterion: four writers must at least double single-file throughput.
* **pruned-read speedup** — a one-window query against the sharded
  warehouse opens only the overlapping shard files (asserted via the
  ``shard_opens`` counter) and is timed against the same query
  scanning the whole history.

The default tier loads 1M rows; set ``MSCOPE_SCALE_ROWS=10000000``
for the 10M-row tier (nightly-scale, minutes not seconds).  When
``MSCOPE_BENCH_JSON`` names a file, the measured numbers are written
there in the shared bench-record schema (see ``benchmarks/record.py``)
— the CI ``warehouse-bench`` job uploads it as an artifact, so
throughput is a recorded curve over time, not a one-off.
"""

import os
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from conftest import report
from record import record
from repro.warehouse.db import MScopeDB
from repro.warehouse.sharded import ShardedMScopeDB, ShardHostWriter

HOSTS = ("web1", "web2", "db1", "db2")
ROWS = int(os.environ.get("MSCOPE_SCALE_ROWS", "1000000"))
#: One-minute shards; the row span covers ten of them.
WINDOW_US = 60 * 1_000_000
SPAN_WINDOWS = 10
COLUMNS = [
    ("timestamp_us", "INTEGER"),
    ("dsk_pctutil", "REAL"),
    ("cpu_user_pct", "REAL"),
]
_CORES = os.cpu_count() or 1


def _table(host: str) -> str:
    return f"collectl_cpu_{host}"


def _host_rows(host_index: int, count: int) -> list[tuple]:
    """Deterministic synthetic samples spread over the full span."""
    step = max(1, SPAN_WINDOWS * WINDOW_US // count)
    return [
        (
            i * step,
            float((i * 7 + host_index) % 100),
            float((i * 13 + host_index) % 100),
        )
        for i in range(count)
    ]


def _ingest_monolith(db_path, rows_per_host: int) -> float:
    started = time.perf_counter()
    with MScopeDB(db_path) as db:
        with db.bulk_load():
            for index, host in enumerate(HOSTS):
                db.create_table(_table(host), COLUMNS)
                db.insert_rows(
                    _table(host),
                    [c for c, _ in COLUMNS],
                    _host_rows(index, rows_per_host),
                )
    return time.perf_counter() - started


def _shard_ingest_task(root_str: str, host: str, host_index: int, count: int):
    """One writer process: generate and load one host's shard files."""
    writer = ShardHostWriter(root_str, host, window_us=WINDOW_US)
    writer.ensure_table(_table(host), COLUMNS)
    writer.begin_bulk()
    writer.insert_rows(
        _table(host), [c for c, _ in COLUMNS], _host_rows(host_index, count)
    )
    writer.end_bulk()
    return writer.close()


def _ingest_sharded(root, rows_per_host: int, writers: int) -> float:
    started = time.perf_counter()
    db = ShardedMScopeDB(root, window_us=WINDOW_US)
    for host in HOSTS:
        db.create_table(_table(host), COLUMNS)
    with ProcessPoolExecutor(max_workers=writers) as pool:
        futures = [
            pool.submit(
                _shard_ingest_task, str(db.root), host, index, rows_per_host
            )
            for index, host in enumerate(HOSTS)
        ]
        for future in futures:
            db.register_shards(future.result())
    db.close()
    return time.perf_counter() - started


@pytest.mark.skipif(
    _CORES < 4,
    reason=(
        f"parallel shard ingest needs 4 writer cores to show its "
        f"floor; detected {_CORES}"
    ),
)
def test_sharded_ingest_throughput(tmp_path):
    rows_per_host = ROWS // len(HOSTS)

    # Warm-up at a fraction of the load: page cache, imports, pool.
    _ingest_monolith(tmp_path / "warm.db", rows_per_host // 10)
    _ingest_sharded(tmp_path / "warm.shards", rows_per_host // 10, 4)

    mono_s = min(
        _ingest_monolith(tmp_path / f"mono{r}.db", rows_per_host)
        for r in range(2)
    )
    shard_s = min(
        _ingest_sharded(tmp_path / f"shard{r}.shards", rows_per_host, 4)
        for r in range(2)
    )

    with ShardedMScopeDB(tmp_path / "shard0.shards") as db:
        loaded = sum(db.row_count(_table(host)) for host in HOSTS)
    assert loaded == rows_per_host * len(HOSTS)

    speedup = mono_s / shard_s
    total = rows_per_host * len(HOSTS)
    report(
        "Warehouse scale-out ingest",
        f"{total} rows over {len(HOSTS)} hosts: single-writer "
        f"{mono_s:.2f}s ({total / mono_s:,.0f} rows/s), 4 shard "
        f"writers {shard_s:.2f}s ({total / shard_s:,.0f} rows/s), "
        f"speedup {speedup:.2f}x (floor 2.0x)",
    )
    record(
        "ingest",
        rows=total,
        rows_tier=ROWS,
        hosts=len(HOSTS),
        single_writer_s=round(mono_s, 3),
        shard_writers_s=round(shard_s, 3),
        speedup=round(speedup, 2),
    )
    assert speedup >= 2.0


def test_pruned_window_read_speedup(tmp_path):
    rows_per_host = max(10_000, ROWS // 10) // len(HOSTS)
    _ingest_sharded(tmp_path / "read.shards", rows_per_host, min(4, _CORES))

    sql = (
        f"SELECT COUNT(*), SUM(dsk_pctutil) FROM {_table('db1')} "
        f"WHERE timestamp_us >= ? AND timestamp_us < ?"
    )
    last = ((SPAN_WINDOWS - 1) * WINDOW_US, SPAN_WINDOWS * WINDOW_US)

    def timed_query(bounds, pruned):
        db = ShardedMScopeDB(tmp_path / "read.shards")
        try:
            started = time.perf_counter()
            hint = bounds if pruned else (None, None)
            with db.pruned(*hint):
                rows = db.query(sql, bounds)
            return time.perf_counter() - started, rows, db.shard_opens
        finally:
            db.close()

    full_s, full_rows, full_opens = timed_query(last, pruned=False)
    pruned_s, pruned_rows, pruned_opens = timed_query(last, pruned=True)

    assert pruned_rows == full_rows
    # The point of partitioning: the windowed read must not touch the
    # nine windows outside its bounds.
    assert 0 < pruned_opens < full_opens

    speedup = full_s / pruned_s if pruned_s > 0 else float("inf")
    report(
        "Partition-pruned window read",
        f"1-of-{SPAN_WINDOWS}-windows query: unpruned opens "
        f"{full_opens} shards in {full_s * 1000:.1f}ms, pruned opens "
        f"{pruned_opens} in {pruned_s * 1000:.1f}ms "
        f"(speedup {speedup:.1f}x)",
    )
    record(
        "pruned_read",
        rows_per_host=rows_per_host,
        rows_tier=ROWS,
        unpruned_opens=full_opens,
        pruned_opens=pruned_opens,
        unpruned_s=round(full_s, 4),
        pruned_s=round(pruned_s, 4),
        speedup=round(speedup, 2),
    )
