"""Telemetry overhead — the self-observability layer's own cost.

The paper claims its monitors cost 1–3% CPU (§IV); our pipeline's
telemetry must be in the same class.  This bench transforms the same
Scenario A log set with the default no-op sink and with a live
:class:`TelemetryCollector`, takes the minimum of several rounds of
each (minimum is the noise-robust statistic for a cold-cache-free
workload), and asserts the live collector costs at most 5% — the
acceptance ceiling; the typical measured delta is recorded in
docs/architecture.md.
"""

import os
import time

import pytest

from conftest import report
from record import record
from repro.telemetry.spans import TelemetryCollector
from repro.transformer.pipeline import MScopeDataTransformer
from repro.warehouse.db import MScopeDB

_ROUNDS = 5
_MAX_OVERHEAD = 1.05
_CORES = os.cpu_count() or 1


def _transform_once(log_dir, telemetry):
    db = MScopeDB()
    started = time.perf_counter()
    outcomes = MScopeDataTransformer(db, telemetry=telemetry).transform_directory(
        log_dir
    )
    elapsed = time.perf_counter() - started
    return elapsed, sum(o.rows_loaded for o in outcomes)


def _best_of(log_dir, make_telemetry):
    best = float("inf")
    rows = 0
    for _ in range(_ROUNDS):
        elapsed, rows = _transform_once(log_dir, make_telemetry())
        best = min(best, elapsed)
    return best, rows


@pytest.mark.skipif(
    _CORES < 2,
    reason=(
        f"a 5% timing delta is unmeasurable on this machine: detected "
        f"{_CORES} CPU core(s); any background task steals more than "
        f"the budget under test"
    ),
)
def test_telemetry_overhead_within_budget(scenario_a_run):
    logs = scenario_a_run.log_dir
    # Warm-up: parser imports, page cache.
    _transform_once(logs, None)

    off_s, off_rows = _best_of(logs, lambda: None)
    on_s, on_rows = _best_of(logs, TelemetryCollector)

    assert off_rows == on_rows
    overhead = on_s / off_s
    report(
        "Telemetry overhead (paper §IV: monitors cost 1-3% CPU)",
        f"{on_rows} rows, telemetry off: {off_s:.3f}s, "
        f"on: {on_s:.3f}s, overhead {overhead:.3f}x "
        f"(budget {_MAX_OVERHEAD}x)",
    )
    record(
        "telemetry_overhead",
        rows=on_rows,
        rounds=_ROUNDS,
        off_s=round(off_s, 4),
        on_s=round(on_s, 4),
        overhead=round(overhead, 4),
        budget=_MAX_OVERHEAD,
    )
    assert overhead <= _MAX_OVERHEAD


def test_telemetry_actually_recorded(scenario_a_run):
    """Guard against a "fast because it stopped measuring" regression."""
    collector = TelemetryCollector()
    db = MScopeDB()
    MScopeDataTransformer(db, telemetry=collector).transform_directory(
        scenario_a_run.log_dir
    )
    telemetry = collector.run_telemetry()
    assert telemetry.files > 0
    assert telemetry.total_records > 0
    assert db.has_pipeline_metrics()
