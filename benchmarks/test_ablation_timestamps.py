"""Ablation — do four timestamps suffice, and what do two lose?

The event mScopeMonitors record exactly four timestamps per tier
visit.  The upstream pair alone reconstructs queue lengths exactly
(they define arrival/departure), but *without the downstream pair* a
tier's exclusive time cannot be separated from its downstream wait —
during a database bottleneck, upstream tiers absorb the blame.  This
ablation quantifies that misattribution.
"""

from conftest import report
from repro.common.timebase import to_ms


def breakdown(trace, with_downstream: bool):
    """Per-tier exclusive time, optionally ignoring the downstream pair."""
    result: dict[str, float] = {}
    for visit in trace.visits:
        total = visit.server_time()
        if with_downstream:
            downstream = sum(c.latency() for c in visit.downstream_calls)
            local = total - downstream
        else:
            local = total
        result[visit.tier] = result.get(visit.tier, 0.0) + to_ms(local)
    return result


def test_ablation_timestamps(benchmark, scenario_a_run):
    vlrts = sorted(
        scenario_a_run.result.traces, key=lambda t: t.response_time()
    )[-20:]

    def analyze():
        four = [breakdown(t, with_downstream=True) for t in vlrts]
        two = [breakdown(t, with_downstream=False) for t in vlrts]
        return four, two

    four, two = benchmark(analyze)
    blamed_four = [max(b, key=b.get) for b in four]
    blamed_two = [max(b, key=b.get) for b in two]
    agree = sum(1 for a, b in zip(blamed_four, blamed_two) if a == b)
    report(
        "Ablation: timestamp count",
        f"  4-timestamp blame: {sorted(set(blamed_four))}\n"
        f"  2-timestamp blame: {sorted(set(blamed_two))}\n"
        f"  agreement: {agree}/{len(vlrts)}",
    )
    # With all four timestamps the VLRTs blame the bottleneck tiers
    # (the chain below apache); with only the upstream pair every VLRT
    # blames the front tier, because it holds the request the longest.
    assert all(b == "apache" for b in blamed_two)
    assert any(b != "apache" for b in blamed_four)
