"""Figure 9 — queue-length accuracy vs the SysViz wire tracer.

Paper shape: at workload 8000 the event mScopeMonitors' per-tier queue
lengths are "very similar" to SysViz's for every tier (Apache, Tomcat,
C-JDBC, MySQL).
"""

from conftest import report
from repro.experiments.figures_validation import figure_09
from repro.ntier.tiers import TIER_ORDER


def test_fig09_sysviz_accuracy(benchmark, accuracy_run):
    def analyze():
        return figure_09(run=accuracy_run)

    result = benchmark(analyze)
    report("Figure 9", result.to_text())
    assert result.workload == 8000
    for tier in TIER_ORDER:
        assert result.mean_abs_error(tier) < 0.5, tier
    assert result.peak_queue("apache") >= 3
