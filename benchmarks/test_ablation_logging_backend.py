"""Ablation — native buffered logging vs a synchronous side channel.

The paper's monitors reuse each component's buffered logging facility.
This ablation forces every instrumented log line through a synchronous
write path instead and measures what that costs: far more disk
operations and iowait, and visibly slower requests.
"""

from conftest import report
from repro.common.timebase import ms, seconds
from repro.monitors.event.suite import EventMonitorSuite
from repro.ntier import NTierSystem, SystemConfig
from repro.rubbos import WorkloadSpec

_EVENT_STREAMS = {
    "apache": "access_log",
    "tomcat": "catalina_log",
    "cjdbc": "controller_log",
    "mysql": "mysql_log",
}


def run_system(sync_logging: bool):
    config = SystemConfig(
        workload=WorkloadSpec(users=150, think_time_us=ms(700), ramp_up_us=ms(200)),
        seed=5,
    )
    system = NTierSystem(config)
    for tier, stream in _EVENT_STREAMS.items():
        system.servers[tier].node.facility(stream, sync=sync_logging)
    EventMonitorSuite().attach(system)
    return system.run(seconds(3))


def test_ablation_logging_backend(benchmark):
    buffered = run_system(sync_logging=False)

    def run_sync():
        return run_system(sync_logging=True)

    synchronous = benchmark.pedantic(run_sync, rounds=1, iterations=1)

    def disk_ops(result):
        return sum(n.disk.write_ops.total for n in result.nodes.values())

    buffered_ops = disk_ops(buffered)
    sync_ops = disk_ops(synchronous)
    rt_buffered = buffered.mean_response_time_ms()
    rt_sync = synchronous.mean_response_time_ms()
    report(
        "Ablation: logging backend",
        f"  buffered: {buffered_ops:8.0f} disk writes, mean RT {rt_buffered:.2f} ms\n"
        f"  sync    : {sync_ops:8.0f} disk writes, mean RT {rt_sync:.2f} ms",
    )
    # The native buffered path batches writes by orders of magnitude.
    assert sync_ops > 20 * buffered_ops
