"""Figure 10 — event-monitor CPU and disk-write overhead.

Paper shape: Apache and C-JDBC monitors add about 1% CPU, Tomcat about
3% (its extra logging thread); the instrumented components write up to
twice as many bytes to disk.
"""

import pytest

from conftest import EVAL_DURATION, OVERHEAD_WORKLOADS, report
from repro.experiments.figures_validation import figure_10


@pytest.fixture(scope="module")
def fig10_result():
    return figure_10(workloads=OVERHEAD_WORKLOADS, duration=EVAL_DURATION)


def test_fig10_overhead_cpu_disk(benchmark, fig10_result):
    # The sweep (8 full simulations) runs once; the benchmark measures
    # the per-row overhead aggregation over its output.
    def summarize():
        return {
            tier: fig10_result.max_cpu_overhead(tier)
            for tier in ("apache", "tomcat", "cjdbc", "mysql")
        }

    overhead = benchmark(summarize)
    report("Figure 10", fig10_result.to_text())
    # Apache / C-JDBC / MySQL ≈ 1%; Tomcat highest, ≈ 3%.
    assert overhead["apache"] < 2.0
    assert overhead["cjdbc"] < 2.0
    assert overhead["mysql"] < 2.0
    assert overhead["tomcat"] < 6.0
    assert overhead["tomcat"] == max(overhead.values())
    for row in fig10_result.rows:
        assert 1.3 < row.disk_write_ratio < 3.0
