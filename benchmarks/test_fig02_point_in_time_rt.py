"""Figure 2 — point-in-time response time vs coarse sampling.

Paper shape: the maximal point-in-time response time in the anomaly
window is more than twenty times the period average, while a monitor
sampling at 1 s intervals reports a flat series and misses the peak.
"""

from conftest import report
from repro.experiments.figures_anomaly import figure_02


def test_fig02_point_in_time_response_time(benchmark, scenario_a_run):
    result = benchmark(figure_02, scenario_a_run)
    report("Figure 2", result.to_text())
    assert result.peak_over_average > 20
    assert result.coarse_peak_ms < result.peak_ms / 10
