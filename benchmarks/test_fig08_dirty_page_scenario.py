"""Figure 8 — the dirty-page recycling scenario (four panels).

Paper shape: two similar-looking point-in-time RT peaks in a five
second interval; during the first only Apache's queue grows, during
the second Apache's and Tomcat's; CPU saturates on the matching node
while the dirty-page count drops abruptly; disks stay quiet.
"""

from conftest import report
from repro.experiments.figures_anomaly import figure_08


def test_fig08_dirty_page_scenario(benchmark, scenario_b_run):
    result = benchmark(figure_08, scenario_b_run)
    report("Figure 8", result.to_text())
    assert len(result.peaks) == 2
    first, second = result.peaks
    assert result.queue_mean_in("apache", first) > 3 * result.queue_mean_in(
        "tomcat", first
    )
    assert result.queue_mean_in("tomcat", second) > 15
    assert result.cpu_peak_in("web1", first) > 85
    assert result.cpu_peak_in("app1", second) > 85
    assert result.dirty_drop_in("web1", first) > 10_000
    assert result.dirty_drop_in("app1", second) > 10_000
