"""Ablation — monitoring granularity: why milliseconds matter.

The paper's core premise: a VSB lives for hundreds of milliseconds, so
a monitor sampling at the conventional 1 s+ interval averages it away.
This ablation reruns scenario A's resource monitoring at 50 ms, 250 ms
and 1 s and measures what each resolution reports for the same
~300 ms disk-saturation burst.
"""

from conftest import report
from repro.analysis.series import Series
from repro.common.timebase import ms, seconds
from repro.experiments.scenarios import scenario_a

INTERVALS = (ms(50), ms(250), seconds(1))


def observed_burst(run):
    """Peak and above-80% dwell of db1 disk util as the monitor saw it."""
    monitor = next(
        m
        for m in run.resources.by_node("db1")
        if m.monitor_name == "collectl"
    )
    series = Series.from_pairs(
        (s.timestamp, s.metrics["disk_util_pct"]) for s in monitor.samples
    )
    saturated = [v for v in series.values if v > 80.0]
    return series.max(), len(saturated)


def test_ablation_monitor_interval(benchmark):
    results = {}
    for interval in INTERVALS:
        run = scenario_a(monitor_interval=interval)
        results[interval] = observed_burst(run)

    def summarize():
        return {interval: peak for interval, (peak, _) in results.items()}

    peaks = benchmark(summarize)
    lines = [
        f"  interval={interval / 1000:6.0f} ms  observed peak disk util "
        f"{results[interval][0]:6.1f}%  saturated samples "
        f"{results[interval][1]}"
        for interval in INTERVALS
    ]
    report("Ablation: monitoring interval vs burst visibility", "\n".join(lines))
    # At 50 ms the burst reads as full saturation; at 1 s the same
    # burst averages down dramatically — the Figure 2 argument, on the
    # resource side.
    assert peaks[ms(50)] > 95.0
    assert peaks[seconds(1)] < peaks[ms(50)] - 40.0
