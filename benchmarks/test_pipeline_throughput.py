"""Figure 3's pipeline — transformer throughput over real scenario logs.

Not a paper result per se, but the transformation pipeline is the
paper's Figure 3; this bench measures how fast mScopeDataTransformer
moves a full scenario's native logs (every monitor format) into
mScopeDB, and checks the load is complete.
"""

from conftest import report
from record import record
from repro.transformer.pipeline import MScopeDataTransformer
from repro.warehouse.db import MScopeDB


def test_pipeline_throughput(benchmark, scenario_a_run):
    def transform():
        db = MScopeDB()
        outcomes = MScopeDataTransformer(db).transform_directory(
            scenario_a_run.log_dir
        )
        return db, outcomes

    db, outcomes = benchmark(transform)
    rows = sum(o.rows_loaded for o in outcomes)
    report(
        "Pipeline (Figure 3)",
        f"{len(outcomes)} log files -> {len(db.dynamic_tables())} tables, "
        f"{rows} rows loaded",
    )
    stats = benchmark.stats.stats
    record(
        "pipeline_throughput",
        files=len(outcomes),
        tables=len(db.dynamic_tables()),
        rows=rows,
        min_s=round(stats.min, 4),
        mean_s=round(stats.mean, 4),
        rows_per_s=round(rows / stats.min, 1),
    )
    assert rows > 1_000
    assert len(db.dynamic_tables()) >= 16
