"""Figure 4 — per-node disk utilization during the anomaly.

Paper shape: the database node's disk saturates during the short span
while every other tier's disk stays consistently low.
"""

from conftest import report
from repro.experiments.figures_anomaly import figure_04


def test_fig04_disk_utilization(benchmark, scenario_a_run):
    result = benchmark(figure_04, scenario_a_run)
    report("Figure 4", result.to_text())
    assert result.peak("db1") > 95
    for node in ("web1", "app1", "mid1"):
        assert result.peak(node) < 30
