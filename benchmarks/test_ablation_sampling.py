"""Ablation — trace-everything vs head-based sampling.

milliScope deliberately traces every request instead of sampling.
This ablation measures VLRT-detection recall as a Dapper-style
sampling tracer's keep-rate drops: at production sampling rates the
very requests the paper cares about vanish from the data.
"""

from conftest import report
from repro.analysis.response_time import completions_from_traces
from repro.baselines.sampling import SamplingTracer

RATES = (0.01, 0.05, 0.1, 0.5, 1.0)


def test_ablation_sampling_recall(benchmark, scenario_a_run):
    samples = completions_from_traces(scenario_a_run.result.traces)

    def sweep():
        return {
            rate: SamplingTracer(rate, seed=1).vlrt_recall(samples)
            for rate in RATES
        }

    recall = benchmark(sweep)
    lines = [f"  rate={rate:5.2f} VLRT recall={recall[rate]:.2f}" for rate in RATES]
    report("Ablation: sampling rate vs VLRT recall", "\n".join(lines))
    assert recall[1.0] == 1.0
    assert recall[0.01] < 0.5
    # Recall must be monotone-ish: tracing everything dominates.
    assert recall[1.0] >= recall[0.1] >= recall[0.01]
