"""Ablation — clock skew: what unsynchronized nodes do, and the fix.

The paper's testbed was NTP-disciplined; milliScope's cross-node
timestamp joins silently assume that.  This ablation skews the Tomcat
and MySQL clocks by several milliseconds, measures how many warehouse-
reconstructed causal paths violate happens-before, and shows the
NTP-equation estimator recovering the offsets from the event logs
alone (no extra instrumentation).
"""

from conftest import report
from repro.analysis.skew import estimate_tier_offsets
from repro.common.timebase import ms, seconds
from repro.monitors import EventMonitorSuite
from repro.ntier import NTierSystem, SystemConfig, TierConfig
from repro.ntier.node import NodeSpec
from repro.rubbos import WorkloadSpec
from repro.transformer import MScopeDataTransformer
from repro.warehouse import MScopeDB

OFFSETS = {"apache": 0, "tomcat": 5_000, "cjdbc": -2_000, "mysql": 11_000}


def build_skewed_db(tmp_path):
    config = SystemConfig(
        workload=WorkloadSpec(users=100, think_time_us=ms(300), ramp_up_us=ms(100)),
        seed=6,
        log_dir=tmp_path / "logs",
        tiers={
            tier: TierConfig(
                workers=30, node=NodeSpec(clock_offset_us=OFFSETS[tier])
            )
            for tier in OFFSETS
        },
    )
    system = NTierSystem(config)
    EventMonitorSuite().attach(system)
    system.run(seconds(3))
    db = MScopeDB()
    MScopeDataTransformer(db).transform_directory(tmp_path / "logs")
    return db


def violation_count(db):
    return db.query(
        "SELECT COUNT(DISTINCT a.request_id) FROM apache_events_web1 a "
        "JOIN mysql_events_db1 m ON a.request_id = m.request_id "
        "WHERE m.upstream_departure_us > a.upstream_departure_us"
    )[0][0]


def test_ablation_clock_skew(benchmark, tmp_path):
    db = build_skewed_db(tmp_path)
    violations = violation_count(db)

    estimate = benchmark(estimate_tier_offsets, db)

    errors = {
        tier: abs(estimate.offset_of(tier) - injected)
        for tier, injected in OFFSETS.items()
    }
    lines = [
        f"  injected skew: tomcat +5 ms, cjdbc -2 ms, mysql +11 ms",
        f"  requests with broken happens-before: {violations}",
        "  " + estimate.to_text().replace("\n", "\n  "),
        f"  max estimation error: {max(errors.values()) / 1000:.3f} ms",
    ]
    report("Ablation: clock skew", "\n".join(lines))
    # The 11 ms-fast MySQL clock breaks causality on most requests...
    assert violations > 100
    # ...and the estimator recovers every offset to sub-millisecond.
    assert max(errors.values()) < 1_000
