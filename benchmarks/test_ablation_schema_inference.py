"""Ablation — narrowest-type schema inference vs all-TEXT columns.

The XMLtoCSV converter picks the narrowest SQL type per column (the
best-match principle).  This ablation loads the same scenario logs
with typed columns and with everything as TEXT, comparing warehouse
size on disk and the cost of a typical aggregation query.
"""

import time

from conftest import report
from repro.transformer.pipeline import MScopeDataTransformer
from repro.transformer.xml_to_csv import XmlToCsvConverter
from repro.warehouse.db import MScopeDB


class _AllTextConverter(XmlToCsvConverter):
    """Degenerate converter: every column is TEXT."""

    def convert(self, document, table_name, extra_columns=None):
        table = super().convert(document, table_name, extra_columns)
        table.columns = [(name, "TEXT") for name, _ in table.columns]
        table.rows = [
            tuple(None if v is None else str(v) for v in row)
            for row in table.rows
        ]
        return table


def load(scenario_run, path, converter=None):
    db = MScopeDB(path)
    transformer = MScopeDataTransformer(db)
    if converter is not None:
        transformer.converter = converter
    transformer.transform_directory(scenario_run.log_dir)
    return db


def scan_cost(db):
    started = time.perf_counter()
    db.query(
        "SELECT AVG(upstream_departure_us - upstream_arrival_us) "
        "FROM mysql_events_db1"
    )
    return time.perf_counter() - started


def test_ablation_schema_inference(benchmark, scenario_a_run, tmp_path):
    typed_path = tmp_path / "typed.db"
    text_path = tmp_path / "alltext.db"

    typed_db = load(scenario_a_run, typed_path)

    def load_all_text():
        return load(scenario_a_run, text_path, _AllTextConverter())

    text_db = benchmark.pedantic(load_all_text, rounds=1, iterations=1)

    typed_bytes = typed_path.stat().st_size
    text_bytes = text_path.stat().st_size
    typed_scan = min(scan_cost(typed_db) for _ in range(5))
    text_scan = min(scan_cost(text_db) for _ in range(5))
    report(
        "Ablation: schema inference",
        f"  typed   : {typed_bytes:9d} bytes on disk, scan {typed_scan * 1e3:.2f} ms\n"
        f"  all-TEXT: {text_bytes:9d} bytes on disk, scan {text_scan * 1e3:.2f} ms",
    )
    # Typed columns store the epoch-microsecond integers as 8-byte
    # values instead of 16-char strings: the warehouse shrinks.
    assert typed_bytes < text_bytes
