"""Saturation sweep — the operating-region context of the paper.

Maps throughput and latency across workloads; the shape to hold is
linear throughput scaling below the knee with flat response times —
the regime where only a *fine-grained* monitor can explain latency
spikes, because no average utilization metric is anywhere near 100%.
"""

from conftest import report
from repro.common.timebase import seconds
from repro.experiments.sweeps import saturation_sweep


def test_saturation_sweep(benchmark):
    def run_sweep():
        return saturation_sweep(
            workloads=(1000, 2000, 4000, 8000), duration=seconds(5)
        )

    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report("Saturation sweep", sweep.to_text())
    first, *_, last = sweep.points
    # Linear scaling across the paper's workload range...
    assert last.throughput > 6 * first.throughput
    # ...with response times that never hint at the VSB problem.
    assert last.mean_response_ms < 4 * first.mean_response_ms
