"""Parallel transformer fan-out — serial vs multi-core throughput.

Measures mScopeDataTransformer over a Scenario A log set replicated
across extra synthetic hosts (the paper's deployments monitor many
hosts; one scenario's four are too little work to amortize pool
startup).  The parse → convert stages fan out across worker
processes; imports stay single-writer, so both runs load identical
warehouses — the speedup is pure pipeline parallelism.
"""

import os
import shutil
import time

import pytest

from conftest import report
from record import record
from repro.transformer.pipeline import MScopeDataTransformer
from repro.warehouse.db import MScopeDB

#: Copies of each scenario host directory (4 hosts -> 12 hosts).
_REPLICAS = 3


def _replicated_logs(source_log_dir, target):
    target.mkdir(parents=True, exist_ok=True)
    for host_dir in sorted(p for p in source_log_dir.iterdir() if p.is_dir()):
        for replica in range(_REPLICAS):
            shutil.copytree(host_dir, target / f"{host_dir.name}r{replica}")
    return target


def _timed_transform(log_dir, jobs):
    db = MScopeDB()
    started = time.perf_counter()
    outcomes = MScopeDataTransformer(db).transform_directory(log_dir, jobs=jobs)
    elapsed = time.perf_counter() - started
    rows = sum(o.rows_loaded for o in outcomes)
    return elapsed, rows, db


_CORES = os.cpu_count() or 1
#: Speedup floor scaled to the machine: a 4-core box must approach the
#: fan-out's ideal; on 2–3 cores the parse → convert stages can only
#: overlap partially, so a modest floor still catches a broken pool.
_SPEEDUP_FLOOR = 1.8 if _CORES >= 4 else 1.2


@pytest.mark.skipif(
    _CORES < 2,
    reason=(
        f"parallel speedup is unmeasurable on this machine: detected "
        f"{_CORES} CPU core(s), need >= 2 for the fan-out to overlap"
    ),
)
def test_pipeline_parallel_speedup(scenario_a_run, tmp_path):
    logs = _replicated_logs(scenario_a_run.log_dir, tmp_path / "logs")
    jobs = min(4, _CORES)

    # Warm caches (page cache, parser imports) so neither run pays
    # first-touch costs the other skips.
    _timed_transform(logs, jobs=1)

    serial_s, serial_rows, serial_db = _timed_transform(logs, jobs=1)
    parallel_s, parallel_rows, parallel_db = _timed_transform(logs, jobs=jobs)

    assert serial_rows == parallel_rows
    assert list(serial_db.iterdump()) == list(parallel_db.iterdump())

    speedup = serial_s / parallel_s
    report(
        "Pipeline parallel fan-out",
        f"{serial_rows} rows on {_CORES} cores, jobs=1: {serial_s:.2f}s, "
        f"jobs={jobs}: {parallel_s:.2f}s, speedup {speedup:.2f}x "
        f"(floor {_SPEEDUP_FLOOR}x)",
    )
    record(
        "parallel_speedup",
        rows=serial_rows,
        cores=_CORES,
        jobs=jobs,
        serial_s=round(serial_s, 3),
        parallel_s=round(parallel_s, 3),
        speedup=round(speedup, 2),
        floor=_SPEEDUP_FLOOR,
    )
    assert speedup >= _SPEEDUP_FLOOR


def test_pipeline_parallel_matches_serial_anywhere(scenario_a_run, tmp_path):
    """Determinism holds regardless of core count (runs everywhere)."""
    logs = _replicated_logs(scenario_a_run.log_dir, tmp_path / "logs")
    _, serial_rows, serial_db = _timed_transform(logs, jobs=1)
    _, parallel_rows, parallel_db = _timed_transform(logs, jobs=4)
    assert serial_rows == parallel_rows
    assert list(serial_db.iterdump()) == list(parallel_db.iterdump())
