"""Figure 6 — cross-tier queue pushback.

Paper shape: the database tier's queue length increases concurrently
with every upstream tier's — the pushback signature of a downstream
very short bottleneck.
"""

from conftest import report
from repro.experiments.figures_anomaly import figure_06


def test_fig06_queue_pushback(benchmark, scenario_a_run):
    result = benchmark(figure_06, scenario_a_run)
    report("Figure 6", result.to_text())
    assert set(result.pushback_tiers()) == {"apache", "tomcat", "cjdbc", "mysql"}
