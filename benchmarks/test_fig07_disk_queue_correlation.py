"""Figure 7 — DB disk utilization vs Apache queue length.

Paper shape: a high correlation between the database tier's disk
utilization and the web tier's queue length — the evidence that disk
I/O is the very short bottleneck.
"""

from conftest import report
from repro.experiments.figures_anomaly import figure_07


def test_fig07_disk_queue_correlation(benchmark, scenario_a_run):
    result = benchmark(figure_07, scenario_a_run)
    report("Figure 7", result.to_text())
    assert result.correlation > 0.5
