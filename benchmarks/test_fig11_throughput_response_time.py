"""Figure 11 — system performance with monitors enabled vs disabled.

Paper shape: throughput is almost unchanged at every workload; the
instrumented system answers about two milliseconds slower.
"""

import pytest

from conftest import EVAL_DURATION, OVERHEAD_WORKLOADS, report
from repro.experiments.figures_validation import figure_11


@pytest.fixture(scope="module")
def fig11_result():
    return figure_11(workloads=OVERHEAD_WORKLOADS, duration=EVAL_DURATION)


def test_fig11_throughput_response_time(benchmark, fig11_result):
    def summarize():
        return (
            fig11_result.max_throughput_delta_pct(),
            fig11_result.max_response_delta_ms(),
        )

    throughput_delta, response_delta = benchmark(summarize)
    report("Figure 11", fig11_result.to_text())
    assert throughput_delta < 2.0
    assert 0.3 < response_delta < 4.0
