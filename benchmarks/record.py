"""Schema'd JSON records for the benchmark CI jobs.

Every non-gating bench job sets ``MSCOPE_BENCH_JSON`` (the artifact
path) and ``MSCOPE_BENCH_NAME`` (the job's name); benchmarks then call
:func:`record` with the numbers they measured.  All benches share one
record shape so downstream tooling can diff runs without knowing which
job produced which file::

    {
      "schema": "mscope-bench-record/v1",
      "bench": "warehouse-bench",
      "sections": {
        "ingest": {"rows": 200000, "speedup": 2.7, ...},
        "pruned_read": {...}
      }
    }

Multiple ``record`` calls merge into the same file (section by
section), so a bench module with several tests accumulates one
artifact.  Without ``MSCOPE_BENCH_JSON`` in the environment, recording
is a no-op — local runs just print their report blocks as before.
"""

from __future__ import annotations

import json
import os
from typing import Any

__all__ = ["SCHEMA", "record"]

SCHEMA = "mscope-bench-record/v1"


def record(section: str, **fields: Any) -> None:
    """Merge one measured section into the bench-record artifact."""
    target = os.environ.get("MSCOPE_BENCH_JSON")
    if not target:
        return
    payload: dict[str, Any] = {
        "schema": SCHEMA,
        "bench": os.environ.get("MSCOPE_BENCH_NAME", "unknown"),
        "sections": {},
    }
    if os.path.exists(target):
        with open(target) as handle:
            existing = json.load(handle)
        if existing.get("schema") == SCHEMA:
            payload["sections"] = existing.get("sections", {})
    payload["sections"][section] = fields
    with open(target, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
