"""Baselines: SysViz-style wire tracer and sampling monitors."""

from repro.baselines.sampling import CoarseAveragingMonitor, SamplingTracer
from repro.baselines.sysviz import SysVizTracer, WireRecord

__all__ = [
    "CoarseAveragingMonitor",
    "SamplingTracer",
    "SysVizTracer",
    "WireRecord",
]
