"""A SysViz-style passive network tracer.

Fujitsu SysViz — the commercial tool the paper validates against —
reconstructs every transaction's trace from messages captured by
network taps and port-mirroring switches.  Here the tap subscribes to
the simulator's message bus: it sees every request and reply at wire
time, *independently of the event mScopeMonitors' logs*, and rebuilds
per-tier queue lengths from message pairing alone.  Comparing its
queue series with the monitors' reproduces the paper's Figure 9
accuracy validation.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict, deque

from repro.analysis.queues import concurrency_series
from repro.analysis.series import Series
from repro.common.errors import AnalysisError
from repro.common.timebase import Micros
from repro.ntier.messages import Message
from repro.ntier.system import NTierSystem

__all__ = ["WireRecord", "SysVizTracer"]


@dataclasses.dataclass(frozen=True, slots=True)
class WireRecord:
    """One message observed on the wire."""

    kind: str
    request_id: str
    src: str
    dst: str
    wire_time: Micros
    serial: int


class SysVizTracer:
    """Passive tap reconstructing transactions from wire traffic."""

    def __init__(self) -> None:
        self.records: list[WireRecord] = []

    # ------------------------------------------------------------------
    # tap interface

    def attach(self, system: NTierSystem) -> None:
        """Mirror the system's network into this tracer."""
        system.bus.add_tap(self)

    def on_message(self, message: Message) -> None:
        """Bus callback; called at wire time for every message."""
        self.records.append(
            WireRecord(
                kind=message.kind,
                request_id=message.request.request_id,
                src=message.src,
                dst=message.dst,
                wire_time=message.sent_at if message.sent_at is not None else 0,
                serial=message.serial,
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # reconstruction

    def tier_spans(self, tier: str) -> list[tuple[Micros, Micros]]:
        """``(arrival, departure)`` spans for one tier from wire pairing.

        A request message *into* the tier opens a span; the tier's next
        reply for the same request ID closes the innermost open span
        (LIFO pairing — nested sub-requests close before their parent).
        Replicated addresses (``tomcat#2``) aggregate under their
        logical tier, as a port-mirroring tap on the tier's switch
        would see them.
        """
        from repro.ntier.system import logical_tier

        open_spans: dict[str, deque[Micros]] = defaultdict(deque)
        spans: list[tuple[Micros, Micros]] = []
        for record in self.records:
            if record.kind == "request" and logical_tier(record.dst) == tier:
                open_spans[record.request_id].append(record.wire_time)
            elif record.kind == "reply" and logical_tier(record.src) == tier:
                stack = open_spans.get(record.request_id)
                if not stack:
                    raise AnalysisError(
                        f"reply without a matching request at {tier} "
                        f"({record.request_id})"
                    )
                arrival = stack.pop()
                spans.append((arrival, record.wire_time))
        spans.sort()
        return spans

    def queue_series(
        self, tier: str, start: Micros, stop: Micros, step: Micros
    ) -> Series:
        """Per-tier queue length as SysViz would report it."""
        return concurrency_series(self.tier_spans(tier), start, stop, step)

    def transaction(self, request_id: str) -> list[WireRecord]:
        """Every wire record of one transaction, in wire order."""
        return [r for r in self.records if r.request_id == request_id]

    def reconstruct_transaction(self, request_id: str):
        """Rebuild one transaction's full execution path from the wire.

        Returns a :class:`~repro.analysis.causal.CausalPath` — the same
        structure the event monitors' warehouse join produces (Fig 5) —
        assembled purely from wire pairing, so the two reconstructions
        can be compared hop by hop.
        """
        from repro.analysis.causal import CausalHop, CausalPath
        from repro.ntier.system import logical_tier

        records = self.transaction(request_id)
        if not records:
            raise AnalysisError(f"transaction {request_id!r} not on the wire")
        open_stack: list[dict] = []
        hops: list[dict] = []
        for record in records:
            if record.kind == "request":
                hop = {
                    "tier": logical_tier(record.dst),
                    "arrival": record.wire_time,
                    "departure": None,
                    "ds": None,
                    "dr": None,
                }
                if open_stack:
                    parent = open_stack[-1]
                    if parent["ds"] is None:
                        parent["ds"] = record.wire_time
                open_stack.append(hop)
                hops.append(hop)
            else:
                if not open_stack:
                    raise AnalysisError(
                        f"reply without open request for {request_id!r}"
                    )
                hop = open_stack.pop()
                hop["departure"] = record.wire_time
                if open_stack:
                    open_stack[-1]["dr"] = record.wire_time
        if open_stack:
            raise AnalysisError(f"transaction {request_id!r} still in flight")
        causal_hops = [
            CausalHop(
                tier=h["tier"],
                upstream_arrival_us=h["arrival"],
                upstream_departure_us=h["departure"],
                downstream_sending_us=h["ds"],
                downstream_receiving_us=h["dr"],
            )
            for h in hops
        ]
        return CausalPath(request_id=request_id, hops=causal_hops)

    def transaction_count(self) -> int:
        """Number of distinct client transactions observed."""
        return len(
            {
                r.request_id
                for r in self.records
                if r.kind == "request" and r.src == "client"
            }
        )
