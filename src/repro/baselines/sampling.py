"""Sampling-based monitoring baselines.

Two baselines the paper argues against:

* :class:`CoarseAveragingMonitor` — a second-granularity monitor that
  reports per-interval *average* response times; the Figure 2 peak is
  invisible in its output.
* :class:`SamplingTracer` — a Dapper/Zipkin-style tracer that keeps
  each trace with probability ``rate``; the sampling ablation measures
  how quickly VLRT recall collapses as the rate drops.
"""

from __future__ import annotations

import random

from repro.analysis.anomaly import detect_vlrt
from repro.analysis.response_time import CompletionSample
from repro.analysis.series import Series
from repro.common.errors import AnalysisError
from repro.common.rng import RngStreams
from repro.common.timebase import Micros, seconds

__all__ = ["CoarseAveragingMonitor", "SamplingTracer"]


class CoarseAveragingMonitor:
    """Reports per-interval average response times (the classic tool).

    Parameters
    ----------
    interval_us:
        Averaging interval; defaults to 1 second, the typical
        monitoring resolution the paper contrasts against.
    """

    def __init__(self, interval_us: Micros = seconds(1)) -> None:
        if interval_us <= 0:
            raise AnalysisError("interval must be positive")
        self.interval_us = interval_us

    def observe(
        self,
        samples: list[CompletionSample],
        start: Micros,
        stop: Micros,
    ) -> Series:
        """Average response time (ms) per interval."""
        times: list[Micros] = []
        values: list[float] = []
        t = start
        ordered = sorted(samples, key=lambda s: s.completed_at)
        index = 0
        while t < stop:
            end = min(t + self.interval_us, stop)
            bucket: list[float] = []
            while index < len(ordered) and ordered[index].completed_at < end:
                if ordered[index].completed_at >= t:
                    bucket.append(ordered[index].response_time_us / 1_000.0)
                index += 1
            times.append(t)
            values.append(sum(bucket) / len(bucket) if bucket else 0.0)
            t = end
        return Series.from_pairs(zip(times, values))


class SamplingTracer:
    """Keeps each request trace with probability ``rate``.

    Mirrors the head-based sampling of production tracers: the keep
    decision is made per request, so an entire VLRT either appears or
    vanishes from the data.

    Parameters
    ----------
    rate:
        Keep probability per trace, in (0, 1].
    seed:
        Seed for a private generator when no ``rng`` is given.
    rng:
        An :class:`~repro.common.rng.RngStreams` family (the tracer
        draws from its own named substream, so the ablation shares the
        experiment master seed without perturbing other consumers) or
        a ready :class:`random.Random`.
    """

    #: Substream name used when an :class:`RngStreams` family is given.
    RNG_STREAM = "baselines.sampling_tracer"

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        rng: RngStreams | random.Random | None = None,
    ) -> None:
        if not 0.0 < rate <= 1.0:
            raise AnalysisError(f"sampling rate out of (0, 1]: {rate}")
        self.rate = rate
        if isinstance(rng, RngStreams):
            self._rng = rng.stream(self.RNG_STREAM)
        elif rng is not None:
            self._rng = rng
        else:
            self._rng = random.Random(seed)

    def sample(self, samples: list[CompletionSample]) -> list[CompletionSample]:
        """The subset of completions this tracer would have kept."""
        if self.rate >= 1.0:
            return list(samples)
        return [s for s in samples if self._rng.random() < self.rate]

    def vlrt_recall(
        self,
        samples: list[CompletionSample],
        threshold_factor: float = 10.0,
        min_response_ms: float = 50.0,
    ) -> float:
        """Fraction of true VLRT requests the sampled data still contains."""
        truth = {
            v.request_id
            for v in detect_vlrt(samples, threshold_factor, min_response_ms)
        }
        if not truth:
            raise AnalysisError("no VLRT requests in the ground truth")
        kept = self.sample(samples)
        found = {
            v.request_id
            for v in detect_vlrt(kept, threshold_factor, min_response_ms)
        }
        return len(found & truth) / len(truth)
