"""JSON scenario configuration files.

Lets the ``mscope run --config`` CLI (and downstream users) describe a
complete experiment — workload, tier sizing, replicas, and fault
injections — declaratively:

.. code-block:: json

    {
      "seed": 3,
      "duration_s": 5,
      "workload": {"users": 300, "think_time_ms": 700,
                   "session_model": "markov"},
      "tiers": {"apache": {"workers": 60},
                "mysql": {"workers": 16, "replicas": 2}},
      "faults": [{"type": "db_log_flush", "start_at_ms": 2000,
                  "period_ms": 10000, "flush_mb": 30, "bursts": 1}]
    }
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Callable

from repro.common.errors import ConfigError
from repro.common.timebase import Micros, ms, seconds
from repro.ntier.faults import (
    DBLogFlushFault,
    DirtyPageFlushFault,
    Fault,
    GarbageCollectionFault,
)
from repro.ntier.faults_extra import DvfsSlowdownFault, VmConsolidationFault
from repro.ntier.system import SystemConfig, TierConfig, default_tier_configs
from repro.rubbos.workload import WorkloadSpec

__all__ = ["ScenarioSpec", "load_scenario_file", "build_fault"]

MB = 1024 * 1024


@dataclasses.dataclass(slots=True)
class ScenarioSpec:
    """Everything a config file describes."""

    system_config: SystemConfig
    faults: list[Fault]
    duration: Micros


def _build_db_log_flush(spec: dict[str, Any]) -> Fault:
    return DBLogFlushFault(
        start_at=ms(spec.get("start_at_ms", 2_000)),
        period=ms(spec.get("period_ms", 10_000)),
        flush_bytes=int(spec.get("flush_mb", 30) * MB),
        bursts=spec.get("bursts"),
        tier=spec.get("tier", "mysql"),
    )


def _build_dirty_page(spec: dict[str, Any]) -> Fault:
    return DirtyPageFlushFault(
        tier=spec.get("tier", "apache"),
        threshold_bytes=int(spec.get("threshold_mb", 40) * MB),
        low_watermark_bytes=int(spec.get("low_watermark_mb", 12) * MB),
        dirty_rate_bytes_per_sec=int(spec.get("dirty_rate_mb_per_s", 8) * MB),
        initial_dirty_bytes=int(spec.get("initial_dirty_mb", 0) * MB),
    )


def _build_gc(spec: dict[str, Any]) -> Fault:
    return GarbageCollectionFault(
        tier=spec.get("tier", "tomcat"),
        start_at=ms(spec.get("start_at_ms", 1_000)),
        period=ms(spec.get("period_ms", 10_000)),
        pause=ms(spec.get("pause_ms", 250)),
        collections=spec.get("collections"),
    )


def _build_vm(spec: dict[str, Any]) -> Fault:
    return VmConsolidationFault(
        tier=spec.get("tier", "mysql"),
        start_at=ms(spec.get("start_at_ms", 1_000)),
        period=ms(spec.get("period_ms", 10_000)),
        burst=ms(spec.get("burst_ms", 300)),
        stolen_cores=spec.get("stolen_cores", 0),
        episodes=spec.get("episodes"),
    )


def _build_dvfs(spec: dict[str, Any]) -> Fault:
    return DvfsSlowdownFault(
        tier=spec.get("tier", "apache"),
        start_at=ms(spec.get("start_at_ms", 1_000)),
        period=ms(spec.get("period_ms", 10_000)),
        slow_duration=ms(spec.get("slow_duration_ms", 400)),
        speed_factor=spec.get("speed_factor", 0.25),
        episodes=spec.get("episodes"),
    )


_FAULT_BUILDERS: dict[str, Callable[[dict[str, Any]], Fault]] = {
    "db_log_flush": _build_db_log_flush,
    "dirty_page_flush": _build_dirty_page,
    "jvm_gc": _build_gc,
    "vm_consolidation": _build_vm,
    "dvfs_slowdown": _build_dvfs,
}


def build_fault(spec: dict[str, Any]) -> Fault:
    """Instantiate one fault from its JSON description."""
    kind = spec.get("type")
    builder = _FAULT_BUILDERS.get(kind)
    if builder is None:
        raise ConfigError(
            f"unknown fault type {kind!r}; "
            f"known: {sorted(_FAULT_BUILDERS)}"
        )
    return builder(spec)


def load_scenario_file(path: Path | str) -> ScenarioSpec:
    """Parse a scenario JSON file into a ready-to-run spec."""
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot load scenario file {path}: {exc}") from exc
    if not isinstance(raw, dict):
        raise ConfigError("scenario file must contain a JSON object")

    workload_raw = raw.get("workload", {})
    workload = WorkloadSpec(
        users=int(workload_raw.get("users", 300)),
        think_time_us=ms(workload_raw.get("think_time_ms", 700)),
        ramp_up_us=ms(workload_raw.get("ramp_up_ms", 300)),
        mix_name=workload_raw.get("mix", "read_write"),
        session_model=workload_raw.get("session_model", "weighted"),
    )

    tiers = default_tier_configs()
    for tier, tier_raw in raw.get("tiers", {}).items():
        if tier not in tiers:
            raise ConfigError(f"unknown tier {tier!r} in scenario file")
        tiers[tier] = TierConfig(
            workers=int(tier_raw.get("workers", tiers[tier].workers)),
            replicas=int(tier_raw.get("replicas", 1)),
        )

    config = SystemConfig(
        workload=workload,
        seed=int(raw.get("seed", 1)),
        tiers=tiers,
    )
    faults = [build_fault(spec) for spec in raw.get("faults", [])]
    duration = seconds(float(raw.get("duration_s", 5)))
    return ScenarioSpec(system_config=config, faults=faults, duration=duration)
