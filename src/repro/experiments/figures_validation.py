"""Figure harnesses for the evaluation section (Figures 9, 10, 11).

* Figure 9 — accuracy: event-monitor queue lengths vs the SysViz-style
  wire tracer's, per tier.
* Figure 10 — overhead: aggregate CPU (user+system+iowait) and disk
  write volume, monitors on vs off, across workloads.
* Figure 11 — throughput and response time, monitors on vs off.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.queues import concurrency_series, spans_from_traces
from repro.analysis.series import Series
from repro.common.errors import AnalysisError
from repro.common.timebase import Micros, ms, seconds
from repro.experiments.scenarios import ScenarioRun, baseline_run
from repro.ntier.tiers import TIER_ORDER

__all__ = [
    "Fig09Result",
    "Fig10Row",
    "Fig10Result",
    "Fig11Row",
    "Fig11Result",
    "figure_09",
    "figure_10",
    "figure_11",
]

_TIER_NODE = {"apache": "web1", "tomcat": "app1", "cjdbc": "mid1", "mysql": "db1"}

#: Event-monitor log streams per tier (instrumented write volume).
_EVENT_STREAMS = {
    "apache": "access_log",
    "tomcat": "catalina_log",
    "cjdbc": "controller_log",
    "mysql": "mysql_log",
}


# ----------------------------------------------------------------------
# Figure 9 — accuracy vs SysViz


@dataclasses.dataclass(slots=True)
class Fig09Result:
    """Per-tier agreement between event monitors and the wire tracer."""

    workload: int
    monitor_series: dict[str, Series]
    sysviz_series: dict[str, Series]

    def mean_abs_error(self, tier: str) -> float:
        a = self.monitor_series[tier].values
        b = self.sysviz_series[tier].values
        return float(np.mean(np.abs(a - b)))

    def peak_queue(self, tier: str) -> float:
        return self.monitor_series[tier].max()

    def to_text(self) -> str:
        lines = [
            f"Figure 9: queue-length agreement at workload {self.workload} "
            "(event mScopeMonitors vs SysViz wire tracer)"
        ]
        for tier in self.monitor_series:
            lines.append(
                f"  {tier:8s} peak queue={self.peak_queue(tier):6.1f} "
                f"mean |monitor - sysviz|={self.mean_abs_error(tier):6.2f}"
            )
        return "\n".join(lines)


def figure_09(
    workload: int = 8000,
    duration: Micros = seconds(8),
    step: Micros = ms(10),
    seed: int = 7,
    run: ScenarioRun | None = None,
) -> Fig09Result:
    """Reproduce Figure 9: monitors match the passive wire tracer."""
    if run is None:
        run = baseline_run(
            workload, seed=seed, duration=duration, with_sysviz=True
        )
    if run.sysviz is None:
        raise AnalysisError("figure 9 needs a run with the SysViz tracer")
    # Skip the ramp-up second at both analysis ends.
    start, stop = ms(1_000), run.duration
    monitor_series = {
        tier: concurrency_series(
            spans_from_traces(run.result.traces, tier), start, stop, step
        )
        for tier in TIER_ORDER
    }
    sysviz_series = {
        tier: run.sysviz.queue_series(tier, start, stop, step)
        for tier in TIER_ORDER
    }
    return Fig09Result(
        workload=run.system.config.workload.users,
        monitor_series=monitor_series,
        sysviz_series=sysviz_series,
    )


# ----------------------------------------------------------------------
# Figure 10 — CPU and disk-write overhead


@dataclasses.dataclass(frozen=True, slots=True)
class Fig10Row:
    """One tier's overhead at one workload."""

    workload: int
    tier: str
    cpu_pct_enabled: float
    cpu_pct_disabled: float
    disk_bytes_enabled: float
    disk_bytes_disabled: float

    @property
    def cpu_overhead_pct(self) -> float:
        return self.cpu_pct_enabled - self.cpu_pct_disabled

    @property
    def disk_write_ratio(self) -> float:
        return self.disk_bytes_enabled / max(self.disk_bytes_disabled, 1.0)


@dataclasses.dataclass(slots=True)
class Fig10Result:
    """The overhead comparison across workloads and tiers."""

    rows: list[Fig10Row]

    def rows_for(self, tier: str) -> list[Fig10Row]:
        return [r for r in self.rows if r.tier == tier]

    def max_cpu_overhead(self, tier: str) -> float:
        return max(r.cpu_overhead_pct for r in self.rows_for(tier))

    def to_text(self) -> str:
        lines = [
            "Figure 10: event-monitor overhead (aggregate CPU incl. iowait, "
            "event-log disk writes)",
            f"  {'workload':>8s} {'tier':8s} {'cpu_on%':>8s} {'cpu_off%':>9s} "
            f"{'overhead':>9s} {'disk_ratio':>10s}",
        ]
        for row in self.rows:
            lines.append(
                f"  {row.workload:8d} {row.tier:8s} "
                f"{row.cpu_pct_enabled:8.2f} {row.cpu_pct_disabled:9.2f} "
                f"{row.cpu_overhead_pct:+9.2f} {row.disk_write_ratio:10.2f}"
            )
        return "\n".join(lines)


def _overhead_pair(
    workload: int, duration: Micros, seed: int
) -> tuple[ScenarioRun, ScenarioRun]:
    enabled = baseline_run(
        workload, seed=seed, duration=duration, monitors_enabled=True
    )
    disabled = baseline_run(
        workload, seed=seed, duration=duration, monitors_enabled=False
    )
    return enabled, disabled


def figure_10(
    workloads: tuple[int, ...] = (1000, 2000, 4000, 8000),
    duration: Micros = seconds(8),
    seed: int = 7,
) -> Fig10Result:
    """Reproduce Figure 10: 1–3% CPU, ~2x disk writes when enabled."""
    rows: list[Fig10Row] = []
    measure_from = ms(1_000)  # skip ramp-up
    for workload in workloads:
        enabled, disabled = _overhead_pair(workload, duration, seed)
        for tier, node_name in _TIER_NODE.items():
            stream = _EVENT_STREAMS[tier]
            cpu_on = enabled.system.nodes[node_name].cpu.aggregate_pct(
                measure_from, duration
            )
            cpu_off = disabled.system.nodes[node_name].cpu.aggregate_pct(
                measure_from, duration
            )
            bytes_on = _stream_bytes(enabled, node_name, stream)
            bytes_off = _stream_bytes(disabled, node_name, stream)
            rows.append(
                Fig10Row(
                    workload=workload,
                    tier=tier,
                    cpu_pct_enabled=cpu_on,
                    cpu_pct_disabled=cpu_off,
                    disk_bytes_enabled=bytes_on,
                    disk_bytes_disabled=bytes_off,
                )
            )
    return Fig10Result(rows=rows)


def _stream_bytes(run: ScenarioRun, node_name: str, stream: str) -> float:
    facilities = run.system.nodes[node_name].facilities
    facility = facilities.get(stream)
    return facility.bytes_written.total if facility is not None else 0.0


# ----------------------------------------------------------------------
# Figure 11 — throughput and response time, monitors on vs off


@dataclasses.dataclass(frozen=True, slots=True)
class Fig11Row:
    """One workload's end-to-end performance, monitors on vs off."""

    workload: int
    throughput_enabled: float
    throughput_disabled: float
    response_ms_enabled: float
    response_ms_disabled: float

    @property
    def throughput_delta_pct(self) -> float:
        base = max(self.throughput_disabled, 1e-9)
        return 100.0 * (self.throughput_enabled - self.throughput_disabled) / base

    @property
    def response_delta_ms(self) -> float:
        return self.response_ms_enabled - self.response_ms_disabled


@dataclasses.dataclass(slots=True)
class Fig11Result:
    """The end-to-end comparison across workloads."""

    rows: list[Fig11Row]

    def max_throughput_delta_pct(self) -> float:
        return max(abs(r.throughput_delta_pct) for r in self.rows)

    def max_response_delta_ms(self) -> float:
        return max(r.response_delta_ms for r in self.rows)

    def to_text(self) -> str:
        lines = [
            "Figure 11: system performance, event monitors enabled vs disabled",
            f"  {'workload':>8s} {'thpt_on':>9s} {'thpt_off':>9s} {'delta%':>7s} "
            f"{'rt_on':>7s} {'rt_off':>7s} {'delta':>7s}",
        ]
        for row in self.rows:
            lines.append(
                f"  {row.workload:8d} {row.throughput_enabled:9.1f} "
                f"{row.throughput_disabled:9.1f} {row.throughput_delta_pct:+7.2f} "
                f"{row.response_ms_enabled:7.2f} {row.response_ms_disabled:7.2f} "
                f"{row.response_delta_ms:+7.2f}"
            )
        return "\n".join(lines)


def figure_11(
    workloads: tuple[int, ...] = (1000, 2000, 4000, 8000),
    duration: Micros = seconds(8),
    seed: int = 7,
) -> Fig11Result:
    """Reproduce Figure 11: throughput unchanged, ~+2 ms response time."""
    rows: list[Fig11Row] = []
    measure_from = ms(1_000)
    for workload in workloads:
        enabled, disabled = _overhead_pair(workload, duration, seed)
        rows.append(
            Fig11Row(
                workload=workload,
                throughput_enabled=enabled.result.throughput(measure_from, duration),
                throughput_disabled=disabled.result.throughput(
                    measure_from, duration
                ),
                response_ms_enabled=enabled.result.mean_response_time_ms(
                    measure_from, duration
                ),
                response_ms_disabled=disabled.result.mean_response_time_ms(
                    measure_from, duration
                ),
            )
        )
    return Fig11Result(rows=rows)
