"""Workload sweeps: the classic n-tier saturation curve.

Sweeping the number of concurrent users maps the system's operating
regions — linear throughput growth, the knee, then saturation where
queueing dominates response time.  VSB research lives just *below*
the knee: the paper's transient bottlenecks hurt precisely because the
system is not obviously saturated on any average metric.
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import ConfigError
from repro.common.timebase import Micros, ms, seconds
from repro.experiments.scenarios import baseline_run

__all__ = ["SweepPoint", "SaturationSweep", "saturation_sweep"]


@dataclasses.dataclass(frozen=True, slots=True)
class SweepPoint:
    """One workload's steady-state performance."""

    workload: int
    throughput: float
    mean_response_ms: float
    p99_response_ms: float
    bottleneck_utilization: float


@dataclasses.dataclass(slots=True)
class SaturationSweep:
    """A full workload sweep with knee detection."""

    points: list[SweepPoint]

    def knee_workload(self) -> int:
        """The first workload where throughput stops scaling linearly.

        Detected as the point where per-user throughput efficiency
        drops below 80% of the first point's.
        """
        if len(self.points) < 2:
            raise ConfigError("knee detection needs at least two points")
        base = self.points[0].throughput / self.points[0].workload
        for point in self.points[1:]:
            efficiency = point.throughput / point.workload
            if efficiency < 0.8 * base:
                return point.workload
        return self.points[-1].workload

    def to_text(self) -> str:
        lines = [
            "Saturation sweep (RUBBoS, monitors enabled)",
            f"  {'workload':>8s} {'thpt':>8s} {'meanRT':>8s} {'p99RT':>8s} "
            f"{'maxutil':>8s}",
        ]
        for point in self.points:
            lines.append(
                f"  {point.workload:8d} {point.throughput:8.1f} "
                f"{point.mean_response_ms:8.2f} {point.p99_response_ms:8.2f} "
                f"{point.bottleneck_utilization:8.2f}"
            )
        lines.append(f"  knee at workload ~{self.knee_workload()}")
        return "\n".join(lines)


def saturation_sweep(
    workloads: tuple[int, ...] = (1000, 2000, 4000, 8000, 12000),
    duration: Micros = seconds(6),
    seed: int = 7,
    think_ms: float = 7_000.0,
) -> SaturationSweep:
    """Run the sweep; each point is an independent run at one workload."""
    if not workloads:
        raise ConfigError("sweep needs at least one workload")
    points: list[SweepPoint] = []
    measure_from = ms(1_000)
    for workload in workloads:
        run = baseline_run(
            workload, seed=seed, think_ms=think_ms, duration=duration
        )
        window = run.result.collector.completed_between(measure_from, duration)
        response_times = sorted(t.response_time_ms() for t in window)
        p99 = response_times[int(len(response_times) * 0.99)] if response_times else 0.0
        utilization = max(
            node.cpu.utilization(measure_from, duration)
            for node in run.system.nodes.values()
        )
        points.append(
            SweepPoint(
                workload=workload,
                throughput=run.result.throughput(measure_from, duration),
                mean_response_ms=run.result.mean_response_time_ms(
                    measure_from, duration
                ),
                p99_response_ms=p99,
                bottleneck_utilization=utilization,
            )
        )
    return SaturationSweep(points=points)
