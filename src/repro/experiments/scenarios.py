"""Calibrated experiment scenarios.

Builders for the paper's experimental setups:

* :func:`scenario_a` — database log flush saturates the DB disk
  (Section V-A; Figures 2, 4, 6, 7);
* :func:`scenario_b` — dirty-page recycling saturates web/app CPUs at
  two different moments (Section V-B; Figure 8);
* :func:`baseline_run` — a healthy system at a given workload, with
  monitors on or off (Section VI; Figures 9, 10, 11).

Each builder returns a :class:`ScenarioRun` carrying the system, its
ground truth, the attached monitors, and (when a log directory was
given) the native logs ready for mScopeDataTransformer.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.baselines.sysviz import SysVizTracer
from repro.common.timebase import Micros, ms, seconds
from repro.monitors.event.suite import EventMonitorSuite
from repro.monitors.resource.suite import ResourceMonitorSuite
from repro.ntier.faults import (
    DBLogFlushFault,
    DirtyPageFlushFault,
    Fault,
    GarbageCollectionFault,
)
from repro.ntier.faults_catalog import (
    CacheStampedeFault,
    ConnectionPoolExhaustionFault,
    LockConvoyFault,
    MemoryLeakFault,
    NetworkJitterFault,
    RetryStormFault,
)
from repro.ntier.faults_extra import DvfsSlowdownFault, VmConsolidationFault
from repro.ntier.system import NTierSystem, SystemConfig, SystemResult, TierConfig
from repro.rubbos.interactions import FANOUT_MIX, READ_WRITE_MIX
from repro.rubbos.workload import WorkloadSpec
from repro.transformer.pipeline import MScopeDataTransformer
from repro.warehouse.db import MScopeDB

__all__ = [
    "ScenarioRun",
    "scenario_tier_configs",
    "scenario_a",
    "scenario_b",
    "scenario_gc",
    "scenario_dvfs",
    "scenario_vm",
    "scenario_retry_storm",
    "scenario_pool_exhaustion",
    "scenario_lock_convoy",
    "scenario_cache_stampede",
    "scenario_net_jitter",
    "scenario_memory_leak",
    "baseline_run",
    "load_warehouse",
    "record_run_metadata",
]

MB = 1024 * 1024


@dataclasses.dataclass(slots=True)
class ScenarioRun:
    """One executed scenario and everything observed during it."""

    system: NTierSystem
    result: SystemResult
    faults: list[Fault]
    events: EventMonitorSuite | None
    resources: ResourceMonitorSuite | None
    sysviz: SysVizTracer | None
    log_dir: Path | None
    duration: Micros

    @property
    def epoch_us(self) -> int:
        """Epoch offset for rebasing warehouse timestamps."""
        return self.system.wall_clock.epoch_micros(0)


def scenario_tier_configs() -> dict[str, TierConfig]:
    """Deliberately small worker pools, as in the paper's testbed.

    Transient bottlenecks amplify into cross-tier pushback only when
    thread pools can fill during the bottleneck's lifetime.
    """
    return {
        "apache": TierConfig(workers=60),
        "tomcat": TierConfig(workers=24),
        "cjdbc": TierConfig(workers=24),
        "mysql": TierConfig(workers=16),
    }


def _build(
    users: int,
    think_ms: float,
    seed: int,
    log_dir: Path | None,
    tiers: dict[str, TierConfig] | None,
    faults: list[Fault],
    monitor_interval: Micros,
    with_event_monitors: bool,
    with_resource_monitors: bool,
    with_sysviz: bool,
    kernel: str = "scalar",
    mix_name: str = READ_WRITE_MIX,
    dispatch: str = "round-robin",
) -> tuple[NTierSystem, EventMonitorSuite | None, ResourceMonitorSuite | None, SysVizTracer | None]:
    workload = WorkloadSpec(
        users=users, think_time_us=ms(think_ms), ramp_up_us=ms(300),
        mix_name=mix_name,
    )
    config = SystemConfig(
        workload=workload, seed=seed, log_dir=log_dir, kernel=kernel,
        dispatch=dispatch,
    )
    if tiers is not None:
        config.tiers = tiers
    system = NTierSystem(config, faults=faults)
    events = None
    if with_event_monitors:
        events = EventMonitorSuite()
        events.attach(system)
    resources = None
    if with_resource_monitors:
        resources = ResourceMonitorSuite(system, interval_us=monitor_interval)
        resources.start()
    sysviz = None
    if with_sysviz:
        sysviz = SysVizTracer()
        sysviz.attach(system)
    return system, events, resources, sysviz


def scenario_a(
    seed: int = 3,
    users: int = 300,
    think_ms: float = 700.0,
    duration: Micros = seconds(5),
    flush_at: Micros = seconds(2),
    flush_bytes: int = 30 * MB,
    log_dir: Path | None = None,
    monitor_interval: Micros = ms(50),
    with_sysviz: bool = False,
    kernel: str = "scalar",
) -> ScenarioRun:
    """Database-I/O very short bottleneck (Figures 2, 4, 6, 7)."""
    fault = DBLogFlushFault(
        start_at=flush_at,
        period=seconds(10),
        flush_bytes=flush_bytes,
        bursts=1,
    )
    system, events, resources, sysviz = _build(
        users,
        think_ms,
        seed,
        log_dir,
        scenario_tier_configs(),
        [fault],
        monitor_interval,
        with_event_monitors=True,
        with_resource_monitors=True,
        with_sysviz=with_sysviz,
        kernel=kernel,
    )
    result = system.run(duration)
    return ScenarioRun(
        system=system,
        result=result,
        faults=[fault],
        events=events,
        resources=resources,
        sysviz=sysviz,
        log_dir=log_dir,
        duration=duration,
    )


def scenario_b(
    seed: int = 3,
    users: int = 300,
    think_ms: float = 700.0,
    duration: Micros = seconds(5),
    log_dir: Path | None = None,
    monitor_interval: Micros = ms(50),
    with_sysviz: bool = False,
    kernel: str = "scalar",
) -> ScenarioRun:
    """Dirty-page recycling bottleneck, two staggered peaks (Figure 8).

    The Apache node's dirty level starts near its threshold, so its
    flusher fires first (first RT peak: Apache queue only); the Tomcat
    node crosses its higher threshold about a second later (second
    peak: Apache *and* Tomcat queues — cross-tier amplification).
    """
    apache_fault = DirtyPageFlushFault(
        tier="apache",
        threshold_bytes=40 * MB,
        low_watermark_bytes=12 * MB,
        dirty_rate_bytes_per_sec=8 * MB,
        initial_dirty_bytes=30 * MB,
    )
    tomcat_fault = DirtyPageFlushFault(
        tier="tomcat",
        threshold_bytes=44 * MB,
        low_watermark_bytes=12 * MB,
        dirty_rate_bytes_per_sec=8 * MB,
        initial_dirty_bytes=20 * MB,
    )
    system, events, resources, sysviz = _build(
        users,
        think_ms,
        seed,
        log_dir,
        scenario_tier_configs(),
        [apache_fault, tomcat_fault],
        monitor_interval,
        with_event_monitors=True,
        with_resource_monitors=True,
        with_sysviz=with_sysviz,
        kernel=kernel,
    )
    result = system.run(duration)
    return ScenarioRun(
        system=system,
        result=result,
        faults=[apache_fault, tomcat_fault],
        events=events,
        resources=resources,
        sysviz=sysviz,
        log_dir=log_dir,
        duration=duration,
    )


def _single_fault_scenario(
    fault: Fault,
    seed: int,
    users: int,
    think_ms: float,
    duration: Micros,
    log_dir: Path | None,
    monitor_interval: Micros,
    with_sysviz: bool,
    kernel: str = "scalar",
    tiers: dict[str, TierConfig] | None = None,
    mix_name: str = READ_WRITE_MIX,
    dispatch: str = "round-robin",
) -> ScenarioRun:
    """Run one injected fault on the calibrated small-pool testbed."""
    system, events, resources, sysviz = _build(
        users,
        think_ms,
        seed,
        log_dir,
        tiers if tiers is not None else scenario_tier_configs(),
        [fault],
        monitor_interval,
        with_event_monitors=True,
        with_resource_monitors=True,
        with_sysviz=with_sysviz,
        kernel=kernel,
        mix_name=mix_name,
        dispatch=dispatch,
    )
    result = system.run(duration)
    return ScenarioRun(
        system=system,
        result=result,
        faults=[fault],
        events=events,
        resources=resources,
        sysviz=sysviz,
        log_dir=log_dir,
        duration=duration,
    )


def scenario_gc(
    seed: int = 3,
    users: int = 300,
    think_ms: float = 700.0,
    duration: Micros = seconds(5),
    pause_at: Micros = seconds(2),
    pause: Micros = ms(400),
    log_dir: Path | None = None,
    monitor_interval: Micros = ms(50),
    with_sysviz: bool = False,
    kernel: str = "scalar",
) -> ScenarioRun:
    """Stop-the-world JVM collection on the Tomcat tier (Section II)."""
    fault = GarbageCollectionFault(
        tier="tomcat",
        start_at=pause_at,
        period=seconds(10),
        pause=pause,
        collections=1,
    )
    return _single_fault_scenario(
        fault, seed, users, think_ms, duration, log_dir,
        monitor_interval, with_sysviz, kernel=kernel,
    )


def scenario_dvfs(
    seed: int = 3,
    users: int = 300,
    think_ms: float = 700.0,
    duration: Micros = seconds(5),
    slow_at: Micros = seconds(2),
    slow_duration: Micros = ms(600),
    speed_factor: float = 0.05,
    log_dir: Path | None = None,
    monitor_interval: Micros = ms(50),
    with_sysviz: bool = False,
    kernel: str = "scalar",
) -> ScenarioRun:
    """CPU frequency-scaling slowdown on the Tomcat tier (Section II)."""
    fault = DvfsSlowdownFault(
        tier="tomcat",
        start_at=slow_at,
        period=seconds(10),
        slow_duration=slow_duration,
        speed_factor=speed_factor,
        episodes=1,
    )
    return _single_fault_scenario(
        fault, seed, users, think_ms, duration, log_dir,
        monitor_interval, with_sysviz, kernel=kernel,
    )


def scenario_vm(
    seed: int = 3,
    users: int = 300,
    think_ms: float = 700.0,
    duration: Micros = seconds(5),
    burst_at: Micros = seconds(2),
    burst: Micros = ms(400),
    log_dir: Path | None = None,
    monitor_interval: Micros = ms(50),
    with_sysviz: bool = False,
    kernel: str = "scalar",
) -> ScenarioRun:
    """Co-located-VM CPU steal on the Tomcat tier (Section II)."""
    fault = VmConsolidationFault(
        tier="tomcat",
        start_at=burst_at,
        period=seconds(10),
        burst=burst,
        episodes=1,
    )
    return _single_fault_scenario(
        fault, seed, users, think_ms, duration, log_dir,
        monitor_interval, with_sysviz, kernel=kernel,
    )


def scenario_retry_storm(
    seed: int = 3,
    users: int = 300,
    think_ms: float = 700.0,
    duration: Micros = seconds(5),
    storm_at: Micros = seconds(2),
    storm_duration: Micros = ms(400),
    log_dir: Path | None = None,
    monitor_interval: Micros = ms(50),
    with_sysviz: bool = False,
    kernel: str = "scalar",
) -> ScenarioRun:
    """Timeout-retry amplification saturates the app tier's CPU."""
    fault = RetryStormFault(
        tier="tomcat",
        start_at=storm_at,
        period=seconds(10),
        storm_duration=storm_duration,
        episodes=1,
    )
    return _single_fault_scenario(
        fault, seed, users, think_ms, duration, log_dir,
        monitor_interval, with_sysviz, kernel=kernel,
    )


def scenario_pool_exhaustion(
    seed: int = 3,
    users: int = 300,
    think_ms: float = 700.0,
    duration: Micros = seconds(5),
    exhaust_at: Micros = seconds(2),
    hold_duration: Micros = ms(450),
    log_dir: Path | None = None,
    monitor_interval: Micros = ms(50),
    with_sysviz: bool = False,
    kernel: str = "scalar",
) -> ScenarioRun:
    """Connection-pool exhaustion on ONE of two MySQL replicas.

    The replicated-tier scenario: C-JDBC balances over two database
    backends and the fault hits only the second (``mysql#2`` → node
    ``db2``), so a correct diagnosis must blame the *replica address*,
    not merely "the database tier".
    """
    tiers = scenario_tier_configs()
    tiers["mysql"] = TierConfig(workers=16, replicas=2)
    fault = ConnectionPoolExhaustionFault(
        tier="mysql#2",
        start_at=exhaust_at,
        period=seconds(10),
        hold_duration=hold_duration,
        episodes=1,
    )
    return _single_fault_scenario(
        fault, seed, users, think_ms, duration, log_dir,
        monitor_interval, with_sysviz, kernel=kernel, tiers=tiers,
    )


def scenario_lock_convoy(
    seed: int = 3,
    users: int = 300,
    think_ms: float = 700.0,
    duration: Micros = seconds(5),
    convoy_at: Micros = seconds(2),
    convoy_duration: Micros = ms(400),
    log_dir: Path | None = None,
    monitor_interval: Micros = ms(50),
    with_sysviz: bool = False,
    kernel: str = "scalar",
) -> ScenarioRun:
    """A hot-lock convoy serializes the database tier."""
    fault = LockConvoyFault(
        tier="mysql",
        start_at=convoy_at,
        period=seconds(10),
        convoy_duration=convoy_duration,
        episodes=1,
    )
    return _single_fault_scenario(
        fault, seed, users, think_ms, duration, log_dir,
        monitor_interval, with_sysviz, kernel=kernel,
    )


def scenario_cache_stampede(
    seed: int = 3,
    users: int = 300,
    think_ms: float = 700.0,
    duration: Micros = seconds(5),
    stampede_at: Micros = seconds(2),
    stampede_duration: Micros = ms(450),
    log_dir: Path | None = None,
    monitor_interval: Micros = ms(50),
    with_sysviz: bool = False,
    kernel: str = "scalar",
) -> ScenarioRun:
    """A buffer-pool flush stampedes every read to the database disk.

    Runs the fan-out interaction mix over three C-JDBC replicas, so
    the catalogue also exercises fan-out/fan-in call graphs under a
    disk-level fault downstream of the join.
    """
    tiers = scenario_tier_configs()
    tiers["cjdbc"] = TierConfig(workers=24, replicas=3)
    fault = CacheStampedeFault(
        tier="mysql",
        start_at=stampede_at,
        period=seconds(10),
        stampede_duration=stampede_duration,
        episodes=1,
    )
    return _single_fault_scenario(
        fault, seed, users, think_ms, duration, log_dir,
        monitor_interval, with_sysviz, kernel=kernel, tiers=tiers,
        mix_name=FANOUT_MIX,
    )


def scenario_net_jitter(
    seed: int = 3,
    users: int = 300,
    think_ms: float = 700.0,
    duration: Micros = seconds(5),
    jitter_at: Micros = seconds(2),
    jitter_duration: Micros = ms(350),
    log_dir: Path | None = None,
    monitor_interval: Micros = ms(50),
    with_sysviz: bool = False,
    kernel: str = "scalar",
) -> ScenarioRun:
    """A noisy neighbour jitters the database node's network and CPU."""
    fault = NetworkJitterFault(
        tier="mysql",
        start_at=jitter_at,
        period=seconds(10),
        jitter_duration=jitter_duration,
        episodes=1,
    )
    return _single_fault_scenario(
        fault, seed, users, think_ms, duration, log_dir,
        monitor_interval, with_sysviz, kernel=kernel,
    )


def scenario_memory_leak(
    seed: int = 3,
    users: int = 300,
    think_ms: float = 700.0,
    duration: Micros = seconds(5),
    log_dir: Path | None = None,
    monitor_interval: Micros = ms(50),
    with_sysviz: bool = False,
    kernel: str = "scalar",
) -> ScenarioRun:
    """A slow leak on the middleware node ends in reclaim thrash."""
    fault = MemoryLeakFault(tier="cjdbc")
    return _single_fault_scenario(
        fault, seed, users, think_ms, duration, log_dir,
        monitor_interval, with_sysviz, kernel=kernel,
    )


def baseline_run(
    workload_users: int,
    seed: int = 7,
    think_ms: float = 7_000.0,
    duration: Micros = seconds(8),
    monitors_enabled: bool = True,
    resource_monitors: bool = False,
    log_dir: Path | None = None,
    with_sysviz: bool = False,
    monitor_interval: Micros = ms(50),
    kernel: str = "scalar",
) -> ScenarioRun:
    """A healthy full-size run for accuracy/overhead evaluation.

    ``workload_users`` follows the paper's convention: the workload
    *is* the number of concurrent users (RUBBoS think time 7 s).
    """
    system, events, resources, sysviz = _build(
        workload_users,
        think_ms,
        seed,
        log_dir,
        None,  # default (production-size) tier configs
        [],
        monitor_interval,
        with_event_monitors=monitors_enabled,
        with_resource_monitors=resource_monitors,
        with_sysviz=with_sysviz,
        kernel=kernel,
    )
    result = system.run(duration)
    return ScenarioRun(
        system=system,
        result=result,
        faults=[],
        events=events,
        resources=resources,
        sysviz=sysviz,
        log_dir=log_dir,
        duration=duration,
    )


def load_warehouse(
    run: ScenarioRun,
    db: MScopeDB | None = None,
    workdir: Path | None = None,
    jobs: int | None = None,
) -> MScopeDB:
    """Run mScopeDataTransformer over a scenario's native logs.

    Also records the experiment and host metadata in the static
    tables.  Requires the scenario to have been run with ``log_dir``.
    ``jobs`` sets the parse/convert worker-process count (``None``
    uses every core; the warehouse contents are identical either way).
    """
    if run.log_dir is None:
        raise ValueError("scenario was run without a log directory")
    if db is None:
        db = MScopeDB()
    transformer = MScopeDataTransformer(db, workdir=workdir, jobs=jobs)
    transformer.transform_directory(run.log_dir)
    record_run_metadata(run, db)
    return db


def record_run_metadata(run: ScenarioRun, db: MScopeDB) -> None:
    """Record the run's experiment and host metadata in ``db``.

    Shared by :func:`load_warehouse` and the validation harness's
    :class:`~repro.validation.runner.ScenarioRunner`, whose modes build
    their warehouses through different transformer paths.
    """
    db.set_experiment_meta("seed", str(run.system.config.seed))
    db.set_experiment_meta("workload_users", str(run.system.config.workload.users))
    db.set_experiment_meta("duration_us", str(run.duration))
    db.set_experiment_meta("epoch_us", str(run.epoch_us))
    for tier, server in run.system.servers.items():
        node = server.node
        db.register_host(
            node.name, tier, node.spec.cores, node.spec.disk_bandwidth_bytes_per_sec
        )
