"""Figure harnesses for the illustrative scenarios (Figures 2–8).

Each ``figure_NN`` function reproduces one figure of the paper from a
:class:`~repro.experiments.scenarios.ScenarioRun`, returning a result
object with the figure's series/rows plus a ``to_text()`` rendering.
The numbers come from the monitors' own observations (the same values
their native logs carry); the warehouse path over the identical logs
is exercised by the examples and the integration tests.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.anomaly import cluster_anomaly_windows, detect_vlrt
from repro.analysis.queues import concurrency_series, spans_from_traces
from repro.analysis.response_time import (
    CompletionSample,
    PointInTimeWindow,
    completions_from_traces,
    point_in_time_response_times,
)
from repro.analysis.series import Series, pearson_correlation
from repro.baselines.sampling import CoarseAveragingMonitor
from repro.common.errors import AnalysisError
from repro.common.records import BoundaryRecord
from repro.common.timebase import Micros, ms, seconds, to_ms
from repro.experiments.scenarios import ScenarioRun
from repro.ntier.tiers import TIER_ORDER

__all__ = [
    "Fig02Result",
    "Fig04Result",
    "Fig05Result",
    "Fig06Result",
    "Fig07Result",
    "Fig08Result",
    "figure_02",
    "figure_04",
    "figure_05",
    "figure_06",
    "figure_07",
    "figure_08",
]

_TIER_NODE = {"apache": "web1", "tomcat": "app1", "cjdbc": "mid1", "mysql": "db1"}


def _completions(run: ScenarioRun) -> list[CompletionSample]:
    samples = completions_from_traces(run.result.traces)
    if not samples:
        raise AnalysisError("scenario produced no completed requests")
    return samples


def _collectl_series(run: ScenarioRun, node: str, metric: str) -> Series:
    if run.resources is None:
        raise AnalysisError("scenario ran without resource monitors")
    for monitor in run.resources.by_node(node):
        if monitor.monitor_name == "collectl":
            return Series.from_pairs(
                (s.timestamp, s.metrics[metric]) for s in monitor.samples
            )
    raise AnalysisError(f"no collectl monitor on node {node!r}")


# ----------------------------------------------------------------------
# Figure 2 — point-in-time response time vs coarse sampling


@dataclasses.dataclass(slots=True)
class Fig02Result:
    """Point-in-time RT windows plus the 1 s-averaged baseline."""

    windows: list[PointInTimeWindow]
    coarse: Series
    peak_ms: float
    average_ms: float

    @property
    def peak_over_average(self) -> float:
        return self.peak_ms / max(self.average_ms, 1e-9)

    @property
    def coarse_peak_ms(self) -> float:
        return self.coarse.max()

    def to_text(self) -> str:
        lines = [
            "Figure 2: point-in-time response time (50 ms windows)",
            f"  peak PIT response time : {self.peak_ms:8.1f} ms",
            f"  period average         : {self.average_ms:8.1f} ms",
            f"  peak / average         : {self.peak_over_average:8.1f}x",
            f"  1s-sampled series peak : {self.coarse_peak_ms:8.1f} ms"
            "  (the peak the coarse monitor reports)",
        ]
        return "\n".join(lines)


def figure_02(run: ScenarioRun, window_us: Micros = ms(50)) -> Fig02Result:
    """Reproduce Figure 2 from a scenario-A run."""
    samples = _completions(run)
    windows = point_in_time_response_times(samples, window_us, 0, run.duration)
    coarse = CoarseAveragingMonitor(seconds(1)).observe(samples, 0, run.duration)
    total_rt = sum(s.response_time_us for s in samples)
    return Fig02Result(
        windows=windows,
        coarse=coarse,
        peak_ms=max(w.max_ms for w in windows),
        average_ms=to_ms(total_rt / len(samples)),
    )


# ----------------------------------------------------------------------
# Figure 4 — per-node disk utilization around the bottleneck


@dataclasses.dataclass(slots=True)
class Fig04Result:
    """Disk utilization series per node."""

    series: dict[str, Series]
    window: tuple[Micros, Micros]

    def peak(self, node: str) -> float:
        return self.series[node].window(*self.window).max()

    def to_text(self) -> str:
        lines = ["Figure 4: disk utilization during the anomaly window"]
        for node, _ in sorted(self.series.items()):
            lines.append(f"  {node:6s} peak disk util: {self.peak(node):6.1f}%")
        return "\n".join(lines)


def figure_04(run: ScenarioRun) -> Fig04Result:
    """Reproduce Figure 4: only the DB node's disk saturates."""
    window = _anomaly_window(run)
    series = {
        node: _collectl_series(run, node, "disk_util_pct")
        for node in _TIER_NODE.values()
    }
    return Fig04Result(series=series, window=window)


def _anomaly_window(run: ScenarioRun) -> tuple[Micros, Micros]:
    samples = _completions(run)
    vlrts = detect_vlrt(samples)
    if not vlrts:
        raise AnalysisError("no VLRT requests in this run")
    windows = cluster_anomaly_windows(vlrts)
    biggest = max(windows, key=lambda w: w.vlrt_count)
    return biggest.start, biggest.stop


# ----------------------------------------------------------------------
# Figure 5 — causal path of one request


@dataclasses.dataclass(slots=True)
class Fig05Result:
    """The reconstructed execution path of one (slow) request."""

    request_id: str
    interaction: str
    response_ms: float
    hops: list[BoundaryRecord]

    def to_text(self) -> str:
        lines = [
            f"Figure 5: execution path of {self.request_id} "
            f"({self.interaction}, {self.response_ms:.1f} ms)",
        ]
        for hop in self.hops:
            ds = hop.downstream_sending
            dr = hop.downstream_receiving
            lines.append(
                f"  {hop.tier:8s} UA={hop.upstream_arrival} "
                f"DS={ds if ds is not None else '-'} "
                f"DR={dr if dr is not None else '-'} "
                f"UD={hop.upstream_departure}"
            )
        return "\n".join(lines)


def figure_05(run: ScenarioRun) -> Fig05Result:
    """Reconstruct the slowest request's path (Figure 5's flow)."""
    slowest = max(
        (t for t in run.result.traces if t.is_complete()),
        key=lambda t: t.response_time(),
    )
    hops = sorted(slowest.visits, key=lambda v: v.upstream_arrival)
    return Fig05Result(
        request_id=slowest.request_id,
        interaction=slowest.interaction,
        response_ms=slowest.response_time_ms(),
        hops=hops,
    )


# ----------------------------------------------------------------------
# Figure 6 — cross-tier queue pushback


@dataclasses.dataclass(slots=True)
class Fig06Result:
    """Per-tier queue-length series around the anomaly."""

    series: dict[str, Series]
    window: tuple[Micros, Micros]

    def peak(self, tier: str) -> float:
        return self.series[tier].window(*self.window).max()

    def baseline(self, tier: str) -> float:
        start, _ = self.window
        return self.series[tier].window(0, start).mean()

    def pushback_tiers(self) -> list[str]:
        return [
            tier
            for tier in self.series
            if self.peak(tier) >= 3.0 * max(self.baseline(tier), 0.5)
        ]

    def to_text(self) -> str:
        lines = ["Figure 6: per-tier queue lengths (pushback check)"]
        for tier in self.series:
            lines.append(
                f"  {tier:8s} baseline={self.baseline(tier):6.1f} "
                f"peak={self.peak(tier):6.1f}"
            )
        lines.append(f"  pushback observed on: {', '.join(self.pushback_tiers())}")
        return "\n".join(lines)


def figure_06(run: ScenarioRun, step: Micros = ms(10)) -> Fig06Result:
    """Reproduce Figure 6: queues rise across every tier at once."""
    window = _anomaly_window(run)
    series = {
        tier: concurrency_series(
            spans_from_traces(run.result.traces, tier), 0, run.duration, step
        )
        for tier in TIER_ORDER
    }
    return Fig06Result(series=series, window=window)


# ----------------------------------------------------------------------
# Figure 7 — DB disk utilization vs front-tier queue correlation


@dataclasses.dataclass(slots=True)
class Fig07Result:
    """Correlation between the DB disk and the Apache queue."""

    correlation: float
    disk_series: Series
    queue_series: Series

    def to_text(self) -> str:
        return (
            "Figure 7: DB disk utilization vs Apache queue length\n"
            f"  Pearson r = {self.correlation:+.3f}"
        )


def figure_07(run: ScenarioRun, step: Micros = ms(50)) -> Fig07Result:
    """Reproduce Figure 7's correlation evidence."""
    start, stop = _anomaly_window(run)
    context = (max(0, start - ms(500)), min(run.duration, stop + ms(500)))
    disk = _collectl_series(run, "db1", "disk_util_pct").window(*context)
    queue = concurrency_series(
        spans_from_traces(run.result.traces, "apache"), context[0], context[1], step
    )
    return Fig07Result(
        correlation=pearson_correlation(disk, queue),
        disk_series=disk,
        queue_series=queue,
    )


# ----------------------------------------------------------------------
# Figure 8 — the dirty-page scenario, four panels


@dataclasses.dataclass(slots=True)
class Fig08Result:
    """The four panels of Figure 8."""

    pit_windows: list[PointInTimeWindow]          # (a)
    queue_series: dict[str, Series]               # (b)
    cpu_series: dict[str, Series]                 # (c)
    dirty_series: dict[str, Series]               # (d)
    peaks: list[tuple[Micros, Micros]]

    def peak_rt_ms(self) -> float:
        return max(w.max_ms for w in self.pit_windows)

    def average_rt_ms(self) -> float:
        weighted = sum(w.mean_ms * w.count for w in self.pit_windows)
        count = sum(w.count for w in self.pit_windows)
        return weighted / max(count, 1)

    def queue_peak_in(self, tier: str, window: tuple[Micros, Micros]) -> float:
        return self.queue_series[tier].window(*window).max()

    def queue_mean_in(self, tier: str, window: tuple[Micros, Micros]) -> float:
        """Mean queue length over the window.

        The mean — not the max — is what distinguishes the two peaks:
        the post-burst drain briefly pulses through downstream tiers
        in both cases, but only a tier whose CPU is actually saturated
        holds a large queue for the whole window.
        """
        return self.queue_series[tier].window(*window).mean()

    def cpu_peak_in(self, node: str, window: tuple[Micros, Micros]) -> float:
        return self.cpu_series[node].window(*window).max()

    def dirty_drop_in(self, node: str, window: tuple[Micros, Micros]) -> float:
        inside = self.dirty_series[node].window(*window)
        if inside.is_empty():
            return 0.0
        return inside.max() - float(inside.values.min())

    def to_text(self) -> str:
        lines = [
            "Figure 8: dirty-page recycling scenario",
            f"  (a) peak PIT RT {self.peak_rt_ms():.0f} ms vs average "
            f"{self.average_rt_ms():.1f} ms over the interval",
        ]
        for index, window in enumerate(self.peaks, start=1):
            lines.append(
                f"  peak {index} [{window[0] / 1e6:.2f}s, {window[1] / 1e6:.2f}s]: "
                f"apacheQ~{self.queue_mean_in('apache', window):.0f} "
                f"tomcatQ~{self.queue_mean_in('tomcat', window):.0f} "
                f"web1 CPU={self.cpu_peak_in('web1', window):.0f}% "
                f"app1 CPU={self.cpu_peak_in('app1', window):.0f}%"
            )
        return "\n".join(lines)


def figure_08(run: ScenarioRun, window_us: Micros = ms(50)) -> Fig08Result:
    """Reproduce Figure 8's four panels from a scenario-B run."""
    samples = _completions(run)
    pit = point_in_time_response_times(samples, window_us, 0, run.duration)
    queue_series = {
        tier: concurrency_series(
            spans_from_traces(run.result.traces, tier), 0, run.duration, ms(10)
        )
        for tier in ("apache", "tomcat")
    }
    cpu_series = {}
    dirty_series = {}
    for node in ("web1", "app1"):
        user = _collectl_series(run, node, "cpu_user_pct")
        system = _collectl_series(run, node, "cpu_system_pct")
        cpu_series[node] = Series(user.times, user.values + system.values)
        dirty_series[node] = _collectl_series(run, node, "mem_dirty_kb")
    peaks = [
        (w.start, w.stop)
        for w in cluster_anomaly_windows(detect_vlrt(samples))
    ]
    return Fig08Result(
        pit_windows=pit,
        queue_series=queue_series,
        cpu_series=cpu_series,
        dirty_series=dirty_series,
        peaks=peaks,
    )
