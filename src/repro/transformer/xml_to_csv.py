"""The mScope XMLtoCSV Converter.

The pipeline's third stage (Section III-B-3): turn a semi-structured
:class:`~repro.transformer.xmlmodel.XmlDocument` into a relational
table using the paper's bottom-up schema materialization —

* the column set is the **union** of all tags in the document;
* each column's type is chosen by the **best-match principle**: the
  *narrowest* type (INTEGER ⊂ REAL ⊂ TEXT) that can store every value
  observed for that tag.

The converter also writes/reads the CSV + schema artifacts the
downstream mScope Data Importer consumes.
"""

from __future__ import annotations

import csv
import dataclasses
from pathlib import Path
from typing import Any

from repro.common.errors import SchemaInferenceError
from repro.transformer.xmlmodel import XmlDocument

__all__ = ["CsvTable", "TypeLattice", "XmlToCsvConverter", "infer_sql_type"]

_TYPE_ORDER = ("INTEGER", "REAL", "TEXT")


def _is_int(value: str) -> bool:
    if not value:
        return False
    body = value[1:] if value[0] in "+-" else value
    return body.isdigit()


def _is_real(value: str) -> bool:
    try:
        float(value)
    except ValueError:
        return False
    return True


class TypeLattice:
    """Single-pass narrowing over the INTEGER ⊂ REAL ⊂ TEXT lattice.

    Feed values one at a time with :meth:`observe`; the state only
    ever widens, so the final :meth:`result` equals the narrowest type
    that stores every observed value (the best-match principle)
    without re-scanning the column.
    """

    __slots__ = ("_state", "_saw_value")

    def __init__(self) -> None:
        self._state = "INTEGER"
        self._saw_value = False

    def observe(self, value: str | None) -> None:
        """Narrow the lattice by one value (empty/None are no-ops)."""
        if value is None or value == "":
            return
        self._saw_value = True
        state = self._state
        if state == "TEXT":
            return
        if state == "INTEGER":
            if _is_int(value):
                return
            self._state = "REAL" if _is_real(value) else "TEXT"
        elif not _is_real(value):
            self._state = "TEXT"

    def result(self) -> str:
        """The inferred type (TEXT when no non-empty value was seen)."""
        return self._state if self._saw_value else "TEXT"


def infer_sql_type(values: list[str]) -> str:
    """The narrowest SQL type storing every value (best-match principle)."""
    lattice = TypeLattice()
    for value in values:
        lattice.observe(value)
    return lattice.result()


def _coerce(value: str | None, sql_type: str) -> Any:
    if value is None or value == "":
        return None
    if sql_type == "INTEGER":
        return int(value)
    if sql_type == "REAL":
        return float(value)
    return value


@dataclasses.dataclass(slots=True)
class CsvTable:
    """A converted table: inferred schema plus typed rows."""

    name: str
    columns: list[tuple[str, str]]
    rows: list[tuple]
    monitor: str
    source: str

    @property
    def column_names(self) -> list[str]:
        return [c for c, _ in self.columns]

    def __len__(self) -> int:
        return len(self.rows)


class XmlToCsvConverter:
    """Converts enriched XML documents into typed relational tables."""

    def convert(
        self,
        document: XmlDocument,
        table_name: str,
        extra_columns: dict[str, str] | None = None,
    ) -> CsvTable:
        """Infer the schema from ``document`` and materialize the rows.

        ``extra_columns`` adds constant-valued TEXT columns (e.g. the
        hostname the pipeline knows from the log's location).
        """
        # One pass over the records both collects the tag union (in
        # first-appearance order) and narrows each tag's type lattice,
        # replacing the per-tag full scans of the old inference.
        lattices: dict[str, TypeLattice] = {}
        for record in document:
            for tag, value in record.items():
                lattice = lattices.get(tag)
                if lattice is None:
                    lattice = lattices[tag] = TypeLattice()
                lattice.observe(value)
        tags = list(lattices)
        if not tags and not extra_columns:
            raise SchemaInferenceError(
                f"document {document.source!r} has no tags to infer from"
            )
        type_by_tag = {tag: lattice.result() for tag, lattice in lattices.items()}

        columns: list[tuple[str, str]] = [(t, type_by_tag[t]) for t in tags]
        constants: list[tuple[str, str]] = []
        if extra_columns:
            for column, value in extra_columns.items():
                if column in type_by_tag:
                    # The parser already extracted this field from the
                    # log itself (e.g. SAR's banner hostname); the
                    # log's own value wins.
                    continue
                columns.append((column, "TEXT"))
                constants.append((column, value))

        rows: list[tuple] = []
        for record in document:
            row = [
                _coerce(record.get(tag), type_by_tag[tag]) for tag in tags
            ]
            row.extend(value for _, value in constants)
            rows.append(tuple(row))
        return CsvTable(
            name=table_name,
            columns=columns,
            rows=rows,
            monitor=document.monitor,
            source=document.source,
        )

    # ------------------------------------------------------------------
    # artifact files

    def write_csv(self, table: CsvTable, path: Path | str) -> Path:
        """Write the CSV artifact plus its ``.schema`` sidecar."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.column_names)
            for row in table.rows:
                writer.writerow(["" if v is None else v for v in row])
        schema_path = path.with_suffix(".schema")
        schema_path.write_text(
            "".join(f"{c} {t}\n" for c, t in table.columns), encoding="utf-8"
        )
        return path

    def read_csv(
        self, path: Path | str, monitor: str = "unknown"
    ) -> CsvTable:
        """Read a CSV + schema artifact pair back into a table."""
        path = Path(path)
        schema_path = path.with_suffix(".schema")
        if not schema_path.exists():
            raise SchemaInferenceError(f"missing schema sidecar for {path}")
        columns: list[tuple[str, str]] = []
        for line in schema_path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            column, sql_type = line.rsplit(" ", 1)
            columns.append((column, sql_type))
        with path.open("r", encoding="utf-8", newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            if header != [c for c, _ in columns]:
                raise SchemaInferenceError(
                    f"CSV header does not match schema sidecar for {path}"
                )
            rows = [
                tuple(
                    _coerce(value, sql_type)
                    for value, (_, sql_type) in zip(row, columns)
                )
                for row in reader
            ]
        return CsvTable(
            name=path.stem,
            columns=columns,
            rows=rows,
            monitor=monitor,
            source=str(path),
        )
