"""Incremental (live) transformation.

The paper's mScopeDB is a *dynamic* warehouse: tables materialize and
grow as monitoring data arrives.  :class:`LiveTransformer` keeps a
warehouse in sync with still-growing log files — each refresh parses
the file and imports only the records beyond the high-water mark of
the previous refresh, so a monitoring session can be analyzed while
the system is still running.

Notes
-----
* Parsers re-read whole files (stateful formats like SAR text need
  their banner/header context); only the *import* is incremental.
* A file that is momentarily unparsable mid-write (e.g. SAR's XML
  output, which is well-formed only once closed) is retried within the
  refresh — ``max_retries`` bounded attempts with exponential backoff,
  giving a concurrent writer time to finish the record — and only then
  skipped until the next refresh.  The retry count is reported in the
  :class:`RefreshOutcome` so operators see contention instead of
  silent per-refresh skips.
* An :class:`~repro.transformer.errorpolicy.ErrorPolicy` can make the
  refresh lenient: damaged lines are recorded in ``ingest_errors``
  (idempotently — each refresh re-reads the file, so errors re-record
  onto the same keyed rows) while the undamaged records import.
* Each refresh cycle opens a telemetry span and updates the
  :class:`Heartbeat` — files/sec, rows/sec, cycle lag, last error — so
  a long-lived live session has a health signal without any polling of
  the warehouse.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Callable

from repro.common.errors import DeclarationError, ParseError
from repro.sampling.policy import SamplingPolicy, commit_flush, parse_policy
from repro.telemetry.spans import (
    NULL_TELEMETRY,
    SpanData,
    TelemetryCollector,
)
from repro.transformer.declaration import ParsingDeclaration, default_declaration
from repro.transformer.errorpolicy import FAIL_FAST_POLICY, ErrorPolicy, ErrorSink
from repro.transformer.importer import MScopeDataImporter
from repro.transformer.parsers import MScopeParser, create_parser
from repro.transformer.xml_to_csv import XmlToCsvConverter
from repro.transformer.xmlmodel import XmlDocument
from repro.warehouse.db import MScopeDB

__all__ = ["LiveTransformer", "RefreshOutcome", "Heartbeat"]


@dataclasses.dataclass(frozen=True, slots=True)
class RefreshOutcome:
    """Result of one refresh pass over a log directory."""

    new_rows: int
    refreshed_files: int
    skipped_files: int
    #: Mid-write retry attempts spent this refresh (0 when every file
    #: parsed on its first attempt).
    retries: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class Heartbeat:
    """The live transformer's health signal, one per refresh cycle.

    ``lag_s`` is how long the last cycle took — when it approaches the
    refresh interval, the transformer is falling behind the logs.
    ``last_error`` is the most recent parse/ingest failure message
    (``None`` while everything is healthy).
    """

    refreshes: int
    new_rows: int
    files_per_sec: float
    rows_per_sec: float
    lag_s: float
    last_error: str | None = None


class LiveTransformer:
    """Keeps an mScopeDB incrementally in sync with growing logs.

    Parameters
    ----------
    db, declaration:
        As for :class:`~repro.transformer.pipeline.MScopeDataTransformer`.
    policy:
        Ingestion error policy; defaults to ``fail-fast``.  Lenient
        policies record damaged lines in ``ingest_errors``; quarantine
        *artifacts* are a batch-transform feature (a live file is
        re-read every refresh, so artifact copies would churn).
    max_retries:
        Extra parse attempts per file and refresh when the file is
        momentarily unparsable mid-write.
    backoff_s:
        First retry delay in seconds; doubles per attempt.
    sleep:
        Injectable clock for tests (defaults to :func:`time.sleep`).
    telemetry:
        Optional :class:`~repro.telemetry.spans.TelemetryCollector`
        receiving one ``refresh`` span per cycle and one
        ``refresh_file`` span per refreshed file.
    clock:
        Monotonic seconds source for the heartbeat (injectable for
        tests; defaults to :func:`time.monotonic`).
    on_heartbeat:
        Callback invoked with the fresh :class:`Heartbeat` at the end
        of every :meth:`refresh_directory` cycle — the streaming
        health signal for a supervising process.
    on_ingest_error:
        Callback invoked with ``(source_path, reason)`` for every
        damaged line a lenient policy records — the serve daemon
        forwards these onto its SSE event stream as they happen,
        instead of polling the ``ingest_errors`` ledger.
    sampling:
        A log-volume-reduction policy (instance or spec string), as
        for :class:`~repro.transformer.pipeline.MScopeDataTransformer`.
        Each delta is filtered before import and the cumulative counts
        re-recorded into the ``sampling_ledger`` every refresh, so a
        caught-up sampled live warehouse converges on a sampled batch
        one.  Stateful policies (tail deferral) hold rows back until
        :meth:`flush_sampling` — the serve daemon calls it during
        drain, before the final diagnosis.
    """

    def __init__(
        self,
        db: MScopeDB,
        declaration: ParsingDeclaration | None = None,
        policy: ErrorPolicy | None = None,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
        telemetry: TelemetryCollector | None = None,
        clock: Callable[[], float] = time.monotonic,
        on_heartbeat: Callable[[Heartbeat], None] | None = None,
        on_ingest_error: Callable[[str, str], None] | None = None,
        sampling: SamplingPolicy | str | None = None,
    ) -> None:
        self.db = db
        self.declaration = declaration or default_declaration()
        self.policy = policy or FAIL_FAST_POLICY
        self.converter = XmlToCsvConverter()
        self.importer = MScopeDataImporter(db)
        if isinstance(sampling, str):
            sampling = parse_policy(sampling)
        self.sampling = sampling
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self._sleep = sleep
        self.telemetry = telemetry or NULL_TELEMETRY
        self._clock = clock
        self.on_heartbeat = on_heartbeat
        self.on_ingest_error = on_ingest_error
        self._refreshes = 0
        self._last_error: str | None = None
        self._heartbeat: Heartbeat | None = None
        self._high_water: dict[Path, int] = {}
        # Parser instances are stateless between files, so one per
        # binding serves every refresh (keyed by identity — bindings
        # live as long as the declaration that owns them).
        self._parsers: dict[int, MScopeParser] = {}

    def _parser_for(self, binding) -> MScopeParser:
        parser = self._parsers.get(id(binding))
        if parser is None:
            parser = self._parsers[id(binding)] = create_parser(binding)
        return parser

    def refresh_file(self, path: Path | str, hostname: str) -> int:
        """Import records appended to ``path`` since the last refresh.

        Returns the number of newly imported rows; raises
        :class:`DeclarationError` when no parser is declared for the
        file, and :class:`ParseError` when the file is unparsable
        (budget exhaustion included).  Under a lenient policy damaged
        lines are recorded in ``ingest_errors`` instead of raising.
        """
        path = Path(path)
        binding = self.declaration.resolve(path)
        parser = self._parser_for(binding)
        sink = ErrorSink(self.policy, str(path), binding.parser_name)
        spans: list[SpanData] = []
        try:
            with self.telemetry.probe().span(
                spans, "refresh_file", hostname, str(path), parent="refresh"
            ) as span:
                try:
                    document = parser.parse_file(path, sink=sink)
                finally:
                    # Damage seen before the parse aborted still gets
                    # recorded (idempotently — the keyed INSERT OR
                    # REPLACE makes every refresh converge on the same
                    # ledger rows).
                    self._record_errors(sink)
                    span.add(errors=len(sink.errors))
                rows = self._import_delta(document, binding, path, hostname)
                span.add(records=rows)
        finally:
            # The span closed on the ``with`` exit (success or not);
            # ship whatever was measured.
            self.telemetry.ingest(spans)
        return rows

    def _import_delta(
        self, document, binding, path: Path, hostname: str
    ) -> int:
        already = self._high_water.get(path, 0)
        fresh = document.records[already:]
        if not fresh:
            return 0
        delta = XmlDocument(monitor=document.monitor, source=document.source)
        for record in fresh:
            delta.append(record)
        table_name = f"{binding.monitor}_{hostname}"
        table = self.converter.convert(
            delta, table_name, extra_columns={"hostname": hostname}
        )
        sampled_key: tuple[str, str] | None = None
        if self.sampling is not None:
            table = self.sampling.apply(table)
            key = (table.name, table.source)
            if key in self.sampling.counts:
                sampled_key = key
                self.sampling.streams[key] = (hostname, binding.parser_name)
        rows = self.importer.import_table(table, hostname, binding.parser_name)
        self._high_water[path] = len(document.records)
        # The importer just recorded *this delta's* row/column counts in
        # load_catalog; a batch transform records the whole file's.  The
        # catalog row is keyed (table, source), so re-record the
        # cumulative state and the warehouses converge — a fully
        # caught-up live warehouse iterdumps identically to a one-shot
        # batch one.  Under sampling the cumulative state is the
        # policy's kept count (what a sampled batch transform records),
        # and the ledger row is re-recorded the same keyed way.
        if sampled_key is None:
            loaded = self._high_water[path]
        else:
            entry = self.sampling.counts[sampled_key]
            loaded = entry.rows_kept
            self.db.record_sampling(
                table.name,
                table.source,
                self.sampling.spec,
                entry.rows_seen,
                entry.rows_kept,
                entry.bytes_seen,
                entry.bytes_kept,
            )
        self.db.record_load(
            table_name,
            document.source,
            loaded,
            len(self.db.table_schema(table_name)),
        )
        return rows

    def _record_errors(self, sink: ErrorSink) -> None:
        for error in sink.errors:
            self.db.record_ingest_error(
                error.path,
                error.line_number,
                error.parser,
                error.reason,
                error.excerpt,
            )
            if self.on_ingest_error is not None:
                self.on_ingest_error(error.path, error.reason)
        if sink.errors:
            # Lenient damage feeds the heartbeat's last-error signal.
            self._last_error = sink.errors[-1].reason

    def declared_files(self, root: Path | str) -> list[tuple[str, Path]]:
        """The ``(hostname, path)`` pairs a refresh of ``root`` would
        visit, in the deterministic (host, file) scan order.

        The serve daemon's per-host ingest loop uses this to enqueue
        file-granular work items; :meth:`refresh_directory` walks the
        same list, so both paths agree on what a log tree contains.
        """
        root = Path(root)
        if not root.is_dir():
            raise DeclarationError(f"log directory {root} does not exist")
        pairs: list[tuple[str, Path]] = []
        for host_dir in sorted(p for p in root.iterdir() if p.is_dir()):
            for log_file in sorted(host_dir.glob("*.log")):
                if self.declaration.try_resolve(log_file) is None:
                    continue
                pairs.append((host_dir.name, log_file))
        return pairs

    def refresh_directory(self, root: Path | str) -> RefreshOutcome:
        """Refresh every declared log under ``root``.

        A file that fails to parse is retried up to ``max_retries``
        times with exponential backoff (a mid-write record is usually
        completed within milliseconds); a file still unparsable after
        the retries is skipped this round and picked up again on the
        next refresh.
        """
        pairs = self.declared_files(root)
        started = self._clock()
        new_rows = 0
        refreshed = 0
        skipped = 0
        retries = 0
        spans: list[SpanData] = []
        with self.telemetry.probe().span(spans, "refresh") as span:
            for hostname, log_file in pairs:
                imported = None
                for attempt in range(self.max_retries + 1):
                    try:
                        imported = self.refresh_file(log_file, hostname)
                        break
                    except ParseError as exc:
                        self._last_error = str(exc)
                        if attempt == self.max_retries:
                            break
                        self._sleep(self.backoff_s * (2**attempt))
                        retries += 1
                if imported is None:
                    skipped += 1
                    continue
                if imported:
                    refreshed += 1
                    new_rows += imported
            span.add(records=new_rows, errors=skipped)
        self.telemetry.ingest(spans)
        self._beat(started, refreshed, new_rows)
        return RefreshOutcome(
            new_rows=new_rows,
            refreshed_files=refreshed,
            skipped_files=skipped,
            retries=retries,
        )

    def _beat(self, started: float, refreshed: int, new_rows: int) -> None:
        """Update (and stream) the heartbeat after one refresh cycle."""
        lag_s = max(0.0, self._clock() - started)
        self._refreshes += 1
        self._heartbeat = Heartbeat(
            refreshes=self._refreshes,
            new_rows=new_rows,
            files_per_sec=refreshed / lag_s if lag_s > 0 else 0.0,
            rows_per_sec=new_rows / lag_s if lag_s > 0 else 0.0,
            lag_s=lag_s,
            last_error=self._last_error,
        )
        if self.on_heartbeat is not None:
            self.on_heartbeat(self._heartbeat)

    def heartbeat(self) -> Heartbeat | None:
        """The latest :class:`Heartbeat` (``None`` before any cycle)."""
        return self._heartbeat

    def high_water(self, path: Path | str) -> int:
        """Records already imported from ``path``."""
        return self._high_water.get(Path(path), 0)

    def flush_sampling(self) -> int:
        """Commit rows a stateful sampling policy still withholds.

        The serve daemon calls this during SIGTERM drain — deferred
        VLRT records must land before the final diagnosis.  Idempotent;
        returns the retroactively committed row count.
        """
        if self.sampling is None:
            return 0
        return commit_flush(self.sampling, self.importer, self.db)

    def sampling_totals(self) -> tuple[int, int]:
        """``(rows_seen, rows_kept)`` across every sampled stream.

        The serve daemon surfaces these as the
        ``mscope_serve_sampled_total`` / ``kept_total`` gauges.
        """
        if self.sampling is None:
            return (0, 0)
        seen = sum(c.rows_seen for c in self.sampling.counts.values())
        kept = sum(c.rows_kept for c in self.sampling.counts.values())
        return (seen, kept)
