"""Incremental (live) transformation.

The paper's mScopeDB is a *dynamic* warehouse: tables materialize and
grow as monitoring data arrives.  :class:`LiveTransformer` keeps a
warehouse in sync with still-growing log files — each refresh parses
the file and imports only the records beyond the high-water mark of
the previous refresh, so a monitoring session can be analyzed while
the system is still running.

Notes
-----
* Parsers re-read whole files (stateful formats like SAR text need
  their banner/header context); only the *import* is incremental.
* A file that is momentarily unparsable mid-write (e.g. SAR's XML
  output, which is well-formed only once closed) is skipped for that
  refresh and retried on the next.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.common.errors import DeclarationError, ParseError
from repro.transformer.declaration import ParsingDeclaration, default_declaration
from repro.transformer.importer import MScopeDataImporter
from repro.transformer.parsers import MScopeParser, create_parser
from repro.transformer.xml_to_csv import XmlToCsvConverter
from repro.transformer.xmlmodel import XmlDocument
from repro.warehouse.db import MScopeDB

__all__ = ["LiveTransformer", "RefreshOutcome"]


@dataclasses.dataclass(frozen=True, slots=True)
class RefreshOutcome:
    """Result of one refresh pass over a log directory."""

    new_rows: int
    refreshed_files: int
    skipped_files: int


class LiveTransformer:
    """Keeps an mScopeDB incrementally in sync with growing logs."""

    def __init__(
        self,
        db: MScopeDB,
        declaration: ParsingDeclaration | None = None,
    ) -> None:
        self.db = db
        self.declaration = declaration or default_declaration()
        self.converter = XmlToCsvConverter()
        self.importer = MScopeDataImporter(db)
        self._high_water: dict[Path, int] = {}
        # Parser instances are stateless between files, so one per
        # binding serves every refresh (keyed by identity — bindings
        # live as long as the declaration that owns them).
        self._parsers: dict[int, MScopeParser] = {}

    def _parser_for(self, binding) -> MScopeParser:
        parser = self._parsers.get(id(binding))
        if parser is None:
            parser = self._parsers[id(binding)] = create_parser(binding)
        return parser

    def refresh_file(self, path: Path | str, hostname: str) -> int:
        """Import records appended to ``path`` since the last refresh.

        Returns the number of newly imported rows; raises
        :class:`DeclarationError` when no parser is declared for the
        file.
        """
        path = Path(path)
        binding = self.declaration.resolve(path)
        parser = self._parser_for(binding)
        document = parser.parse_file(path)
        already = self._high_water.get(path, 0)
        fresh = document.records[already:]
        if not fresh:
            return 0
        delta = XmlDocument(monitor=document.monitor, source=document.source)
        for record in fresh:
            delta.append(record)
        table_name = f"{binding.monitor}_{hostname}"
        table = self.converter.convert(
            delta, table_name, extra_columns={"hostname": hostname}
        )
        rows = self.importer.import_table(table, hostname, binding.parser_name)
        self._high_water[path] = len(document.records)
        return rows

    def refresh_directory(self, root: Path | str) -> RefreshOutcome:
        """Refresh every declared log under ``root``.

        Files that fail to parse mid-write are skipped this round.
        """
        root = Path(root)
        if not root.is_dir():
            raise DeclarationError(f"log directory {root} does not exist")
        new_rows = 0
        refreshed = 0
        skipped = 0
        for host_dir in sorted(p for p in root.iterdir() if p.is_dir()):
            for log_file in sorted(host_dir.glob("*.log")):
                if self.declaration.try_resolve(log_file) is None:
                    continue
                try:
                    imported = self.refresh_file(log_file, host_dir.name)
                except ParseError:
                    skipped += 1
                    continue
                if imported:
                    refreshed += 1
                    new_rows += imported
        return RefreshOutcome(
            new_rows=new_rows, refreshed_files=refreshed, skipped_files=skipped
        )

    def high_water(self, path: Path | str) -> int:
        """Records already imported from ``path``."""
        return self._high_water.get(Path(path), 0)
