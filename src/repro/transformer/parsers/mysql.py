"""The MySQL mScopeParser.

Parses the tab-separated query-log lines of the MySQL mScopeMonitor and
recovers the propagated request ID from the ``/*ID=...*/`` SQL comment
via the declaration's regex-token rule (the paper's Appendix A flow in
reverse).
"""

from __future__ import annotations

from repro.transformer.parsers.base import MScopeParser, register_parser
from repro.transformer.xmlmodel import LogRecord

__all__ = ["MySqlMScopeParser"]


@register_parser
class MySqlMScopeParser(MScopeParser):
    """Parses instrumented MySQL query-log lines; skips binlog notes."""

    name = "mysql"

    def parse_lines(self, lines, source):
        document = self.new_document(source)
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            parts = line.split("\t")
            if len(parts) < 2 or parts[1] != "Query":
                # Stock binlog "Xid = N" notes and other chatter.
                continue
            if len(parts) != 5:
                self.bad_line(
                    f"malformed query-log line: {line!r}",
                    source=source,
                    line_number=number,
                    raw=line,
                )
                continue
            _stamp, _kind, arrival, departure, statement = parts
            if not arrival.isdigit() or not departure.isdigit():
                self.bad_line(
                    f"non-numeric boundary timestamps: {line!r}",
                    source=source,
                    line_number=number,
                    raw=line,
                )
                continue
            record = LogRecord()
            record.set("tier", "mysql")
            record.set("upstream_arrival_us", arrival)
            record.set("upstream_departure_us", departure)
            record.set("timestamp_us", arrival)
            record.set("statement", statement.split(" /*")[0])
            self.apply_token_rules(line, record)
            document.append(record)
        return document
