"""The customized SAR mScopeParser (text reports).

The paper built this parser because neither of the generic instruction
mechanisms could untangle classic SAR output: a banner carrying the
report *date* (the rows only have times), headers that repeat
mid-file, blank separator lines, and a trailing ``Average:`` row that
is a summary, not a sample.  The parser is stateful over the line
sequence — exactly the ``line_sequence`` enrichment style.
"""

from __future__ import annotations

import re

from repro.common.errors import ParseError
from repro.transformer.parsers.base import MScopeParser, register_parser
from repro.transformer.timestamps import compact_date_to_iso, wall_to_epoch_us
from repro.transformer.xmlmodel import LogRecord, sanitize_tag

__all__ = ["SarTextParser"]

_BANNER_RE = re.compile(
    r"^Linux \S+ \((?P<host>[^)]+)\)\s+(?P<date>\d{2}/\d{2}/\d{4})"
)
_TIME_RE = re.compile(r"^\d{2}:\d{2}:\d{2}(?:\.\d{1,3})?$")


def _column_tag(token: str) -> str:
    """SAR header token → tag (``%user`` → ``user_pct``)."""
    if token.startswith("%"):
        return sanitize_tag(token[1:] + "_pct")
    return sanitize_tag(token)


@register_parser
class SarTextParser(MScopeParser):
    """Stateful parser for classic ``sar -u`` text reports."""

    name = "sar_text"

    def parse_lines(self, lines, source):
        document = self.new_document(source)
        report_date: str | None = None
        hostname: str | None = None
        columns: list[str] | None = None
        for number, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            banner = _BANNER_RE.match(line)
            if banner:
                report_date = compact_date_to_iso(banner.group("date"))
                hostname = banner.group("host")
                continue
            if stripped.startswith("Average:"):
                # Trailing summary row — not a sample.
                continue
            tokens = stripped.split()
            if not _TIME_RE.match(tokens[0]):
                self.bad_line(
                    f"unexpected SAR line: {line!r}",
                    source=source,
                    line_number=number,
                    raw=line,
                )
                continue
            if len(tokens) < 2:
                self.bad_line(
                    f"truncated SAR line: {line!r}",
                    source=source,
                    line_number=number,
                    raw=line,
                )
                continue
            if tokens[1] == "CPU":
                # (Possibly repeated) header row defines the columns.
                try:
                    columns = [_column_tag(t) for t in tokens[2:]]
                except ParseError as exc:
                    # Strict parses keep the original exception; under
                    # a lenient policy a damaged header is one error
                    # and the next repeated header can recover.
                    if not self.lenient:
                        raise
                    self.bad_line(
                        str(exc), source=source, line_number=number, raw=line
                    )
                continue
            if columns is None:
                self.bad_line(
                    "SAR data row before any header",
                    source=source,
                    line_number=number,
                    raw=line,
                )
                continue
            if report_date is None:
                self.bad_line(
                    "SAR data row before the banner (no report date)",
                    source=source,
                    line_number=number,
                    raw=line,
                )
                continue
            values = tokens[2:]
            if len(values) != len(columns):
                self.bad_line(
                    f"SAR row has {len(values)} values for "
                    f"{len(columns)} columns",
                    source=source,
                    line_number=number,
                    raw=line,
                )
                continue
            try:
                timestamp_us = wall_to_epoch_us(report_date, tokens[0])
            except ParseError as exc:
                if not self.lenient:
                    raise
                self.bad_line(
                    str(exc), source=source, line_number=number, raw=line
                )
                continue
            record = LogRecord()
            record.set("timestamp_us", str(timestamp_us))
            record.set("cpu", tokens[1])
            if hostname:
                record.set("hostname", hostname)
            for column, value in zip(columns, values):
                record.set(column, value)
            self.apply_token_rules(line, record)
            document.append(record)
        return document
