"""mScopeParsers: per-monitor log enrichment into tagged XML."""

from repro.transformer.parsers.apache import ApacheMScopeParser
from repro.transformer.parsers.base import (
    MScopeParser,
    create_parser,
    register_parser,
    registered_parsers,
)
from repro.transformer.parsers.cjdbc import CjdbcMScopeParser
from repro.transformer.parsers.collectl import CollectlCsvParser, CollectlTextParser
from repro.transformer.parsers.iostat import IostatParser
from repro.transformer.parsers.mysql import MySqlMScopeParser
from repro.transformer.parsers.sar_text import SarTextParser
from repro.transformer.parsers.sar_xml import SarXmlAdapter
from repro.transformer.parsers.tomcat import TomcatMScopeParser

__all__ = [
    "ApacheMScopeParser",
    "CjdbcMScopeParser",
    "CollectlCsvParser",
    "CollectlTextParser",
    "IostatParser",
    "MScopeParser",
    "MySqlMScopeParser",
    "SarTextParser",
    "SarXmlAdapter",
    "TomcatMScopeParser",
    "create_parser",
    "register_parser",
    "registered_parsers",
]
