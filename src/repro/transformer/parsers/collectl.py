"""The Collectl mScopeParsers (CSV and plain text).

The CSV variant is the paper's "one-pass customized parser" example:
the ``#``-prefixed header row fully determines the schema, so a single
pass suffices — no multi-stage enrichment needed.
"""

from __future__ import annotations

from repro.common.errors import ParseError
from repro.transformer.parsers.base import MScopeParser, register_parser
from repro.transformer.timestamps import wall_to_epoch_us
from repro.transformer.xmlmodel import LogRecord, sanitize_tag

__all__ = ["CollectlCsvParser", "CollectlTextParser"]


@register_parser
class CollectlCsvParser(MScopeParser):
    """One-pass parser for ``collectl -P`` CSV output."""

    name = "collectl_csv"

    def parse_lines(self, lines, source):
        document = self.new_document(source)
        columns: list[str] | None = None
        for number, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith("#"):
                header = stripped.lstrip("#").split(",")
                if len(header) < 3 or header[0] != "Date" or header[1] != "Time":
                    self.bad_line(
                        f"unexpected collectl header: {line!r}",
                        source=source,
                        line_number=number,
                        raw=line,
                    )
                    continue
                try:
                    columns = [sanitize_tag(h) for h in header[2:]]
                except ParseError as exc:
                    # Strict parses keep the original exception; a
                    # lenient parse records the damaged header and
                    # waits for the next (possibly repeated) one.
                    if not self.lenient:
                        raise
                    self.bad_line(
                        str(exc), source=source, line_number=number, raw=line
                    )
                continue
            if columns is None:
                self.bad_line(
                    "collectl data before header",
                    source=source,
                    line_number=number,
                    raw=line,
                )
                continue
            values = stripped.split(",")
            if len(values) != len(columns) + 2:
                self.bad_line(
                    f"collectl row has {len(values) - 2} values for "
                    f"{len(columns)} columns",
                    source=source,
                    line_number=number,
                    raw=line,
                )
                continue
            try:
                timestamp_us = wall_to_epoch_us(values[0], values[1])
            except ParseError as exc:
                if not self.lenient:
                    raise
                self.bad_line(
                    str(exc), source=source, line_number=number, raw=line
                )
                continue
            record = LogRecord()
            record.set("timestamp_us", str(timestamp_us))
            for column, value in zip(columns, values[2:]):
                record.set(column, value)
            self.apply_token_rules(line, record)
            document.append(record)
        return document


@register_parser
class CollectlTextParser(MScopeParser):
    """Parser for the interactive text display (``collectl -scdm``).

    The text format omits the date, so the declaration must supply it
    through a regex-token rule... it does not: instead the paper's
    convention applies — text-mode Collectl is only used for live
    inspection.  This parser accepts a ``base_date`` in the binding's
    first line-sequence rule, defaulting to the epoch date used by the
    standard experiments.
    """

    name = "collectl_text"

    _DEFAULT_DATE = "2017-03-01"

    def parse_lines(self, lines, source):
        base_date = self._DEFAULT_DATE
        for rule in self.binding.rules:
            candidate = rule.params.get("base_date")
            if candidate:
                base_date = candidate
        document = self.new_document(source)
        columns: list[str] | None = None
        for number, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith("#"):
                header = stripped.lstrip("#").split()
                if not header or header[0] != "Time":
                    self.bad_line(
                        f"unexpected collectl text header: {line!r}",
                        source=source,
                        line_number=number,
                        raw=line,
                    )
                    continue
                try:
                    columns = [sanitize_tag(h) for h in header[1:]]
                except ParseError as exc:
                    if not self.lenient:
                        raise
                    self.bad_line(
                        str(exc), source=source, line_number=number, raw=line
                    )
                continue
            if columns is None:
                self.bad_line(
                    "collectl text data before header",
                    source=source,
                    line_number=number,
                    raw=line,
                )
                continue
            tokens = stripped.split()
            if len(tokens) != len(columns) + 1:
                self.bad_line(
                    f"collectl text row has {len(tokens) - 1} values for "
                    f"{len(columns)} columns",
                    source=source,
                    line_number=number,
                    raw=line,
                )
                continue
            try:
                timestamp_us = wall_to_epoch_us(base_date, tokens[0])
            except ParseError as exc:
                if not self.lenient:
                    raise
                self.bad_line(
                    str(exc), source=source, line_number=number, raw=line
                )
                continue
            record = LogRecord()
            record.set("timestamp_us", str(timestamp_us))
            for column, value in zip(columns, tokens[1:]):
                record.set(column, value)
            document.append(record)
        return document
