"""The C-JDBC mScopeParser (log4j-style middleware lines)."""

from __future__ import annotations

import re

from repro.transformer.parsers.base import MScopeParser, register_parser
from repro.transformer.xmlmodel import LogRecord

__all__ = ["CjdbcMScopeParser"]

_LINE_RE = re.compile(
    r"^(?P<date>\d{4}-\d{2}-\d{2}) (?P<time>[\d:,]+) \w+ \S+ "
    r"req=(?P<req>\S+) ua=(?P<ua>\d+) ds=(?P<ds>\S+) dr=(?P<dr>\S+) ud=(?P<ud>\d+)$"
)


@register_parser
class CjdbcMScopeParser(MScopeParser):
    """Parses instrumented C-JDBC controller lines; skips stock lines."""

    name = "cjdbc"

    def parse_lines(self, lines, source):
        document = self.new_document(source)
        for number, line in enumerate(lines, start=1):
            match = _LINE_RE.match(line)
            if match is None:
                if " req=" in line:
                    # The mScope marker is present but the boundary
                    # fields do not parse: a torn instrumented line,
                    # not stock C-JDBC chatter.
                    self.bad_line(
                        f"damaged instrumented line: {line!r}",
                        source=source,
                        line_number=number,
                        raw=line,
                    )
                continue
            record = LogRecord()
            record.set("tier", "cjdbc")
            record.set("request_id", match.group("req"))
            record.set("upstream_arrival_us", match.group("ua"))
            record.set("upstream_departure_us", match.group("ud"))
            if match.group("ds") != "-":
                record.set("downstream_sending_us", match.group("ds"))
            if match.group("dr") != "-":
                record.set("downstream_receiving_us", match.group("dr"))
            record.set("timestamp_us", match.group("ua"))
            self.apply_token_rules(line, record)
            document.append(record)
        return document
