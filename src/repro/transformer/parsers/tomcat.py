"""The Tomcat mScopeParser (self-describing key=value lines)."""

from __future__ import annotations

import re

from repro.transformer.parsers.base import MScopeParser, register_parser
from repro.transformer.xmlmodel import LogRecord

__all__ = ["TomcatMScopeParser"]

_KV_RE = re.compile(r"(\w+)=(\S+)")

#: key → normalized tag for the instrumented fields.
_FIELD_TAGS = {
    "servlet": "interaction",
    "ID": "request_id",
    "UA": "upstream_arrival_us",
    "DS": "downstream_sending_us",
    "DR": "downstream_receiving_us",
    "UD": "upstream_departure_us",
    "queries": "query_count",
}


@register_parser
class TomcatMScopeParser(MScopeParser):
    """Parses the bracketed key=value lines of the Tomcat mScopeMonitor.

    Lines that carry no instrumented fields (stock Tomcat INFO lines)
    are skipped — the unmodified server's chatter is not measurement
    data.
    """

    name = "tomcat"

    def parse_lines(self, lines, source):
        document = self.new_document(source)
        for line in lines:
            if not line.strip():
                continue
            fields = dict(_KV_RE.findall(line))
            if "ID" not in fields or "UA" not in fields:
                continue
            record = LogRecord()
            record.set("tier", "tomcat")
            for key, tag in _FIELD_TAGS.items():
                value = fields.get(key)
                if value is not None and value != "-":
                    record.set(tag, value)
            record.set("timestamp_us", fields["UA"])
            self.apply_token_rules(line, record)
            document.append(record)
        return document
