"""The Tomcat mScopeParser (self-describing key=value lines)."""

from __future__ import annotations

import re

from repro.transformer.parsers.base import MScopeParser, register_parser
from repro.transformer.xmlmodel import LogRecord

__all__ = ["TomcatMScopeParser"]

_KV_RE = re.compile(r"(\w+)=(\S+)")

#: key → normalized tag for the instrumented fields.
_FIELD_TAGS = {
    "servlet": "interaction",
    "ID": "request_id",
    "UA": "upstream_arrival_us",
    "DS": "downstream_sending_us",
    "DR": "downstream_receiving_us",
    "UD": "upstream_departure_us",
    "queries": "query_count",
}


@register_parser
class TomcatMScopeParser(MScopeParser):
    """Parses the bracketed key=value lines of the Tomcat mScopeMonitor.

    Lines that carry no instrumented fields (stock Tomcat INFO lines)
    are skipped — the unmodified server's chatter is not measurement
    data.
    """

    name = "tomcat"

    #: Instrumented fields that must be epoch microseconds (or ``-``
    #: for the optional downstream pair) on an undamaged line.
    _NUMERIC = ("UA", "DS", "DR", "UD", "queries")

    def _damage(self, fields: dict[str, str]) -> str | None:
        """Why an instrumented line is damaged, or ``None`` if intact.

        A line carrying the mScope ``ID=`` marker must also carry the
        upstream boundary pair; a torn concurrent write loses fields
        or garbles the numeric timestamps, and silently dropping such
        a record would be undetected data loss.
        """
        for key in ("UA", "UD"):
            if key not in fields:
                return f"instrumented line missing {key}="
        for key in self._NUMERIC:
            value = fields.get(key)
            if value is not None and value != "-" and not value.isdigit():
                return f"non-numeric {key}={value!r}"
        return None

    def parse_lines(self, lines, source):
        document = self.new_document(source)
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            fields = dict(_KV_RE.findall(line))
            if "ID" not in fields:
                # Stock Tomcat chatter — not measurement data.
                continue
            damage = self._damage(fields)
            if damage is not None:
                self.bad_line(
                    f"{damage}: {line!r}",
                    source=source,
                    line_number=number,
                    raw=line,
                )
                continue
            record = LogRecord()
            record.set("tier", "tomcat")
            for key, tag in _FIELD_TAGS.items():
                value = fields.get(key)
                if value is not None and value != "-":
                    record.set(tag, value)
            record.set("timestamp_us", fields["UA"])
            self.apply_token_rules(line, record)
            document.append(record)
        return document
