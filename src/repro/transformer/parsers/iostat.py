"""The IOstat mScopeParser (blank-line-separated device blocks)."""

from __future__ import annotations

import re

from repro.common.errors import ParseError
from repro.transformer.parsers.base import MScopeParser, register_parser
from repro.transformer.timestamps import wall_to_epoch_us
from repro.transformer.xmlmodel import LogRecord, sanitize_tag

__all__ = ["IostatParser"]

_TIMESTAMP_RE = re.compile(
    r"^(?P<date>\d{2}/\d{2}/\d{4}) (?P<time>\d{2}:\d{2}:\d{2}(?:\.\d{1,3})?)$"
)


def _column_tag(token: str) -> str:
    if token.startswith("%"):
        return sanitize_tag(token[1:] + "_pct")
    return sanitize_tag(token)


@register_parser
class IostatParser(MScopeParser):
    """Block-structured parser for ``iostat -dxt`` reports."""

    name = "iostat"

    def parse_lines(self, lines, source):
        document = self.new_document(source)
        timestamp_us: int | None = None
        columns: list[str] | None = None
        for number, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                # Blank line: block separator.
                timestamp_us = None
                continue
            match = _TIMESTAMP_RE.match(stripped)
            if match:
                try:
                    timestamp_us = wall_to_epoch_us(
                        match.group("date"), match.group("time")
                    )
                except ParseError as exc:
                    # Strict parses keep the original exception; under
                    # a lenient policy the damaged block header costs
                    # its block, not the file.
                    if not self.lenient:
                        raise
                    self.bad_line(
                        str(exc), source=source, line_number=number, raw=line
                    )
                continue
            if stripped.startswith("Device:"):
                try:
                    columns = [_column_tag(t) for t in stripped.split()[1:]]
                except ParseError as exc:
                    if not self.lenient:
                        raise
                    self.bad_line(
                        str(exc), source=source, line_number=number, raw=line
                    )
                continue
            if timestamp_us is None or columns is None:
                self.bad_line(
                    f"device row outside a block: {line!r}",
                    source=source,
                    line_number=number,
                    raw=line,
                )
                continue
            tokens = stripped.split()
            if len(tokens) != len(columns) + 1:
                self.bad_line(
                    f"device row has {len(tokens) - 1} values for "
                    f"{len(columns)} columns",
                    source=source,
                    line_number=number,
                    raw=line,
                )
                continue
            record = LogRecord()
            record.set("timestamp_us", str(timestamp_us))
            record.set("device", tokens[0])
            for column, value in zip(columns, tokens[1:]):
                record.set(column, value)
            self.apply_token_rules(line, record)
            document.append(record)
        return document
