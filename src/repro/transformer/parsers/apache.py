"""The Apache mScopeParser.

Handles both the instrumented (mScope) access-log format — with four
trailing epoch-microsecond boundary timestamps — and the stock format
without them, so logs from uninstrumented runs still load (with fewer
columns; the dynamic warehouse schema adapts).
"""

from __future__ import annotations

import re

from repro.transformer.parsers.base import MScopeParser, register_parser
from repro.transformer.timestamps import clf_to_epoch_us
from repro.transformer.xmlmodel import LogRecord

__all__ = ["ApacheMScopeParser"]

_LINE_RE = re.compile(
    r'^(?P<client>\S+) \S+ \S+ \[(?P<clf>[^\]]+)\] '
    r'"(?P<method>[A-Z]+) (?P<url>\S+) HTTP/[\d.]+" '
    r"(?P<status>\d{3}) (?P<bytes>\d+|-)"
    r"(?: (?P<ua>\d+) (?P<ds>\d+|-) (?P<dr>\d+|-) (?P<ud>\d+))?$"
)

_INTERACTION_RE = re.compile(r"/([A-Za-z]+)(?:\?|$)")


@register_parser
class ApacheMScopeParser(MScopeParser):
    """Regex-token parser for Apache access logs."""

    name = "apache"

    def parse_lines(self, lines, source):
        document = self.new_document(source)
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            match = _LINE_RE.match(line)
            if match is None:
                self.bad_line(
                    f"unrecognized access-log line: {line!r}",
                    source=source,
                    line_number=number,
                    raw=line,
                )
                continue
            record = LogRecord()
            record.set("tier", "apache")
            url = match.group("url")
            interaction = _INTERACTION_RE.search(url)
            if interaction:
                record.set("interaction", interaction.group(1))
            record.set("status", match.group("status"))
            if match.group("bytes") != "-":
                record.set("response_bytes", match.group("bytes"))
            if match.group("ua") is not None:
                record.set("upstream_arrival_us", match.group("ua"))
                record.set("upstream_departure_us", match.group("ud"))
                if match.group("ds") != "-":
                    record.set("downstream_sending_us", match.group("ds"))
                if match.group("dr") != "-":
                    record.set("downstream_receiving_us", match.group("dr"))
                record.set("timestamp_us", match.group("ua"))
            else:
                record.set("timestamp_us", str(clf_to_epoch_us(match.group("clf"))))
            self.apply_token_rules(line, record)
            document.append(record)
        return document
