"""mScopeParser base class and registry.

A parser turns one raw monitor log into an
:class:`~repro.transformer.xmlmodel.XmlDocument`.  Its behaviour is
governed by the :class:`~repro.transformer.declaration.ParserBinding`
it was constructed with — in particular the regex-token rules, which
let the declaration stage inject extra semantics (e.g. where the
request ID hides) without touching parser code.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Type

from repro.common.errors import DeclarationError, ParseError
from repro.transformer.declaration import (
    RULE_REGEX_TOKEN,
    ParserBinding,
    compile_pattern,
)
from repro.transformer.errorpolicy import ErrorSink
from repro.transformer.xmlmodel import XmlDocument

__all__ = ["MScopeParser", "register_parser", "create_parser", "registered_parsers"]

_PARSER_REGISTRY: dict[str, Type["MScopeParser"]] = {}


def register_parser(cls: Type["MScopeParser"]) -> Type["MScopeParser"]:
    """Class decorator adding a parser to the registry by its ``name``."""
    if not cls.name:
        raise DeclarationError(f"{cls.__name__} has no parser name")
    if cls.name in _PARSER_REGISTRY:
        raise DeclarationError(f"duplicate parser name {cls.name!r}")
    _PARSER_REGISTRY[cls.name] = cls
    return cls


def registered_parsers() -> list[str]:
    """Names of all registered parsers."""
    return sorted(_PARSER_REGISTRY)


def create_parser(binding: ParserBinding) -> "MScopeParser":
    """Instantiate the parser a binding names."""
    try:
        cls = _PARSER_REGISTRY[binding.parser_name]
    except KeyError:
        raise DeclarationError(
            f"no parser registered under {binding.parser_name!r}"
        ) from None
    return cls(binding)


class MScopeParser:
    """Base class: common file handling plus regex-token rule support."""

    #: Registry name; subclasses must set it.
    name = ""

    def __init__(self, binding: ParserBinding) -> None:
        self.binding = binding
        self._sink: ErrorSink | None = None
        self._token_rules: list[tuple[str, re.Pattern[str]]] = []
        for rule in binding.rules:
            if rule.kind == RULE_REGEX_TOKEN:
                tag = rule.params.get("tag")
                pattern = rule.params.get("pattern")
                if not tag or not pattern:
                    raise DeclarationError(
                        "regex_token rule needs 'tag' and 'pattern'"
                    )
                self._token_rules.append((tag, compile_pattern(pattern)))

    # ------------------------------------------------------------------

    def parse_file(
        self,
        path: Path | str,
        sink: ErrorSink | None = None,
        span=None,
    ) -> XmlDocument:
        """Parse a log file from disk, streaming it line by line.

        The file is never materialized whole: the parser consumes a
        lazy line iterator, so memory stays bounded by the output
        records rather than the input file size.

        ``sink`` threads an ingestion error policy through the parse:
        damaged lines reported via :meth:`bad_line` are recorded there
        instead of raising when the policy is lenient.  Without a sink
        the parser behaves fail-fast, exactly as before.  Lenient
        parses also decode with ``errors="replace"`` so encoding
        garbage surfaces as unparsable text (one recorded error per
        damaged line) rather than a ``UnicodeDecodeError``.

        ``span`` is an optional telemetry stage span; the parser — the
        authority on what it actually consumed and produced — credits
        it with the bytes read and the records parsed.
        """
        path = Path(path)
        self._sink = sink
        lenient = sink is not None and sink.policy.lenient
        try:
            size = path.stat().st_size
            with path.open(
                "r",
                encoding="utf-8",
                errors="replace" if lenient else "strict",
            ) as handle:
                document = self.parse_lines(
                    (line.rstrip("\r\n") for line in handle),
                    source=str(path),
                )
        except OSError as exc:
            raise ParseError(f"cannot read log: {exc}", path=str(path)) from exc
        finally:
            self._sink = None
        if span is not None:
            span.add(records=len(document.records), bytes=size)
        return document

    def parse_lines(self, lines: Iterable[str], source: str) -> XmlDocument:
        """Parse already-split log lines."""
        raise NotImplementedError

    # ------------------------------------------------------------------

    def bad_line(
        self,
        message: str,
        *,
        source: str,
        line_number: int | None = None,
        raw: str = "",
    ) -> None:
        """Report one damaged line and return so the caller can skip it.

        Under a fail-fast policy (or when parsing outside the pipeline,
        with no sink attached) this raises :class:`ParseError` exactly
        as the parsers historically did; under a lenient policy the
        damage is recorded in the active :class:`ErrorSink` (which
        raises :class:`~repro.transformer.errorpolicy.ErrorBudgetExceeded`
        once the file's budget runs out).
        """
        if self._sink is None:
            raise ParseError(message, path=source, line_number=line_number)
        self._sink.line_error(message, line_number, raw)

    @property
    def lenient(self) -> bool:
        """Whether the active parse records damage instead of raising."""
        return self._sink is not None and self._sink.policy.lenient

    def new_document(self, source: str) -> XmlDocument:
        """An empty document labeled with this binding's monitor."""
        return XmlDocument(monitor=self.binding.monitor, source=source)

    def apply_token_rules(self, line: str, record) -> None:
        """Extract every declared regex token from ``line`` into ``record``."""
        for tag, pattern in self._token_rules:
            match = pattern.search(line)
            if match:
                record.set(tag, match.group(1) if match.groups() else match.group(0))
