"""The SAR XML adapter.

After the authors upgraded SAR, it emitted XML directly and the custom
text parser became unnecessary (Section III-B-2).  This adapter
normalizes the ``sadf -x`` document into the pipeline's record model —
structurally it is the identity step the paper describes, feeding the
XML-to-CSV converter without bespoke parsing logic.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.common.errors import ParseError
from repro.transformer.parsers.base import MScopeParser, register_parser
from repro.transformer.timestamps import wall_to_epoch_us
from repro.transformer.xmlmodel import LogRecord, sanitize_tag

__all__ = ["SarXmlAdapter"]


@register_parser
class SarXmlAdapter(MScopeParser):
    """Ingests ``sadf -x`` style XML output."""

    name = "sar_xml"

    def parse_lines(self, lines, source):
        text = "\n".join(lines)
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ParseError(f"malformed SAR XML: {exc}", path=source) from exc
        if root.tag != "sysstat":
            raise ParseError(
                f"expected <sysstat> root, got <{root.tag}>", path=source
            )
        document = self.new_document(source)
        for host in root.iter("host"):
            hostname = host.attrib.get("nodename", "")
            for stamp in host.iter("timestamp"):
                date = stamp.attrib.get("date")
                time = stamp.attrib.get("time")
                if not date or not time:
                    raise ParseError(
                        "timestamp element missing date/time", path=source
                    )
                for cpu in stamp.iter("cpu"):
                    record = LogRecord()
                    record.set("timestamp_us", str(wall_to_epoch_us(date, time)))
                    if hostname:
                        record.set("hostname", hostname)
                    for attr, value in cpu.attrib.items():
                        if attr == "number":
                            record.set("cpu", value)
                        else:
                            record.set(sanitize_tag(attr + "_pct"), value)
                    document.append(record)
        return document
