"""The SAR XML adapter.

After the authors upgraded SAR, it emitted XML directly and the custom
text parser became unnecessary (Section III-B-2).  This adapter
normalizes the ``sadf -x`` document into the pipeline's record model —
structurally it is the identity step the paper describes, feeding the
XML-to-CSV converter without bespoke parsing logic.

The document is consumed through an incremental pull parser, which
buys the error policies record granularity on a format that is only
well-formed once the writer closes it: under a lenient policy a
mid-write truncation salvages every complete record before the damage
(one file-level ingest error records the lost tail), and a
``<timestamp>`` element missing its date/time attributes costs that
record group alone, not the file.  Fail-fast behaviour is unchanged —
any damage raises :class:`~repro.common.errors.ParseError`.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.common.errors import ParseError
from repro.transformer.parsers.base import MScopeParser, register_parser
from repro.transformer.timestamps import wall_to_epoch_us
from repro.transformer.xmlmodel import LogRecord, sanitize_tag

__all__ = ["SarXmlAdapter"]


class _BadRoot(Exception):
    """Internal: the document's root element is not ``<sysstat>``."""


@register_parser
class SarXmlAdapter(MScopeParser):
    """Ingests ``sadf -x`` style XML output."""

    name = "sar_xml"

    def parse_lines(self, lines, source):
        document = self.new_document(source)
        parser = ET.XMLPullParser(events=("start", "end"))
        state = _SalvageState()
        try:
            for line in lines:
                parser.feed(line)
                parser.feed("\n")
                self._drain(parser, document, state, source)
            parser.close()
            self._drain(parser, document, state, source)
        except _BadRoot as exc:
            message = str(exc)
            if not self.lenient:
                raise ParseError(message, path=source) from None
            self._sink.file_error(message)
            return document
        except ET.ParseError as exc:
            if not self.lenient:
                raise ParseError(
                    f"malformed SAR XML: {exc}", path=source
                ) from exc
            self._sink.file_error(
                f"malformed SAR XML (salvaged {len(document)} records): {exc}"
            )
            return document
        return document

    def _drain(self, parser, document, state, source) -> None:
        """Turn buffered pull-parser events into records."""
        for event, element in parser.read_events():
            if event == "start":
                self._on_start(element, document, state, source)
            elif element.tag == "timestamp":
                # The subtree is fully converted; free its elements so
                # a long monitoring session stays bounded in memory.
                element.clear()

    def _on_start(self, element, document, state, source) -> None:
        if not state.saw_root:
            state.saw_root = True
            if element.tag != "sysstat":
                raise _BadRoot(
                    f"expected <sysstat> root, got <{element.tag}>"
                )
            return
        if element.tag == "host":
            state.hostname = element.attrib.get("nodename", "")
        elif element.tag == "timestamp":
            state.ordinal += 1
            state.date = element.attrib.get("date")
            state.time = element.attrib.get("time")
            if not state.date or not state.time:
                state.date = state.time = None
                self.bad_line(
                    "timestamp element missing date/time",
                    source=source,
                    line_number=state.ordinal,
                    raw=_excerpt(element),
                )
        elif element.tag == "cpu":
            if state.date is None or state.time is None:
                # Inside a damaged <timestamp>; already reported.
                return
            record = LogRecord()
            try:
                record.set(
                    "timestamp_us",
                    str(wall_to_epoch_us(state.date, state.time)),
                )
                for attr, value in element.attrib.items():
                    if attr == "number":
                        record.set("cpu", value)
                    else:
                        record.set(sanitize_tag(attr + "_pct"), value)
            except ParseError as exc:
                # Garbled attribute text: this record alone is damaged.
                if not self.lenient:
                    raise
                self.bad_line(
                    str(exc),
                    source=source,
                    line_number=state.ordinal,
                    raw=_excerpt(element),
                )
                return
            if state.hostname:
                record.set("hostname", state.hostname)
            document.append(record)


class _SalvageState:
    """Mutable cursor over the document structure during the pull parse."""

    __slots__ = ("saw_root", "hostname", "date", "time", "ordinal")

    def __init__(self) -> None:
        self.saw_root = False
        self.hostname = ""
        self.date: str | None = None
        self.time: str | None = None
        #: 1-based ``<timestamp>`` ordinal — the "line number" recorded
        #: for record-level errors in this line-less format.
        self.ordinal = 0


def _excerpt(element) -> str:
    attrs = " ".join(f'{k}="{v}"' for k, v in element.attrib.items())
    return f"<{element.tag} {attrs}>" if attrs else f"<{element.tag}>"
