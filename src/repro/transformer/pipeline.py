"""mScopeDataTransformer — the multi-stage orchestration.

Ties the stages of the paper's Figure 3 together: resolve each log
file against the parsing declaration, run its mScopeParser to enrich
the raw lines into tagged XML, round-trip the XML artifact through
disk (when a work directory is given, keeping the stage boundary
honest), convert it to a typed CSV table with the bottom-up schema
inference, and load it into mScopeDB.

Scaling: the parse → convert stages are CPU-bound and embarrassingly
parallel across log files, so :meth:`transform_directory` fans them
out over a ``ProcessPoolExecutor`` (``jobs`` workers, defaulting to
the machine's core count).  The warehouse stays a **single-writer**
stage: the parent process drains completed tables in deterministic
``(host, file)`` order, so the warehouse contents are identical to a
serial (``jobs=1``) run — byte-for-byte under
:meth:`~repro.warehouse.db.MScopeDB.iterdump`.

Robustness: an :class:`~repro.transformer.errorpolicy.ErrorPolicy`
decides what damaged log data costs.  Under the default ``fail-fast``
policy the first damaged line aborts the transform exactly as it
always has; under ``skip``/``quarantine`` damaged lines are recorded
in the warehouse's ``ingest_errors`` table (and, for ``quarantine``,
diverted to a quarantine directory), every undamaged record still
imports, and a file whose per-file error budget runs out fails alone
— the run continues.  Error recording happens in the same
single-writer drain order as imports, so parallel runs stay
byte-identical to serial under every policy.

Self-observability: a :class:`~repro.telemetry.spans.TelemetryCollector`
turns the run into a span stream — ``resolve`` → per-file ``parse`` /
``convert`` (measured inside the worker that ran them) / ``import``
(single-writer) → a closing ``run`` span — plus drain-queue depth
samples during the parallel fan-out.  Spans are ingested and persisted
(``pipeline_metrics``) in the same deterministic drain order as
imports, and the default :data:`~repro.telemetry.spans.NULL_TELEMETRY`
sink keeps the instrumented path a no-op.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import shutil
from pathlib import Path

from repro.common.errors import DeclarationError, ParseError
from repro.transformer.declaration import (
    ParserBinding,
    ParsingDeclaration,
    default_declaration,
)
from repro.transformer.errorpolicy import (
    FAIL_FAST_POLICY,
    QUARANTINE,
    ErrorPolicy,
    ErrorSink,
    IngestError,
)
from repro.telemetry.spans import (
    NULL_PROBE,
    NULL_TELEMETRY,
    SpanData,
    SpanProbe,
    TelemetryCollector,
)
from repro.sampling.policy import SamplingPolicy, commit_flush, parse_policy
from repro.transformer.importer import MScopeDataImporter
from repro.transformer.parsers import create_parser
from repro.transformer.xml_to_csv import CsvTable, XmlToCsvConverter
from repro.transformer.xmlmodel import XmlDocument
from repro.warehouse.db import MScopeDB
from repro.warehouse.sharded import (
    ShardHostWriter,
    ShardInfo,
    ShardedMScopeDB,
    WorkerShardDB,
)

__all__ = ["TransformOutcome", "MScopeDataTransformer"]


@dataclasses.dataclass(frozen=True, slots=True)
class TransformOutcome:
    """What one log file became.

    ``error_count`` counts the damaged lines/records recorded for the
    file; ``failed`` marks a file that imported nothing (unsalvageable
    or over its error budget) under a lenient policy.
    """

    source: Path
    table_name: str
    rows_loaded: int
    columns: int
    parser_name: str
    xml_artifact: Path | None
    csv_artifact: Path | None
    error_count: int = 0
    failed: bool = False


def _parse_convert(
    path: Path,
    hostname: str,
    binding: ParserBinding,
    workdir: Path | None,
    policy: ErrorPolicy,
    probe: SpanProbe = NULL_PROBE,
) -> tuple[
    CsvTable | None,
    Path | None,
    Path | None,
    tuple[IngestError, ...],
    tuple[SpanData, ...],
]:
    """The CPU-bound stages for one file: parse → XML → convert → CSV.

    Runs either in-process (serial path) or inside a worker process
    (parallel fan-out); it touches only the file system, never the
    warehouse.  Returns ``(table, xml, csv, errors, spans)`` where
    ``table`` is ``None`` when the file failed under a lenient policy;
    collected ingest errors and the ``parse``/``convert`` stage spans
    travel back for the parent's single-writer stage to record in
    drain order.  Under ``fail-fast`` any damage raises, exactly as
    before.
    """
    parser = create_parser(binding)
    sink = ErrorSink(policy, str(path), binding.parser_name)
    spans: list[SpanData] = []
    source = str(path)
    document: XmlDocument | None = None
    with probe.span(spans, "parse", hostname, source, parent="file") as span:
        try:
            document = parser.parse_file(path, sink=sink, span=span)
        except ParseError as exc:
            if not policy.lenient:
                raise
            # Unsalvageable file (unreadable, or over its error
            # budget): fail the file, keep the run.
            sink.file_error(str(exc))
        span.add(errors=len(sink.errors))
    if document is None:
        _quarantine(policy, sink, path, hostname, failed_file=True)
        return None, None, None, tuple(sink.errors), tuple(spans)

    xml_artifact: Path | None = None
    csv_artifact: Path | None = None
    converter = XmlToCsvConverter()
    with probe.span(spans, "convert", hostname, source, parent="file") as span:
        if workdir is not None:
            xml_artifact = workdir / hostname / f"{path.stem}.xml"
            document.write(xml_artifact)
            # Honest stage boundary: the converter reads what the
            # parser wrote, not the parser's in-memory objects.
            document = XmlDocument.read(xml_artifact)

        table_name = f"{binding.monitor}_{hostname}"
        table = converter.convert(
            document, table_name, extra_columns={"hostname": hostname}
        )
        if workdir is not None:
            csv_artifact = workdir / hostname / f"{path.stem}.csv"
            converter.write_csv(table, csv_artifact)
        span.add(records=len(table.rows))
    _quarantine(policy, sink, path, hostname, failed_file=False)
    return table, xml_artifact, csv_artifact, tuple(sink.errors), tuple(spans)


def _quarantine(
    policy: ErrorPolicy,
    sink: ErrorSink,
    path: Path,
    hostname: str,
    failed_file: bool,
) -> None:
    """Divert a file's damaged lines (or the whole failed file).

    Each source file owns its quarantine artifacts, so parallel
    workers never contend and the layout is deterministic:
    ``<dir>/<host>/<file>.quarantine`` lists the damaged lines as
    ``<line>\\t<reason>\\t<excerpt>``; a failed file is additionally
    copied whole to ``<dir>/<host>/<file>``.
    """
    if policy.mode != QUARANTINE or not sink.errors:
        return
    assert policy.quarantine_dir is not None  # enforced by ErrorPolicy
    host_dir = policy.quarantine_dir / hostname
    host_dir.mkdir(parents=True, exist_ok=True)
    report = host_dir / f"{path.name}.quarantine"
    with report.open("w", encoding="utf-8") as handle:
        for error in sink.errors:
            handle.write(
                f"{error.line_number}\t{error.reason}\t{error.excerpt}\n"
            )
    if failed_file and path.exists():
        shutil.copyfile(path, host_dir / path.name)


def _parse_convert_task(
    path_str: str,
    hostname: str,
    binding: ParserBinding,
    workdir_str: str | None,
    policy: ErrorPolicy,
    probe: SpanProbe = NULL_PROBE,
) -> tuple[
    CsvTable | None,
    Path | None,
    Path | None,
    tuple[IngestError, ...],
    tuple[SpanData, ...],
]:
    """Picklable worker entry point for the process pool."""
    workdir = Path(workdir_str) if workdir_str is not None else None
    if probe.enabled:
        # Tag spans with the process that measured them; the collector
        # normalizes pids to stable w0..wN labels at aggregation time.
        probe = probe.relabel(f"pid-{os.getpid()}")
    return _parse_convert(
        Path(path_str), hostname, binding, workdir, policy, probe
    )


def _host_shard_task(
    root_str: str,
    host: str,
    window_us: int | None,
    file_specs: list[tuple[str, ParserBinding]],
    workdir_str: str | None,
    policy: ErrorPolicy,
    probe: SpanProbe = NULL_PROBE,
    sampling_spec: str | None = None,
) -> tuple[list[tuple], tuple[tuple, ...], list[ShardInfo]]:
    """Worker entry point for the sharded fan-out: one host, end to end.

    Unlike :func:`_parse_convert_task`, this worker owns the *write*
    stage too: it parses, converts, and imports every one of its
    host's files straight into a host-private
    :class:`~repro.warehouse.sharded.ShardHostWriter` — no table data
    ever crosses back to the parent, which removes the single-writer
    drain entirely.  Metadata side effects (schema catalog, load
    catalog, monitor registry, ingest errors) are buffered and
    returned for the parent to replay into the manifest in
    deterministic host order.

    Returns ``(file_results, meta_ops, shard_records)`` where each
    file result is ``(table_name, rows, columns, failed, xml, csv,
    errors, spans)`` in input file order.
    """
    workdir = Path(workdir_str) if workdir_str is not None else None
    if probe.enabled:
        probe = probe.relabel(f"pid-{os.getpid()}")
    # Coherent (stateless) policies rebuild identically from their spec
    # in every worker, so the kept set agrees with a monolith transform
    # of the same logs; stateful policies never reach this fan-out (the
    # transformer falls back to the serial path for them).
    sampling = parse_policy(sampling_spec)
    writer = ShardHostWriter(Path(root_str), host, window_us)
    facade = WorkerShardDB(writer)
    importer = MScopeDataImporter(facade)
    results: list[tuple] = []
    for path_str, binding in file_specs:
        path = Path(path_str)
        table, xml_artifact, csv_artifact, errors, spans = _parse_convert(
            path, host, binding, workdir, policy, probe
        )
        import_spans: list[SpanData] = []
        rows = 0
        with probe.span(
            import_spans, "import", host, path_str, parent="file"
        ) as span:
            span.add(errors=len(errors))
            if table is not None:
                if sampling is not None:
                    table = sampling.apply(table)
                rows = importer.import_table(
                    table, host, binding.parser_name, span=span
                )
                if sampling is not None:
                    entry = sampling.counts.get((table.name, table.source))
                    if entry is not None:
                        facade.record_sampling(
                            table.name,
                            table.source,
                            sampling.spec,
                            entry.rows_seen,
                            entry.rows_kept,
                            entry.bytes_seen,
                            entry.bytes_kept,
                        )
        results.append(
            (
                table.name if table is not None else "",
                rows,
                len(table.columns) if table is not None else 0,
                table is None,
                xml_artifact,
                csv_artifact,
                errors,
                tuple(spans) + tuple(import_spans),
            )
        )
    records = writer.close()
    return results, facade.drain_meta_ops(), records


class MScopeDataTransformer:
    """Transforms native monitor logs into warehouse tables.

    Parameters
    ----------
    db:
        The target warehouse.
    declaration:
        The parser-to-file mapping; defaults to the standard one
        covering every built-in mScopeMonitor.
    workdir:
        Directory for intermediate XML/CSV artifacts.  ``None`` skips
        writing them (the stages still run in the same order).
    jobs:
        Worker processes for the parse → convert fan-out.  ``None``
        (the default) uses ``os.cpu_count()``; ``1`` keeps everything
        in-process (the deterministic serial path — though parallel
        runs produce identical warehouses, see
        :meth:`transform_directory`).
    policy:
        The ingestion :class:`ErrorPolicy`; defaults to ``fail-fast``
        (the historical behaviour).
    telemetry:
        A :class:`~repro.telemetry.spans.TelemetryCollector` receiving
        the run's stage spans; defaults to the no-op
        :data:`~repro.telemetry.spans.NULL_TELEMETRY` sink, which
        keeps the warehouse byte-identical to a pre-telemetry one.
        With a real collector, :meth:`transform_directory` persists
        the run's telemetry into the warehouse's ``pipeline_metrics``
        / ``pipeline_workers`` tables.
    sampling:
        A log-volume-reduction policy (an instance from
        :mod:`repro.sampling.policy` or its spec string, e.g.
        ``"head:0.1"``).  Applied to every converted table with a
        ``request_id`` column at the single-writer import stage;
        resource tables pass through untouched.  Everything the policy
        drops is *counted* into the warehouse's ``sampling_ledger``, so
        the volume reduction is measured, not estimated.  ``None`` (the
        default) keeps the pipeline byte-identical to an unsampled one.
    """

    def __init__(
        self,
        db: MScopeDB | ShardedMScopeDB,
        declaration: ParsingDeclaration | None = None,
        workdir: Path | str | None = None,
        jobs: int | None = None,
        policy: ErrorPolicy | None = None,
        telemetry: TelemetryCollector | None = None,
        sampling: SamplingPolicy | str | None = None,
    ) -> None:
        self.db = db
        self.declaration = declaration or default_declaration()
        self.workdir = Path(workdir) if workdir is not None else None
        self.converter = XmlToCsvConverter()
        self.importer = MScopeDataImporter(db)
        self.jobs = jobs
        self.policy = policy or FAIL_FAST_POLICY
        self.telemetry = telemetry or NULL_TELEMETRY
        if isinstance(sampling, str):
            sampling = parse_policy(sampling)
        self.sampling = sampling

    # ------------------------------------------------------------------

    def _import_result(
        self,
        path: Path,
        binding: ParserBinding,
        table: CsvTable | None,
        hostname: str,
        xml_artifact: Path | None,
        csv_artifact: Path | None,
        errors: tuple[IngestError, ...] = (),
        spans: tuple[SpanData, ...] = (),
    ) -> TransformOutcome:
        """The single-writer stage: record errors, load one table.

        Runs in deterministic ``(host, file)`` drain order for both
        serial and parallel transforms, so the warehouse — including
        the ``ingest_errors`` ledger — is byte-identical either way.
        The file's worker-measured spans are ingested here, followed by
        the ``import`` span, so the telemetry stream inherits the same
        order.
        """
        telemetry = self.telemetry
        telemetry.ingest(spans)
        import_spans: list[SpanData] = []
        outcome: TransformOutcome
        with telemetry.probe().span(
            import_spans, "import", hostname, str(path), parent="file"
        ) as span:
            for error in errors:
                self.db.record_ingest_error(
                    error.path,
                    error.line_number,
                    error.parser,
                    error.reason,
                    error.excerpt,
                )
            span.add(errors=len(errors))
            if table is None:
                outcome = TransformOutcome(
                    source=path,
                    table_name="",
                    rows_loaded=0,
                    columns=0,
                    parser_name=binding.parser_name,
                    xml_artifact=None,
                    csv_artifact=None,
                    error_count=len(errors),
                    failed=True,
                )
            else:
                if self.sampling is not None:
                    table = self.sampling.apply(table)
                rows = self.importer.import_table(
                    table, hostname, binding.parser_name, span=span
                )
                if self.sampling is not None:
                    self._record_sampling_stream(
                        table, hostname, binding.parser_name
                    )
                outcome = TransformOutcome(
                    source=path,
                    table_name=table.name,
                    rows_loaded=rows,
                    columns=len(table.columns),
                    parser_name=binding.parser_name,
                    xml_artifact=xml_artifact,
                    csv_artifact=csv_artifact,
                    error_count=len(errors),
                )
        telemetry.ingest(import_spans)
        return outcome

    def _record_sampling_stream(
        self, table: CsvTable, hostname: str, parser_name: str
    ) -> None:
        """Ledger one sampled stream's cumulative counts (drain order)."""
        assert self.sampling is not None
        key = (table.name, table.source)
        entry = self.sampling.counts.get(key)
        if entry is None:
            # No request_id column: the policy never governed this
            # table, so it stays out of the ledger by design.
            return
        self.sampling.streams[key] = (hostname, parser_name)
        self.db.record_sampling(
            table.name,
            table.source,
            self.sampling.spec,
            entry.rows_seen,
            entry.rows_kept,
            entry.bytes_seen,
            entry.bytes_kept,
        )

    def flush_sampling(self) -> int:
        """Commit everything a stateful policy still withholds.

        Tail sampling defers each request's records until its fate is
        known; this settles every deferred request (VLRTs and coherent
        base-rate keeps commit, the rest drop), imports the released
        rows, re-records the load catalog and ledger with the final
        cumulative counts, and upserts the conflation aggregates.
        Idempotent, and a no-op without a stateful policy.  Returns the
        number of retroactively committed rows.
        """
        if self.sampling is None:
            return 0
        return commit_flush(self.sampling, self.importer, self.db)

    def transform_file(self, path: Path | str, hostname: str) -> TransformOutcome:
        """Run the full pipeline on one log file (in-process)."""
        path = Path(path)
        telemetry = self.telemetry
        resolve_spans: list[SpanData] = []
        with telemetry.probe().span(
            resolve_spans, "resolve", hostname, str(path)
        ) as span:
            binding = self.declaration.resolve(path)
            span.add(records=1)
        telemetry.ingest(resolve_spans)
        table, xml_artifact, csv_artifact, errors, spans = _parse_convert(
            path, hostname, binding, self.workdir, self.policy,
            telemetry.probe(),
        )
        return self._import_result(
            path, binding, table, hostname, xml_artifact, csv_artifact,
            errors, spans,
        )

    def _resolve_jobs(self, jobs: int | None, tasks: int) -> int:
        if jobs is None:
            jobs = self.jobs
        if jobs is None:
            jobs = os.cpu_count() or 1
        return max(1, min(jobs, tasks))

    def transform_directory(
        self, root: Path | str, jobs: int | None = None
    ) -> list[TransformOutcome]:
        """Transform every declared log under ``root``.

        Expects the layout the simulator writes:
        ``<root>/<hostname>/<stream>.log``.  Files no binding covers
        are skipped (a deployment always has unrelated logs around).

        With ``jobs > 1`` the parse → convert stages run across a
        process pool while imports stay in this process, draining
        completed tables in ``(host, file)`` order — so the resulting
        warehouse is identical to a ``jobs=1`` run, including on
        partial failure (files ordered before the first failing file
        are fully loaded, later ones are not).

        When the target warehouse is sharded
        (:class:`~repro.warehouse.sharded.ShardedMScopeDB`), ``jobs >
        1`` instead fans out whole *hosts*: each worker parses,
        converts, **and imports** its host's files into a private
        shard writer, eliminating the single-writer drain.  The loaded
        warehouse is content-identical to a serial run (held by the
        ``warehouse-sharded`` conformance pair); the one traded
        guarantee is partial-failure shape — on a mid-run error,
        *which* files were already loaded depends on worker timing,
        not file order.
        """
        root = Path(root)
        if not root.is_dir():
            raise DeclarationError(f"log directory {root} does not exist")
        telemetry = self.telemetry
        telemetry.start_run()
        resolve_spans: list[SpanData] = []
        work: list[tuple[Path, str, ParserBinding]] = []
        with telemetry.probe().span(resolve_spans, "resolve") as span:
            for host_dir in sorted(p for p in root.iterdir() if p.is_dir()):
                for log_file in sorted(host_dir.glob("*.log")):
                    binding = self.declaration.try_resolve(log_file)
                    if binding is None:
                        continue
                    work.append((log_file, host_dir.name, binding))
            span.add(records=len(work))
        telemetry.ingest(resolve_spans)

        jobs = self._resolve_jobs(jobs, len(work))
        sharded = getattr(self.db, "is_sharded", False)
        if sharded and self.sampling is not None and not (
            self.sampling.parallel_safe
        ):
            # Stateful policies (tail deferral, conflation aggregates)
            # need one writer that sees every tier; host fan-out would
            # split their state, so they ride the serial path instead.
            jobs = 1
        if jobs <= 1:
            outcomes: list[TransformOutcome] = []
            probe = telemetry.probe()
            for path, host, binding in work:
                table, xml_artifact, csv_artifact, errors, spans = (
                    _parse_convert(
                        path, host, binding, self.workdir, self.policy, probe
                    )
                )
                outcomes.append(
                    self._import_result(
                        path, binding, table, host, xml_artifact, csv_artifact,
                        errors, spans,
                    )
                )
        elif sharded:
            outcomes = self._transform_parallel_sharded(work, jobs)
        else:
            outcomes = self._transform_parallel(work, jobs)
        self.flush_sampling()
        self._finish_run(outcomes)
        return outcomes

    def _finish_run(self, outcomes: list[TransformOutcome]) -> None:
        """Close the run span and persist the run's telemetry."""
        telemetry = self.telemetry
        wall_ns = telemetry.finish_run()
        if not telemetry.enabled:
            return
        telemetry.ingest(
            [
                SpanData(
                    stage="run",
                    duration_ns=wall_ns,
                    records=sum(o.rows_loaded for o in outcomes),
                    errors=sum(o.error_count for o in outcomes),
                )
            ]
        )
        telemetry.persist(self.db)

    def _transform_parallel_sharded(
        self, work: list[tuple[Path, str, ParserBinding]], jobs: int
    ) -> list[TransformOutcome]:
        """Per-host parallel shard writers (see :meth:`transform_directory`).

        The parent's job shrinks to metadata: it drains host results
        in sorted host order, records each file's ingest errors and
        spans, replays the buffered catalog/registry ops into the
        manifest, and adopts the workers' shard records.
        """
        db = self.db
        assert isinstance(db, ShardedMScopeDB)  # dispatch guarantees it
        groups: dict[str, list[tuple[Path, ParserBinding]]] = {}
        for path, host, binding in work:
            groups.setdefault(host, []).append((path, binding))
        workdir_str = str(self.workdir) if self.workdir is not None else None
        telemetry = self.telemetry
        probe = telemetry.probe()
        outcomes: list[TransformOutcome] = []
        hosts = sorted(groups)
        workers = max(1, min(jobs, len(hosts)))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers
        ) as pool:
            futures = {
                host: pool.submit(
                    _host_shard_task,
                    str(db.root),
                    host,
                    db.window_us,
                    [(str(path), binding) for path, binding in groups[host]],
                    workdir_str,
                    self.policy,
                    probe,
                    self.sampling.spec if self.sampling is not None else None,
                )
                for host in hosts
            }
            try:
                for index, host in enumerate(hosts):
                    if telemetry.enabled:
                        telemetry.record_queue_depth(
                            sum(
                                1
                                for h in hosts[index:]
                                if futures[h].done()
                            )
                        )
                    results, meta_ops, records = futures[host].result()
                    for (path, binding), result in zip(groups[host], results):
                        (
                            table_name,
                            rows,
                            columns,
                            failed,
                            xml_artifact,
                            csv_artifact,
                            errors,
                            spans,
                        ) = result
                        telemetry.ingest(spans)
                        for error in errors:
                            self.db.record_ingest_error(
                                error.path,
                                error.line_number,
                                error.parser,
                                error.reason,
                                error.excerpt,
                            )
                        outcomes.append(
                            TransformOutcome(
                                source=path,
                                table_name=table_name,
                                rows_loaded=rows,
                                columns=columns,
                                parser_name=binding.parser_name,
                                xml_artifact=xml_artifact,
                                csv_artifact=csv_artifact,
                                error_count=len(errors),
                                failed=failed,
                            )
                        )
                    for op in meta_ops:
                        db.apply_meta_op(op)
                    db.register_shards(records)
            except BaseException:
                for future in futures.values():
                    future.cancel()
                raise
        return outcomes

    def _transform_parallel(
        self, work: list[tuple[Path, str, ParserBinding]], jobs: int
    ) -> list[TransformOutcome]:
        outcomes: list[TransformOutcome] = []
        workdir_str = str(self.workdir) if self.workdir is not None else None
        telemetry = self.telemetry
        probe = telemetry.probe()
        with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(
                    _parse_convert_task,
                    str(path),
                    host,
                    binding,
                    workdir_str,
                    self.policy,
                    probe,
                )
                for path, host, binding in work
            ]
            try:
                for index, ((path, host, binding), future) in enumerate(
                    zip(work, futures)
                ):
                    if telemetry.enabled:
                        # Depth of the single-writer drain queue: tasks
                        # already finished but not yet imported.
                        telemetry.record_queue_depth(
                            sum(1 for f in futures[index:] if f.done())
                        )
                    table, xml_artifact, csv_artifact, errors, spans = (
                        future.result()
                    )
                    outcomes.append(
                        self._import_result(
                            path, binding, table, host, xml_artifact,
                            csv_artifact, errors, spans,
                        )
                    )
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        return outcomes
