"""mScopeDataTransformer — the multi-stage orchestration.

Ties the stages of the paper's Figure 3 together: resolve each log
file against the parsing declaration, run its mScopeParser to enrich
the raw lines into tagged XML, round-trip the XML artifact through
disk (when a work directory is given, keeping the stage boundary
honest), convert it to a typed CSV table with the bottom-up schema
inference, and load it into mScopeDB.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.common.errors import DeclarationError
from repro.transformer.declaration import ParsingDeclaration, default_declaration
from repro.transformer.importer import MScopeDataImporter
from repro.transformer.parsers import create_parser
from repro.transformer.xml_to_csv import XmlToCsvConverter
from repro.transformer.xmlmodel import XmlDocument
from repro.warehouse.db import MScopeDB

__all__ = ["TransformOutcome", "MScopeDataTransformer"]


@dataclasses.dataclass(frozen=True, slots=True)
class TransformOutcome:
    """What one log file became."""

    source: Path
    table_name: str
    rows_loaded: int
    columns: int
    parser_name: str
    xml_artifact: Path | None
    csv_artifact: Path | None


class MScopeDataTransformer:
    """Transforms native monitor logs into warehouse tables.

    Parameters
    ----------
    db:
        The target warehouse.
    declaration:
        The parser-to-file mapping; defaults to the standard one
        covering every built-in mScopeMonitor.
    workdir:
        Directory for intermediate XML/CSV artifacts.  ``None`` skips
        writing them (the stages still run in the same order).
    """

    def __init__(
        self,
        db: MScopeDB,
        declaration: ParsingDeclaration | None = None,
        workdir: Path | str | None = None,
    ) -> None:
        self.db = db
        self.declaration = declaration or default_declaration()
        self.workdir = Path(workdir) if workdir is not None else None
        self.converter = XmlToCsvConverter()
        self.importer = MScopeDataImporter(db)

    # ------------------------------------------------------------------

    def transform_file(self, path: Path | str, hostname: str) -> TransformOutcome:
        """Run the full pipeline on one log file."""
        path = Path(path)
        binding = self.declaration.resolve(path)
        parser = create_parser(binding)
        document = parser.parse_file(path)

        xml_artifact: Path | None = None
        if self.workdir is not None:
            xml_artifact = self.workdir / hostname / f"{path.stem}.xml"
            document.write(xml_artifact)
            # Honest stage boundary: the converter reads what the
            # parser wrote, not the parser's in-memory objects.
            document = XmlDocument.read(xml_artifact)

        table_name = f"{binding.monitor}_{hostname}"
        table = self.converter.convert(
            document, table_name, extra_columns={"hostname": hostname}
        )
        csv_artifact: Path | None = None
        if self.workdir is not None:
            csv_artifact = self.workdir / hostname / f"{path.stem}.csv"
            self.converter.write_csv(table, csv_artifact)

        rows = self.importer.import_table(table, hostname, binding.parser_name)
        return TransformOutcome(
            source=path,
            table_name=table_name,
            rows_loaded=rows,
            columns=len(table.columns),
            parser_name=binding.parser_name,
            xml_artifact=xml_artifact,
            csv_artifact=csv_artifact,
        )

    def transform_directory(self, root: Path | str) -> list[TransformOutcome]:
        """Transform every declared log under ``root``.

        Expects the layout the simulator writes:
        ``<root>/<hostname>/<stream>.log``.  Files no binding covers
        are skipped (a deployment always has unrelated logs around).
        """
        root = Path(root)
        if not root.is_dir():
            raise DeclarationError(f"log directory {root} does not exist")
        outcomes: list[TransformOutcome] = []
        for host_dir in sorted(p for p in root.iterdir() if p.is_dir()):
            for log_file in sorted(host_dir.glob("*.log")):
                if self.declaration.try_resolve(log_file) is None:
                    continue
                outcomes.append(self.transform_file(log_file, host_dir.name))
        return outcomes
