"""mScopeDataTransformer — the multi-stage orchestration.

Ties the stages of the paper's Figure 3 together: resolve each log
file against the parsing declaration, run its mScopeParser to enrich
the raw lines into tagged XML, round-trip the XML artifact through
disk (when a work directory is given, keeping the stage boundary
honest), convert it to a typed CSV table with the bottom-up schema
inference, and load it into mScopeDB.

Scaling: the parse → convert stages are CPU-bound and embarrassingly
parallel across log files, so :meth:`transform_directory` fans them
out over a ``ProcessPoolExecutor`` (``jobs`` workers, defaulting to
the machine's core count).  The warehouse stays a **single-writer**
stage: the parent process drains completed tables in deterministic
``(host, file)`` order, so the warehouse contents are identical to a
serial (``jobs=1``) run — byte-for-byte under
:meth:`~repro.warehouse.db.MScopeDB.iterdump`.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
from pathlib import Path

from repro.common.errors import DeclarationError
from repro.transformer.declaration import (
    ParserBinding,
    ParsingDeclaration,
    default_declaration,
)
from repro.transformer.importer import MScopeDataImporter
from repro.transformer.parsers import create_parser
from repro.transformer.xml_to_csv import CsvTable, XmlToCsvConverter
from repro.transformer.xmlmodel import XmlDocument
from repro.warehouse.db import MScopeDB

__all__ = ["TransformOutcome", "MScopeDataTransformer"]


@dataclasses.dataclass(frozen=True, slots=True)
class TransformOutcome:
    """What one log file became."""

    source: Path
    table_name: str
    rows_loaded: int
    columns: int
    parser_name: str
    xml_artifact: Path | None
    csv_artifact: Path | None


def _parse_convert(
    path: Path,
    hostname: str,
    binding: ParserBinding,
    workdir: Path | None,
) -> tuple[CsvTable, Path | None, Path | None]:
    """The CPU-bound stages for one file: parse → XML → convert → CSV.

    Runs either in-process (serial path) or inside a worker process
    (parallel fan-out); it touches only the file system, never the
    warehouse.
    """
    parser = create_parser(binding)
    document = parser.parse_file(path)

    xml_artifact: Path | None = None
    csv_artifact: Path | None = None
    converter = XmlToCsvConverter()
    if workdir is not None:
        xml_artifact = workdir / hostname / f"{path.stem}.xml"
        document.write(xml_artifact)
        # Honest stage boundary: the converter reads what the
        # parser wrote, not the parser's in-memory objects.
        document = XmlDocument.read(xml_artifact)

    table_name = f"{binding.monitor}_{hostname}"
    table = converter.convert(
        document, table_name, extra_columns={"hostname": hostname}
    )
    if workdir is not None:
        csv_artifact = workdir / hostname / f"{path.stem}.csv"
        converter.write_csv(table, csv_artifact)
    return table, xml_artifact, csv_artifact


def _parse_convert_task(
    path_str: str,
    hostname: str,
    binding: ParserBinding,
    workdir_str: str | None,
) -> tuple[CsvTable, Path | None, Path | None]:
    """Picklable worker entry point for the process pool."""
    workdir = Path(workdir_str) if workdir_str is not None else None
    return _parse_convert(Path(path_str), hostname, binding, workdir)


class MScopeDataTransformer:
    """Transforms native monitor logs into warehouse tables.

    Parameters
    ----------
    db:
        The target warehouse.
    declaration:
        The parser-to-file mapping; defaults to the standard one
        covering every built-in mScopeMonitor.
    workdir:
        Directory for intermediate XML/CSV artifacts.  ``None`` skips
        writing them (the stages still run in the same order).
    jobs:
        Worker processes for the parse → convert fan-out.  ``None``
        (the default) uses ``os.cpu_count()``; ``1`` keeps everything
        in-process (the deterministic serial path — though parallel
        runs produce identical warehouses, see
        :meth:`transform_directory`).
    """

    def __init__(
        self,
        db: MScopeDB,
        declaration: ParsingDeclaration | None = None,
        workdir: Path | str | None = None,
        jobs: int | None = None,
    ) -> None:
        self.db = db
        self.declaration = declaration or default_declaration()
        self.workdir = Path(workdir) if workdir is not None else None
        self.converter = XmlToCsvConverter()
        self.importer = MScopeDataImporter(db)
        self.jobs = jobs

    # ------------------------------------------------------------------

    def _import_result(
        self,
        path: Path,
        binding: ParserBinding,
        table: CsvTable,
        hostname: str,
        xml_artifact: Path | None,
        csv_artifact: Path | None,
    ) -> TransformOutcome:
        """The single-writer stage: load one converted table."""
        rows = self.importer.import_table(table, hostname, binding.parser_name)
        return TransformOutcome(
            source=path,
            table_name=table.name,
            rows_loaded=rows,
            columns=len(table.columns),
            parser_name=binding.parser_name,
            xml_artifact=xml_artifact,
            csv_artifact=csv_artifact,
        )

    def transform_file(self, path: Path | str, hostname: str) -> TransformOutcome:
        """Run the full pipeline on one log file (in-process)."""
        path = Path(path)
        binding = self.declaration.resolve(path)
        table, xml_artifact, csv_artifact = _parse_convert(
            path, hostname, binding, self.workdir
        )
        return self._import_result(
            path, binding, table, hostname, xml_artifact, csv_artifact
        )

    def _resolve_jobs(self, jobs: int | None, tasks: int) -> int:
        if jobs is None:
            jobs = self.jobs
        if jobs is None:
            jobs = os.cpu_count() or 1
        return max(1, min(jobs, tasks))

    def transform_directory(
        self, root: Path | str, jobs: int | None = None
    ) -> list[TransformOutcome]:
        """Transform every declared log under ``root``.

        Expects the layout the simulator writes:
        ``<root>/<hostname>/<stream>.log``.  Files no binding covers
        are skipped (a deployment always has unrelated logs around).

        With ``jobs > 1`` the parse → convert stages run across a
        process pool while imports stay in this process, draining
        completed tables in ``(host, file)`` order — so the resulting
        warehouse is identical to a ``jobs=1`` run, including on
        partial failure (files ordered before the first failing file
        are fully loaded, later ones are not).
        """
        root = Path(root)
        if not root.is_dir():
            raise DeclarationError(f"log directory {root} does not exist")
        work: list[tuple[Path, str, ParserBinding]] = []
        for host_dir in sorted(p for p in root.iterdir() if p.is_dir()):
            for log_file in sorted(host_dir.glob("*.log")):
                binding = self.declaration.try_resolve(log_file)
                if binding is None:
                    continue
                work.append((log_file, host_dir.name, binding))

        jobs = self._resolve_jobs(jobs, len(work))
        if jobs <= 1:
            outcomes: list[TransformOutcome] = []
            for path, host, binding in work:
                table, xml_artifact, csv_artifact = _parse_convert(
                    path, host, binding, self.workdir
                )
                outcomes.append(
                    self._import_result(
                        path, binding, table, host, xml_artifact, csv_artifact
                    )
                )
            return outcomes
        return self._transform_parallel(work, jobs)

    def _transform_parallel(
        self, work: list[tuple[Path, str, ParserBinding]], jobs: int
    ) -> list[TransformOutcome]:
        outcomes: list[TransformOutcome] = []
        workdir_str = str(self.workdir) if self.workdir is not None else None
        with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(
                    _parse_convert_task, str(path), host, binding, workdir_str
                )
                for path, host, binding in work
            ]
            try:
                for (path, host, binding), future in zip(work, futures):
                    table, xml_artifact, csv_artifact = future.result()
                    outcomes.append(
                        self._import_result(
                            path, binding, table, host, xml_artifact, csv_artifact
                        )
                    )
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        return outcomes
