"""mScopeDataTransformer: declaration → parsers → XML → CSV → mScopeDB."""

from repro.transformer.declaration import (
    ParserBinding,
    ParserRule,
    ParsingDeclaration,
    RULE_LINE_SEQUENCE,
    RULE_REGEX_TOKEN,
    default_declaration,
)
from repro.transformer.errorpolicy import (
    ERROR_MODES,
    FAIL_FAST,
    QUARANTINE,
    SKIP,
    ErrorBudgetExceeded,
    ErrorPolicy,
    ErrorSink,
    IngestError,
)
from repro.transformer.importer import MScopeDataImporter
from repro.transformer.live import LiveTransformer, RefreshOutcome
from repro.transformer.pipeline import MScopeDataTransformer, TransformOutcome
from repro.transformer.timestamps import (
    clf_to_epoch_us,
    compact_date_to_iso,
    wall_to_epoch_us,
)
from repro.transformer.xml_to_csv import (
    CsvTable,
    TypeLattice,
    XmlToCsvConverter,
    infer_sql_type,
)
from repro.transformer.xmlmodel import LogRecord, XmlDocument, sanitize_tag

__all__ = [
    "CsvTable",
    "ERROR_MODES",
    "ErrorBudgetExceeded",
    "ErrorPolicy",
    "ErrorSink",
    "FAIL_FAST",
    "IngestError",
    "LiveTransformer",
    "QUARANTINE",
    "SKIP",
    "LogRecord",
    "MScopeDataImporter",
    "RefreshOutcome",
    "MScopeDataTransformer",
    "ParserBinding",
    "ParserRule",
    "ParsingDeclaration",
    "RULE_LINE_SEQUENCE",
    "RULE_REGEX_TOKEN",
    "TransformOutcome",
    "TypeLattice",
    "XmlDocument",
    "XmlToCsvConverter",
    "clf_to_epoch_us",
    "compact_date_to_iso",
    "default_declaration",
    "infer_sql_type",
    "sanitize_tag",
    "wall_to_epoch_us",
]
