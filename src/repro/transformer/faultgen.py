"""Deterministic log-corruption fault injection.

Monitor logs are written by live, possibly-crashing components over
shared files, so realistic damage is structured: a component dies mid
``write(2)`` (truncated line or file tail), two writers interleave a
torn line, a log rotates away its banner/header, a retry duplicates a
line, or a binary payload lands in a text stream.  The
:class:`LogCorruptor` applies exactly these damage classes to any
generated log directory, seeded and deterministic — the same seed over
the same tree produces byte-identical corruption — so every format
parser can be exercised against the damage in reproducible tests and
the nightly corruption-fuzz CI job.

Usage::

    corruptor = LogCorruptor(seed=7)
    reports = corruptor.corrupt_directory(log_root)

or from the shell (the nightly fuzz job's entry point)::

    python -m repro.transformer.faultgen --logs out/logs --seed 7
"""

from __future__ import annotations

import argparse
import dataclasses
import random
from pathlib import Path
from typing import Sequence

__all__ = ["CORRUPTION_KINDS", "Corruption", "LogCorruptor", "main"]

#: The damage classes, in deterministic application order.
CORRUPTION_KINDS = (
    "truncate_line",   # a line torn mid-write
    "truncate_tail",   # the file cut mid-record (writer crashed)
    "interleave",      # two concurrent appends torn into one line
    "garbage",         # invalid-encoding bytes spliced into a line
    "duplicate",       # a line written twice (retried append)
    "strip_header",    # banner/header lines rotated away
)

#: Line prefixes that identify banners/headers across the formats
#: (SAR's uname banner, iostat's Device header, collectl's # header).
_HEADER_PREFIXES = (b"#", b"Linux ", b"Device:")

_GARBAGE = b"\xff\xfe\x00\xc3\x28\xa0\xa1"


@dataclasses.dataclass(frozen=True, slots=True)
class Corruption:
    """One applied corruption, for test expectations and fuzz triage.

    ``line_number`` is the 1-based first damaged line; ``0`` marks
    whole-file damage (tail truncation, stripped headers).
    """

    path: str
    kind: str
    line_number: int
    detail: str


class LogCorruptor:
    """Seeded, deterministic corruption of generated log files."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    # precise single-line damage (used by the integration tests)

    def garble_lines(
        self, path: Path | str, line_numbers: Sequence[int]
    ) -> list[Corruption]:
        """Replace specific 1-based lines with deterministic junk text.

        The junk is printable but matches no monitor format, so the
        targeted lines are guaranteed-damaged records with known
        positions — the precise tool for per-format assertions.
        """
        path = Path(path)
        lines = path.read_bytes().split(b"\n")
        reports = []
        for number in line_numbers:
            junk = "".join(
                self.rng.choice("~!@#$^&*(){}<>?") for _ in range(24)
            ).encode("ascii")
            lines[number - 1] = junk
            reports.append(
                Corruption(str(path), "garble", number, junk.decode("ascii"))
            )
        path.write_bytes(b"\n".join(lines))
        return reports

    def truncate_line_at(
        self, path: Path | str, line_number: int, keep_chars: int
    ) -> Corruption:
        """Tear one specific line after ``keep_chars`` bytes."""
        path = Path(path)
        lines = path.read_bytes().split(b"\n")
        lines[line_number - 1] = lines[line_number - 1][:keep_chars]
        path.write_bytes(b"\n".join(lines))
        return Corruption(
            str(path), "truncate_line", line_number, f"kept {keep_chars} chars"
        )

    # ------------------------------------------------------------------
    # randomized damage (the fuzz surface)

    def corrupt_file(
        self,
        path: Path | str,
        kinds: Sequence[str] | None = None,
    ) -> list[Corruption]:
        """Apply one randomly chosen corruption of each requested kind."""
        path = Path(path)
        reports: list[Corruption] = []
        for kind in kinds if kinds is not None else CORRUPTION_KINDS:
            if kind not in CORRUPTION_KINDS:
                raise ValueError(f"unknown corruption kind {kind!r}")
            data = path.read_bytes()
            if not data.strip():
                continue
            damaged, report = getattr(self, f"_{kind}")(data, str(path))
            if report is not None:
                path.write_bytes(damaged)
                reports.append(report)
        return reports

    def corrupt_directory(
        self,
        root: Path | str,
        kinds: Sequence[str] | None = None,
        pattern: str = "*.log",
        probability: float = 1.0,
    ) -> list[Corruption]:
        """Corrupt every matching file under ``root`` (sorted order).

        ``probability`` damages only a fraction of the files —
        corruption in production is sparse, and undamaged files anchor
        the "every undamaged record imports" invariant.
        """
        root = Path(root)
        reports: list[Corruption] = []
        for path in sorted(root.rglob(pattern)):
            if self.rng.random() > probability:
                continue
            reports.extend(self.corrupt_file(path, kinds))
        return reports

    # ------------------------------------------------------------------
    # damage implementations: bytes in, (bytes, report | None) out

    def _pick_line(self, lines: list[bytes]) -> int | None:
        """Index of a random non-empty line, or ``None``."""
        candidates = [i for i, line in enumerate(lines) if line.strip()]
        return self.rng.choice(candidates) if candidates else None

    def _truncate_line(self, data: bytes, path: str):
        lines = data.split(b"\n")
        index = self._pick_line(lines)
        if index is None:
            return data, None
        keep = self.rng.randrange(1, max(2, len(lines[index])))
        lines[index] = lines[index][:keep]
        return b"\n".join(lines), Corruption(
            path, "truncate_line", index + 1, f"kept {keep} bytes"
        )

    def _truncate_tail(self, data: bytes, path: str):
        if len(data) < 2:
            return data, None
        cut = self.rng.randrange(max(1, len(data) * 3 // 5), len(data))
        return data[:cut], Corruption(
            path, "truncate_tail", 0, f"cut at byte {cut} of {len(data)}"
        )

    def _interleave(self, data: bytes, path: str):
        lines = data.split(b"\n")
        full = [i for i, line in enumerate(lines) if line.strip()]
        if len(full) < 2:
            return data, None
        a = self.rng.choice(full[:-1])
        b = full[full.index(a) + 1]
        split = self.rng.randrange(1, max(2, len(lines[a])))
        torn = lines[a][:split] + lines[b] + lines[a][split:]
        merged = lines[:a] + [torn] + lines[a + 1 : b] + lines[b + 1 :]
        return b"\n".join(merged), Corruption(
            path, "interleave", a + 1, f"line {b + 1} spliced at byte {split}"
        )

    def _garbage(self, data: bytes, path: str):
        lines = data.split(b"\n")
        index = self._pick_line(lines)
        if index is None:
            return data, None
        at = self.rng.randrange(0, max(1, len(lines[index])))
        lines[index] = lines[index][:at] + _GARBAGE + lines[index][at:]
        return b"\n".join(lines), Corruption(
            path, "garbage", index + 1, f"{len(_GARBAGE)} raw bytes at {at}"
        )

    def _duplicate(self, data: bytes, path: str):
        lines = data.split(b"\n")
        index = self._pick_line(lines)
        if index is None:
            return data, None
        lines.insert(index, lines[index])
        return b"\n".join(lines), Corruption(
            path, "duplicate", index + 1, "line duplicated"
        )

    def _strip_header(self, data: bytes, path: str):
        lines = data.split(b"\n")
        kept = [
            line
            for line in lines
            if not line.startswith(_HEADER_PREFIXES)
        ]
        if len(kept) == len(lines):
            return data, None
        return b"\n".join(kept), Corruption(
            path, "strip_header", 0, f"removed {len(lines) - len(kept)} lines"
        )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: corrupt a log directory in place."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.transformer.faultgen",
        description="seeded corruption fault injection for monitor logs",
    )
    parser.add_argument("--logs", type=Path, required=True)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--kinds",
        default=",".join(CORRUPTION_KINDS),
        help="comma-separated corruption kinds",
    )
    parser.add_argument(
        "--probability",
        type=float,
        default=1.0,
        help="per-file probability of damage",
    )
    args = parser.parse_args(argv)
    kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
    reports = LogCorruptor(args.seed).corrupt_directory(
        args.logs, kinds=kinds, probability=args.probability
    )
    for report in reports:
        print(
            f"{report.path}:{report.line_number} "
            f"{report.kind} ({report.detail})"
        )
    print(f"{len(reports)} corruptions applied (seed {args.seed})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
