"""The semi-structured intermediate representation.

The mScopeParsers "enrich" raw monitor logs by wrapping each logical
record in XML tags (Section III-B).  A parsed file becomes an
:class:`XmlDocument` — an ordered list of :class:`LogRecord` entries,
each a mapping of tag name to string value — which can be written to a
real ``.xml`` file and read back, keeping the pipeline's stages honest
(the converter sees only the XML, never the parser's internals).
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Iterator, Mapping
from xml.sax.saxutils import escape, quoteattr

from repro.common.errors import ParseError

__all__ = ["LogRecord", "XmlDocument", "sanitize_tag"]

_TAG_CLEAN_RE = re.compile(r"[^A-Za-z0-9_]")
_TAG_OK_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

# Code points XML 1.0 cannot carry at all, escaped or not: C0 controls
# (minus tab/newline/CR), surrogates, and the two non-characters.  Raw
# bytes from a damaged log can reach a record value as such code points
# (they are valid UTF-8), so the writer maps them to U+FFFD to keep the
# artifact readable by :meth:`XmlDocument.read`.
_XML_INVALID_RE = re.compile(
    "[\\x00-\\x08\\x0b\\x0c\\x0e-\\x1f"
    "\\ud800-\\udfff\\ufffe\\uffff]"
)


def _xml_text(value: str) -> str:
    return escape(_XML_INVALID_RE.sub("\ufffd", value))


def sanitize_tag(raw: str) -> str:
    """Turn an arbitrary column label into a valid XML tag / SQL column.

    ``[CPU]User%`` → ``cpu_user_pct``; ``%util`` → ``util_pct``.
    """
    name = raw.strip()
    name = name.replace("%", "_pct").replace("/", "_per_")
    name = _TAG_CLEAN_RE.sub("_", name)
    name = re.sub(r"_+", "_", name).strip("_").lower()
    if not name:
        raise ParseError(f"cannot derive a tag name from {raw!r}")
    if not _TAG_OK_RE.match(name):
        name = "f_" + name
    return name


class LogRecord:
    """One enriched log record: an ordered tag → value mapping."""

    __slots__ = ("_fields",)

    def __init__(self, fields: Mapping[str, str] | None = None) -> None:
        self._fields: dict[str, str] = {}
        if fields:
            for tag, value in fields.items():
                self.set(tag, value)

    def set(self, tag: str, value) -> None:
        """Set one field (tag must already be sanitized)."""
        if not _TAG_OK_RE.match(tag):
            raise ParseError(f"invalid tag name {tag!r}")
        self._fields[tag] = str(value)

    def get(self, tag: str, default: str | None = None) -> str | None:
        """Read one field."""
        return self._fields.get(tag, default)

    def tags(self) -> list[str]:
        """Tags in insertion order."""
        return list(self._fields)

    def items(self) -> Iterator[tuple[str, str]]:
        return iter(self._fields.items())

    def __contains__(self, tag: str) -> bool:
        return tag in self._fields

    def __len__(self) -> int:
        return len(self._fields)

    def __eq__(self, other) -> bool:
        if not isinstance(other, LogRecord):
            return NotImplemented
        return self._fields == other._fields

    def __repr__(self) -> str:
        return f"LogRecord({self._fields!r})"


class XmlDocument:
    """An ordered collection of enriched records from one source log."""

    def __init__(self, monitor: str, source: str) -> None:
        self.monitor = monitor
        self.source = source
        self.records: list[LogRecord] = []

    def append(self, record: LogRecord) -> None:
        """Add one record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self.records)

    def all_tags(self) -> list[str]:
        """Union of tags across records, ordered by first appearance."""
        seen: dict[str, None] = {}
        for record in self.records:
            for tag in record.tags():
                seen.setdefault(tag, None)
        return list(seen)

    # ------------------------------------------------------------------
    # file round trip

    def write(self, path: Path | str) -> Path:
        """Write the document as a real XML file, one record at a time.

        The writer streams records straight to disk instead of
        building a full element tree first, so the artifact's memory
        cost is one record, not one file.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        monitor_attr = quoteattr(_XML_INVALID_RE.sub("\ufffd", self.monitor))
        source_attr = quoteattr(_XML_INVALID_RE.sub("\ufffd", self.source))
        with path.open("w", encoding="utf-8") as handle:
            handle.write("<?xml version='1.0' encoding='utf-8'?>\n")
            handle.write(
                f"<mscope monitor={monitor_attr} source={source_attr}>"
            )
            for record in self.records:
                parts = ["<log>"]
                for tag, value in record.items():
                    parts.append(f"<{tag}>{_xml_text(value)}</{tag}>")
                parts.append("</log>")
                handle.write("".join(parts))
            handle.write("</mscope>")
        return path

    @classmethod
    def read(cls, path: Path | str) -> "XmlDocument":
        """Read a document previously written with :meth:`write`.

        Uses ``iterparse`` so only the record being assembled is held
        as element objects; processed elements are cleared as the
        parse advances.
        """
        path = Path(path)
        doc: XmlDocument | None = None
        root: ET.Element | None = None
        depth = 0
        try:
            for event, element in ET.iterparse(path, events=("start", "end")):
                if event == "start":
                    if depth == 0:
                        if element.tag != "mscope":
                            raise ParseError(
                                f"expected <mscope> root, got <{element.tag}>",
                                path=str(path),
                            )
                        doc = cls(
                            monitor=element.attrib.get("monitor", "unknown"),
                            source=element.attrib.get("source", str(path)),
                        )
                        root = element
                    elif depth == 1 and element.tag != "log":
                        raise ParseError(
                            f"unexpected element <{element.tag}>", path=str(path)
                        )
                    depth += 1
                    continue
                depth -= 1
                if depth == 1:  # closed one <log> record
                    record = LogRecord()
                    for child in element:
                        record.set(
                            child.tag,
                            child.text if child.text is not None else "",
                        )
                    doc.append(record)  # type: ignore[union-attr]
                    root.clear()  # type: ignore[union-attr]
        except ET.ParseError as exc:
            raise ParseError(f"malformed XML: {exc}", path=str(path)) from exc
        if doc is None:
            raise ParseError("empty XML document", path=str(path))
        return doc
