"""Ingestion error policies.

Monitor logs come from live, possibly-crashing components, so the
transformer must digest truncated lines, torn concurrent writes,
encoding garbage, and stripped headers without discarding a whole
monitoring session.  The :class:`ErrorPolicy` decides what happens
when a parser meets a damaged line or record:

* ``fail-fast``   — raise :class:`~repro.common.errors.ParseError`
  immediately (the historical behaviour; default everywhere);
* ``skip``        — drop the damaged line, record it in the
  warehouse's ``ingest_errors`` table, keep parsing;
* ``quarantine``  — like ``skip``, but the damaged raw lines are also
  diverted to a quarantine directory for later inspection.

Under ``skip`` and ``quarantine`` each file has an **error budget**:
once a file accumulates more than ``budget`` damaged records, the file
fails as a whole (its records are not imported and a file-level error
is recorded) — but the *run* continues with the next file.

The :class:`ErrorSink` is the per-file collector threaded through one
``parse_file`` call.  Parsers report damage through
:meth:`MScopeParser.bad_line`, which delegates here; the pipeline owns
the sink, so recorded errors survive even when the parse aborts.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.common.errors import ParseError

__all__ = [
    "FAIL_FAST",
    "SKIP",
    "QUARANTINE",
    "ERROR_MODES",
    "ErrorPolicy",
    "ErrorBudgetExceeded",
    "IngestError",
    "ErrorSink",
    "FAIL_FAST_POLICY",
]

FAIL_FAST = "fail-fast"
SKIP = "skip"
QUARANTINE = "quarantine"

ERROR_MODES = (FAIL_FAST, SKIP, QUARANTINE)

#: Excerpt length kept per damaged line (warehouse rows stay small).
_EXCERPT_LIMIT = 200


class ErrorBudgetExceeded(ParseError):
    """A file accumulated more damaged records than its budget allows."""


@dataclasses.dataclass(frozen=True, slots=True)
class ErrorPolicy:
    """How ingestion reacts to damaged log data.

    Parameters
    ----------
    mode:
        One of :data:`FAIL_FAST`, :data:`SKIP`, :data:`QUARANTINE`.
    budget:
        Damaged records tolerated per file before the file fails
        (``None`` = unlimited).  Ignored under ``fail-fast``.
    quarantine_dir:
        Where damaged lines/files are diverted; required (and only
        used) in ``quarantine`` mode.
    """

    mode: str = FAIL_FAST
    budget: int | None = 1000
    quarantine_dir: Path | None = None

    def __post_init__(self) -> None:
        if self.mode not in ERROR_MODES:
            raise ValueError(
                f"unknown error mode {self.mode!r}; expected one of {ERROR_MODES}"
            )
        if self.budget is not None and self.budget < 1:
            raise ValueError("error budget must be >= 1 (or None for unlimited)")
        if self.mode == QUARANTINE and self.quarantine_dir is None:
            raise ValueError("quarantine mode needs a quarantine_dir")
        if self.quarantine_dir is not None:
            object.__setattr__(self, "quarantine_dir", Path(self.quarantine_dir))

    @property
    def lenient(self) -> bool:
        """Whether damaged lines are recorded instead of raised."""
        return self.mode != FAIL_FAST


#: The default policy: today's fail-fast behaviour, unchanged.
FAIL_FAST_POLICY = ErrorPolicy(mode=FAIL_FAST)


@dataclasses.dataclass(frozen=True, slots=True)
class IngestError:
    """One damaged line, record, or file, as recorded in ``ingest_errors``.

    ``line_number`` is 1-based; ``0`` marks a file-level failure (the
    whole file was unparsable or its error budget ran out).  For
    record-oriented rather than line-oriented formats (SAR XML) it is
    the 1-based record ordinal within the document.
    """

    path: str
    line_number: int
    parser: str
    reason: str
    excerpt: str = ""


class ErrorSink:
    """Per-file error collector enforcing one :class:`ErrorPolicy`.

    Created by the pipeline for each ``parse_file`` call and handed to
    the parser; the caller keeps the reference so the collected errors
    are available even when the parse raises (budget exhaustion,
    unsalvageable file).
    """

    __slots__ = ("policy", "path", "parser_name", "errors")

    def __init__(self, policy: ErrorPolicy, path: str, parser_name: str) -> None:
        self.policy = policy
        self.path = path
        self.parser_name = parser_name
        self.errors: list[IngestError] = []

    def line_error(
        self, message: str, line_number: int | None, raw: str = ""
    ) -> None:
        """Report one damaged line/record.

        Raises :class:`ParseError` under ``fail-fast`` (exactly the
        historical exception) and :class:`ErrorBudgetExceeded` when a
        lenient policy's per-file budget runs out; otherwise records
        the damage and returns so the parser can continue.
        """
        if not self.policy.lenient:
            raise ParseError(message, path=self.path, line_number=line_number)
        self.errors.append(
            IngestError(
                path=self.path,
                line_number=line_number or 0,
                parser=self.parser_name,
                reason=message,
                excerpt=raw[:_EXCERPT_LIMIT],
            )
        )
        budget = self.policy.budget
        if budget is not None and len(self.errors) > budget:
            raise ErrorBudgetExceeded(
                f"error budget of {budget} damaged records exhausted",
                path=self.path,
            )

    def file_error(self, message: str, excerpt: str = "") -> IngestError:
        """Record a file-level failure (never raises)."""
        error = IngestError(
            path=self.path,
            line_number=0,
            parser=self.parser_name,
            reason=message,
            excerpt=excerpt[:_EXCERPT_LIMIT],
        )
        self.errors.append(error)
        return error

    def __len__(self) -> int:
        return len(self.errors)
