"""Parsing declarations.

The first transformer stage (Section III-B-1): a declarative mapping
from input log files to the mScopeParser that should handle them, plus
instructions for *how* the parser injects semantics — either by the
sequence of lines in the file (``line_sequence`` rules: banners,
repeated headers, trailers) or by specific string tokens expressed as
regular expressions (``regex_token`` rules).
"""

from __future__ import annotations

import dataclasses
import fnmatch
import functools
import re
from pathlib import Path
from typing import Any

from repro.common.errors import DeclarationError

__all__ = [
    "RULE_LINE_SEQUENCE",
    "RULE_REGEX_TOKEN",
    "ParserRule",
    "ParserBinding",
    "ParsingDeclaration",
    "compile_pattern",
    "default_declaration",
]


@functools.lru_cache(maxsize=None)
def compile_pattern(pattern: str) -> "re.Pattern[str]":
    """Compile (and cache) a declaration regex.

    Declarations name the same handful of patterns for every file and
    every parser instance; caching the compiled objects means rule
    validation and parser construction never recompile them.
    """
    return re.compile(pattern)

RULE_LINE_SEQUENCE = "line_sequence"
RULE_REGEX_TOKEN = "regex_token"

_RULE_KINDS = (RULE_LINE_SEQUENCE, RULE_REGEX_TOKEN)


@dataclasses.dataclass(frozen=True)
class ParserRule:
    """One instruction for semantic injection.

    ``kind`` selects the mechanism; ``params`` carries its settings
    (e.g. ``{"pattern": r"ID=(\\w+)", "tag": "request_id"}`` for a
    regex-token rule, or ``{"skip_banner_lines": 2}`` for a
    line-sequence rule).
    """

    kind: str
    params: dict[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _RULE_KINDS:
            raise DeclarationError(f"unknown rule kind {self.kind!r}")
        if self.kind == RULE_REGEX_TOKEN and "pattern" in self.params:
            try:
                compile_pattern(self.params["pattern"])
            except re.error as exc:
                raise DeclarationError(
                    f"invalid regex {self.params['pattern']!r}: {exc}"
                ) from exc


@dataclasses.dataclass(frozen=True)
class ParserBinding:
    """Associates a file-name pattern with a parser and its rules."""

    pattern: str
    parser_name: str
    monitor: str
    rules: tuple[ParserRule, ...] = ()

    def matches(self, path: Path | str) -> bool:
        """Whether this binding covers ``path`` (matched on the name)."""
        return fnmatch.fnmatch(Path(path).name, self.pattern)


class ParsingDeclaration:
    """The full parser-to-log-file mapping for one experiment.

    Bindings are consulted in registration order; the first match
    wins, so more specific patterns should be registered first.
    """

    def __init__(self) -> None:
        self._bindings: list[ParserBinding] = []
        # Bindings match on the file *name*, so resolution is cached
        # per name — a deployment repeats the same dozen log names
        # across every host.
        self._resolve_cache: dict[str, ParserBinding | None] = {}

    def register(self, binding: ParserBinding) -> None:
        """Add one binding."""
        self._bindings.append(binding)
        self._resolve_cache.clear()

    @property
    def bindings(self) -> list[ParserBinding]:
        """All registered bindings, in priority order."""
        return list(self._bindings)

    def resolve(self, path: Path | str) -> ParserBinding:
        """The binding covering ``path``; raises if none matches."""
        binding = self.try_resolve(path)
        if binding is None:
            raise DeclarationError(
                f"no parser declared for {Path(path).name!r}"
            )
        return binding

    def try_resolve(self, path: Path | str) -> ParserBinding | None:
        """Like :meth:`resolve` but returns ``None`` on no match."""
        name = Path(path).name
        try:
            return self._resolve_cache[name]
        except KeyError:
            pass
        found = None
        for binding in self._bindings:
            if binding.matches(name):
                found = binding
                break
        self._resolve_cache[name] = found
        return found


def default_declaration() -> ParsingDeclaration:
    """The standard declaration covering every built-in mScopeMonitor."""
    declaration = ParsingDeclaration()
    declaration.register(
        ParserBinding(
            pattern="access_log.log",
            parser_name="apache",
            monitor="apache_events",
            rules=(
                ParserRule(
                    RULE_REGEX_TOKEN,
                    {"pattern": r"\?ID=(R[0-9A-Za-z]{11})", "tag": "request_id"},
                ),
            ),
        )
    )
    declaration.register(
        ParserBinding(
            pattern="catalina_log.log",
            parser_name="tomcat",
            monitor="tomcat_events",
        )
    )
    declaration.register(
        ParserBinding(
            pattern="controller_log.log",
            parser_name="cjdbc",
            monitor="cjdbc_events",
        )
    )
    declaration.register(
        ParserBinding(
            pattern="mysql_log.log",
            parser_name="mysql",
            monitor="mysql_events",
            rules=(
                ParserRule(
                    RULE_REGEX_TOKEN,
                    {"pattern": r"/\*ID=(R[0-9A-Za-z]{11})\*/", "tag": "request_id"},
                ),
            ),
        )
    )
    declaration.register(
        ParserBinding(
            pattern="sar_xml.log",
            parser_name="sar_xml",
            monitor="sar_xml",
        )
    )
    declaration.register(
        ParserBinding(
            pattern="sar.log",
            parser_name="sar_text",
            monitor="sar",
            rules=(
                ParserRule(RULE_LINE_SEQUENCE, {"banner_lines": 1}),
            ),
        )
    )
    declaration.register(
        ParserBinding(
            pattern="iostat.log",
            parser_name="iostat",
            monitor="iostat",
            rules=(
                ParserRule(RULE_LINE_SEQUENCE, {"block_separator": "blank"}),
            ),
        )
    )
    declaration.register(
        ParserBinding(
            pattern="collectl_csv.log",
            parser_name="collectl_csv",
            monitor="collectl",
        )
    )
    declaration.register(
        ParserBinding(
            pattern="collectl.log",
            parser_name="collectl_text",
            monitor="collectl",
        )
    )
    return declaration
