"""The mScope Data Importer.

The pipeline's last stage: create warehouse tables on the fly from the
converter's inferred schemas and load the typed rows.  Re-imports into
an existing table reconcile schemas column-by-column — new columns are
added with NULL backfill, matching the dynamic-warehouse behaviour the
paper describes (tables materialize and grow as logs arrive).
"""

from __future__ import annotations

from repro.common.errors import DataImportError
from repro.transformer.xml_to_csv import CsvTable
from repro.warehouse.db import MScopeDB

__all__ = ["MScopeDataImporter"]

_WIDER = {"INTEGER": 0, "REAL": 1, "TEXT": 2}


class MScopeDataImporter:
    """Loads converted tables into mScopeDB."""

    def __init__(self, db: MScopeDB) -> None:
        self.db = db

    def import_table(
        self,
        table: CsvTable,
        hostname: str,
        parser_name: str,
    ) -> int:
        """Create/extend the target table and load the rows.

        Returns the number of rows inserted.
        """
        if not table.columns:
            raise DataImportError(f"table {table.name!r} has no columns")
        existing = set(self.db.dynamic_tables())
        if table.name not in existing:
            self.db.create_table(table.name, table.columns)
            for column in ("request_id", "timestamp_us"):
                if column in table.column_names:
                    self.db.create_index(table.name, column)
        else:
            self._reconcile_schema(table)
        inserted = self.db.insert_rows(
            table.name, table.column_names, table.rows
        )
        self.db.record_load(
            table.name, table.source, inserted, len(table.columns)
        )
        self.db.register_monitor(
            monitor=table.monitor,
            hostname=hostname,
            source_path=table.source,
            parser=parser_name,
            table_name=table.name,
        )
        return inserted

    def _reconcile_schema(self, table: CsvTable) -> None:
        current = dict(self.db.table_schema(table.name))
        for column, sql_type in table.columns:
            if column not in current:
                self.db.add_column(table.name, column, sql_type)
            elif _WIDER[sql_type] > _WIDER.get(current[column], 2):
                # sqlite's type affinity tolerates wider values in a
                # narrower column; record the widening in the catalog
                # rather than rewriting the table.
                pass
