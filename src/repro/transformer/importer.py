"""The mScope Data Importer.

The pipeline's last stage: create warehouse tables on the fly from the
converter's inferred schemas and load the typed rows.  Re-imports into
an existing table reconcile schemas column-by-column — new columns are
added with NULL backfill, matching the dynamic-warehouse behaviour the
paper describes (tables materialize and grow as logs arrive).

Each file's load runs as one warehouse transaction (via
:meth:`~repro.warehouse.db.MScopeDB.bulk_load`), indexes are created
*after* the first bulk insert so the insert never pays index
maintenance, and table existence is cached across files instead of
re-querying the warehouse per import.
"""

from __future__ import annotations

from repro.common.errors import DataImportError
from repro.transformer.xml_to_csv import CsvTable
from repro.warehouse.db import MScopeDB
from repro.warehouse.sharded import ShardedMScopeDB, WorkerShardDB

__all__ = ["MScopeDataImporter"]

#: Anything the importer can load into: the monolithic warehouse, the
#: sharded one (serial path), or a worker-private shard facade
#: (parallel sharded path).
WarehouseTarget = MScopeDB | ShardedMScopeDB | WorkerShardDB

_WIDER = {"INTEGER": 0, "REAL": 1, "TEXT": 2}


class MScopeDataImporter:
    """Loads converted tables into mScopeDB."""

    def __init__(self, db: WarehouseTarget) -> None:
        self.db = db
        self._known_tables: set[str] | None = None

    def _table_exists(self, name: str) -> bool:
        if self._known_tables is None:
            self._known_tables = set(self.db.dynamic_tables())
        return name in self._known_tables

    def import_table(
        self,
        table: CsvTable,
        hostname: str,
        parser_name: str,
        span=None,
    ) -> int:
        """Create/extend the target table and load the rows.

        The whole load — DDL, bulk insert, indexes, provenance — is
        one transaction.  Returns the number of rows inserted.  An
        optional telemetry ``span`` is credited with the inserted row
        count.
        """
        if not table.columns:
            raise DataImportError(f"table {table.name!r} has no columns")
        with self.db.bulk_load():
            created = not self._table_exists(table.name)
            if created:
                self.db.create_table(table.name, table.columns)
                self._known_tables.add(table.name)  # type: ignore[union-attr]
            else:
                self._reconcile_schema(table)
            inserted = self.db.insert_rows(
                table.name, table.column_names, table.rows
            )
            if created:
                # Index after the bulk insert: building each index in
                # one pass is cheaper than maintaining it row-by-row.
                for column in ("request_id", "timestamp_us"):
                    if column in table.column_names:
                        self.db.create_index(table.name, column)
                names = set(table.column_names)
                if {"upstream_arrival_us", "upstream_departure_us"} <= names:
                    # Event tables also serve the explorer's hot
                    # queries: slowest_requests sorts on the
                    # response-time expression, interaction_stats
                    # groups on interaction — both must stay off full
                    # table scans as the warehouse grows.
                    self.db.create_response_time_index(table.name)
                    if "interaction" in names:
                        self.db.create_covering_index(
                            table.name,
                            (
                                "interaction",
                                "upstream_arrival_us",
                                "upstream_departure_us",
                            ),
                            "interaction_rt",
                        )
            self.db.record_load(
                table.name, table.source, inserted, len(table.columns)
            )
            self.db.register_monitor(
                monitor=table.monitor,
                hostname=hostname,
                source_path=table.source,
                parser=parser_name,
                table_name=table.name,
            )
        if span is not None:
            span.add(records=inserted)
        return inserted

    def _reconcile_schema(self, table: CsvTable) -> None:
        current = dict(self.db.table_schema(table.name))
        for column, sql_type in table.columns:
            if column not in current:
                self.db.add_column(table.name, column, sql_type)
            elif _WIDER[sql_type] > _WIDER.get(current[column], 2):
                # sqlite's type affinity tolerates wider values in a
                # narrower column; record the widening in the schema
                # catalog so table_schema() reflects reality.
                self.db.record_column_type(table.name, column, sql_type)
