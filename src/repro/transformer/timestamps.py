"""Wall-clock string parsing shared by the mScopeParsers.

Every parser normalizes its source's timestamp dialect into one tag —
``timestamp_us``, integer microseconds since the Unix epoch — so the
warehouse can join series from different monitors on a common axis.
"""

from __future__ import annotations

import datetime as _dt

from repro.common.errors import ParseError

__all__ = ["wall_to_epoch_us", "clf_to_epoch_us", "compact_date_to_iso"]

_UTC = _dt.timezone.utc


def wall_to_epoch_us(date_str: str, time_str: str) -> int:
    """Combine ``YYYY-MM-DD``/``MM/DD/YYYY``/``YYYYMMDD`` and ``HH:MM:SS[.mmm]``.

    All milliScope logs are written in UTC (the testbed's convention),
    so no timezone inference is attempted.
    """
    date = _parse_date(date_str)
    parts = time_str.split(".")
    try:
        clock = _dt.datetime.strptime(parts[0], "%H:%M:%S").time()
    except ValueError as exc:
        raise ParseError(f"bad time {time_str!r}: {exc}") from exc
    micros = 0
    if len(parts) == 2:
        fraction = parts[1]
        if not fraction.isdigit() or len(fraction) > 6:
            raise ParseError(f"bad fractional seconds in {time_str!r}")
        micros = int(fraction.ljust(6, "0"))
    elif len(parts) > 2:
        raise ParseError(f"bad time {time_str!r}")
    stamp = _dt.datetime.combine(date, clock, tzinfo=_UTC)
    return int(stamp.timestamp()) * 1_000_000 + micros


def _parse_date(date_str: str) -> _dt.date:
    for fmt in ("%Y-%m-%d", "%m/%d/%Y", "%Y%m%d", "%y%m%d"):
        try:
            return _dt.datetime.strptime(date_str, fmt).date()
        except ValueError:
            continue
    raise ParseError(f"unrecognized date {date_str!r}")


def clf_to_epoch_us(clf: str) -> int:
    """Parse an Apache common-log-format timestamp (second granularity)."""
    try:
        stamp = _dt.datetime.strptime(clf, "%d/%b/%Y:%H:%M:%S %z")
    except ValueError as exc:
        raise ParseError(f"bad CLF timestamp {clf!r}: {exc}") from exc
    return int(stamp.timestamp()) * 1_000_000


def compact_date_to_iso(date_str: str) -> str:
    """Normalize any accepted date spelling to ``YYYY-MM-DD``."""
    return _parse_date(date_str).isoformat()
