"""Rendering :class:`~repro.telemetry.aggregate.RunTelemetry`.

Three consumers, three formats:

* :func:`render_json` — the machine-readable export (also what
  ``mscope transform --stats-json`` writes per run);
* :func:`render_prometheus` — Prometheus exposition text, so a scrape
  of a long-lived transform host needs no translation layer;
* :func:`render_text` — the human table ``mscope stats`` prints.
"""

from __future__ import annotations

import json

from repro.telemetry.aggregate import RunTelemetry, stage_table

__all__ = ["render_json", "render_prometheus", "render_text"]

_PROM_PREFIX = "mscope_pipeline"


def render_json(telemetry: RunTelemetry) -> str:
    """The full telemetry as a JSON document."""
    return json.dumps(telemetry.to_json_dict(), indent=2, sort_keys=False) + "\n"


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def render_prometheus(telemetry: RunTelemetry) -> str:
    """Prometheus exposition-format text (one scrape's worth).

    Stage latencies export as summary-style quantile gauges plus the
    exact ``_sum``/``_count`` pair; worker utilization and queue depth
    export as gauges.
    """
    lines: list[str] = []

    def header(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    duration = f"{_PROM_PREFIX}_stage_duration_seconds"
    header(duration, "summary", "Per-stage latency over one pipeline run")
    for stage in telemetry.stages.values():
        label = f'stage="{_prom_escape(stage.stage)}"'
        histogram = stage.histogram
        for quantile in (0.5, 0.9, 0.99):
            lines.append(
                f'{duration}{{{label},quantile="{quantile}"}} '
                f"{histogram.percentile(quantile) / 1e6:.6f}"
            )
        lines.append(f"{duration}_sum{{{label}}} {histogram.total_us / 1e6:.6f}")
        lines.append(f"{duration}_count{{{label}}} {histogram.count}")

    for suffix, attribute, help_text in (
        ("stage_records_total", "records", "Records processed per stage"),
        ("stage_bytes_total", "bytes", "Bytes processed per stage"),
        ("stage_errors_total", "errors", "Ingest errors recorded per stage"),
    ):
        name = f"{_PROM_PREFIX}_{suffix}"
        header(name, "counter", help_text)
        for stage in telemetry.stages.values():
            value = getattr(stage, attribute)
            lines.append(
                f'{name}{{stage="{_prom_escape(stage.stage)}"}} {value}'
            )

    utilization = f"{_PROM_PREFIX}_worker_utilization"
    header(
        utilization, "gauge",
        "Busy share of the run wall time per fan-out worker",
    )
    for worker in telemetry.workers.values():
        lines.append(
            f'{utilization}{{worker="{_prom_escape(worker.worker)}"}} '
            f"{worker.utilization:.4f}"
        )

    depth = f"{_PROM_PREFIX}_drain_queue_depth"
    header(depth, "gauge", "Single-writer drain queue depth (last sample)")
    last_depth = telemetry.queue_depth[-1][1] if telemetry.queue_depth else 0
    lines.append(f"{depth} {last_depth}")

    wall = f"{_PROM_PREFIX}_run_wall_seconds"
    header(wall, "gauge", "Wall time of the pipeline run")
    lines.append(f"{wall} {telemetry.wall_us / 1e6:.6f}")
    return "\n".join(lines) + "\n"


def render_text(telemetry: RunTelemetry) -> str:
    """The ``mscope stats`` table: stages, percentiles, workers."""
    out: list[str] = []
    out.append(
        f"pipeline run: {telemetry.files} files, "
        f"{telemetry.total_records} records, "
        f"{telemetry.total_errors} errors, "
        f"wall {telemetry.wall_us / 1e6:.3f}s"
    )
    rows = stage_table(telemetry)
    if rows:
        out.append("")
        out.append(
            f"{'stage':<10} {'spans':>6} {'records':>9} {'errors':>7} "
            f"{'p50':>9} {'p90':>9} {'p99':>9} {'total':>10}"
        )
        for row in rows:
            out.append(
                f"{row['stage']:<10} {row['spans']:>6} {row['records']:>9} "
                f"{row['errors']:>7} "
                f"{_us(row['p50_us']):>9} {_us(row['p90_us']):>9} "
                f"{_us(row['p99_us']):>9} {_us(row['total_us']):>10}"
            )
    if telemetry.workers:
        out.append("")
        out.append(f"{'worker':<8} {'spans':>6} {'busy':>10} {'util':>7}")
        for worker in telemetry.workers.values():
            out.append(
                f"{worker.worker:<8} {worker.spans:>6} "
                f"{_us(worker.busy_us):>10} {worker.utilization:>6.1%}"
            )
    if telemetry.queue_depth:
        peak = max(depth for _, depth in telemetry.queue_depth)
        out.append("")
        out.append(
            f"drain queue: {len(telemetry.queue_depth)} samples, peak depth {peak}"
        )
    return "\n".join(out) + "\n"


def _us(value) -> str:
    """Compact human duration from microseconds."""
    value = int(value)
    if value >= 1_000_000:
        return f"{value / 1e6:.2f}s"
    if value >= 1_000:
        return f"{value / 1e3:.1f}ms"
    return f"{value}us"
