"""Aggregation of stage spans into per-run telemetry.

The span stream is raw material; investigations want distributions.
:class:`LatencyHistogram` buckets stage durations on a power-of-two
microsecond scale — merging two histograms is a bucket-wise integer
add, so per-worker partial histograms combine into the run total in
any order (commutative and associative; property-tested).

:class:`RunTelemetry` is the per-run rollup the tentpole asks for:
per-stage latency histograms with percentile estimates, per-worker
utilization of the process-pool fan-out, and the single-writer drain
queue's depth over time.  It can be built from a live
:class:`~repro.telemetry.spans.TelemetryCollector` or rebuilt from the
``pipeline_metrics`` / ``pipeline_workers`` tables of a warehouse a
previous run persisted into.
"""

from __future__ import annotations

import dataclasses
from pathlib import PurePath
from typing import Iterable, Mapping, Sequence

from repro.telemetry.spans import SpanData

__all__ = [
    "LatencyHistogram",
    "StageStats",
    "WorkerStats",
    "RunTelemetry",
    "span_tree",
]

#: Histogram buckets: ``[2**(i-1), 2**i)`` µs, i in [0, _BUCKETS);
#: bucket 0 is ``[0, 1)`` µs.  64 buckets cover any int64 duration.
_BUCKETS = 64


class LatencyHistogram:
    """A mergeable power-of-two latency histogram (microseconds)."""

    __slots__ = ("buckets", "count", "total_us", "min_us", "max_us")

    def __init__(self) -> None:
        self.buckets = [0] * _BUCKETS
        self.count = 0
        self.total_us = 0
        self.min_us: int | None = None
        self.max_us = 0

    @staticmethod
    def bucket_index(duration_us: int) -> int:
        """The bucket a duration falls into (``int.bit_length`` scale)."""
        return min(int(duration_us).bit_length(), _BUCKETS - 1)

    def observe(self, duration_us: int) -> None:
        """Record one duration (negative values are a caller bug)."""
        if duration_us < 0:
            raise ValueError(f"negative duration {duration_us}")
        self.buckets[self.bucket_index(duration_us)] += 1
        self.count += 1
        self.total_us += duration_us
        self.max_us = max(self.max_us, duration_us)
        self.min_us = (
            duration_us if self.min_us is None else min(self.min_us, duration_us)
        )

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Bucket-wise sum — order-independent, so per-worker partials
        combine into the run total under any fan-out interleaving."""
        merged = LatencyHistogram()
        merged.buckets = [a + b for a, b in zip(self.buckets, other.buckets)]
        merged.count = self.count + other.count
        merged.total_us = self.total_us + other.total_us
        merged.max_us = max(self.max_us, other.max_us)
        if self.min_us is None:
            merged.min_us = other.min_us
        elif other.min_us is None:
            merged.min_us = self.min_us
        else:
            merged.min_us = min(self.min_us, other.min_us)
        return merged

    def percentile(self, p: float) -> int:
        """Estimated p-quantile (µs): the upper bound of the bucket
        where the cumulative count crosses ``p``, clamped to the exact
        observed maximum."""
        if not 0 <= p <= 1:
            raise ValueError(f"percentile {p} outside [0, 1]")
        if self.count == 0:
            return 0
        threshold = p * self.count
        cumulative = 0
        for index, entries in enumerate(self.buckets):
            cumulative += entries
            if cumulative >= threshold:
                upper = 2**index - 1 if index else 0
                return min(upper, self.max_us)
        return self.max_us

    @property
    def mean_us(self) -> float:
        """Exact mean of the observed durations."""
        return self.total_us / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-ready summary (sparse buckets)."""
        return {
            "count": self.count,
            "total_us": self.total_us,
            "min_us": self.min_us or 0,
            "max_us": self.max_us,
            "mean_us": round(self.mean_us, 3),
            "p50_us": self.percentile(0.50),
            "p90_us": self.percentile(0.90),
            "p99_us": self.percentile(0.99),
            "buckets": {
                str(i): n for i, n in enumerate(self.buckets) if n
            },
        }


@dataclasses.dataclass(slots=True)
class StageStats:
    """One pipeline stage's rollup across every file it touched."""

    stage: str
    spans: int = 0
    records: int = 0
    bytes: int = 0
    errors: int = 0
    histogram: LatencyHistogram = dataclasses.field(
        default_factory=LatencyHistogram
    )

    def observe(
        self, duration_us: int, records: int, bytes_: int, errors: int
    ) -> None:
        self.spans += 1
        self.records += records
        self.bytes += bytes_
        self.errors += errors
        self.histogram.observe(duration_us)

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "spans": self.spans,
            "records": self.records,
            "bytes": self.bytes,
            "errors": self.errors,
            "latency": self.histogram.to_dict(),
        }


@dataclasses.dataclass(slots=True)
class WorkerStats:
    """One fan-out worker's share of the run.

    ``utilization`` is busy time over run wall time — how much of the
    run this ProcessPoolExecutor slot (or the single-writer parent,
    labelled ``main``) actually spent in pipeline stages.
    """

    worker: str
    spans: int = 0
    busy_us: int = 0
    utilization: float = 0.0

    def to_dict(self) -> dict:
        return {
            "worker": self.worker,
            "spans": self.spans,
            "busy_us": self.busy_us,
            "utilization": round(self.utilization, 4),
        }


class RunTelemetry:
    """The per-run aggregate over one pipeline run's spans."""

    def __init__(self) -> None:
        self.stages: dict[str, StageStats] = {}
        self.workers: dict[str, WorkerStats] = {}
        #: ``(t_us, depth)`` drain-queue samples (live runs only; not
        #: persisted — queue depth is a scheduling observable).
        self.queue_depth: list[tuple[int, int]] = []
        self.wall_us = 0

    # -- construction ------------------------------------------------

    @classmethod
    def from_spans(
        cls,
        spans: Sequence[SpanData],
        queue_depth: Iterable[tuple[int, int]] = (),
        wall_ns: int = 0,
    ) -> "RunTelemetry":
        """Aggregate a span stream (any order — totals are sums)."""
        telemetry = cls()
        telemetry.wall_us = wall_ns // 1_000
        for span in spans:
            duration_us = span.duration_ns // 1_000
            stage = telemetry.stages.get(span.stage)
            if stage is None:
                stage = telemetry.stages[span.stage] = StageStats(span.stage)
            stage.observe(duration_us, span.records, span.bytes, span.errors)
            if span.stage == "run":
                # The run-envelope span covers the whole wall; counting
                # it as busy time would pin "main" above 100%.
                continue
            worker = telemetry.workers.get(span.worker)
            if worker is None:
                worker = telemetry.workers[span.worker] = WorkerStats(span.worker)
            worker.spans += 1
            worker.busy_us += duration_us
        telemetry._normalize_workers()
        if telemetry.wall_us:
            for worker in telemetry.workers.values():
                worker.utilization = worker.busy_us / telemetry.wall_us
        telemetry.queue_depth = [
            (t_ns // 1_000, depth) for t_ns, depth in queue_depth
        ]
        return telemetry

    def _normalize_workers(self) -> None:
        """Relabel workers ``w0..wN`` by first appearance.

        Raw labels are process ids — meaningless across runs; the
        normalized labels make exports comparable.  ``main`` (the
        serial path and the single-writer import stage) keeps its name
        and sorts first.
        """
        normalized: dict[str, WorkerStats] = {}
        index = 0
        for label, stats in self.workers.items():
            if label == "main":
                stats.worker = "main"
                normalized["main"] = stats
            else:
                stats.worker = f"w{index}"
                normalized[f"w{index}"] = stats
                index += 1
        self.workers = normalized

    @classmethod
    def from_db(cls, db) -> "RunTelemetry | None":
        """Rebuild the persisted telemetry of a warehouse.

        Returns ``None`` when the warehouse holds no telemetry (the
        transform ran with the no-op sink).  Queue-depth samples are
        not persisted, so they come back empty.
        """
        if not db.has_pipeline_metrics():
            return None
        telemetry = cls()
        for stage_name, host, path, records, bytes_, errors, duration_us in (
            db.pipeline_metrics()
        ):
            stage = telemetry.stages.get(stage_name)
            if stage is None:
                stage = telemetry.stages[stage_name] = StageStats(stage_name)
            stage.observe(duration_us, records, bytes_, errors)
        for worker, spans, busy_us, utilization in db.pipeline_workers():
            telemetry.workers[worker] = WorkerStats(
                worker=worker,
                spans=spans,
                busy_us=busy_us,
                utilization=utilization,
            )
        run = telemetry.stages.get("run")
        if run is not None and run.histogram.count:
            telemetry.wall_us = run.histogram.total_us
        return telemetry

    # -- totals ------------------------------------------------------

    @property
    def total_records(self) -> int:
        """Records attributed to the parse stage (each record is also
        converted and imported; summing stages would triple-count)."""
        parse = self.stages.get("parse")
        return parse.records if parse else 0

    @property
    def total_errors(self) -> int:
        parse = self.stages.get("parse")
        return parse.errors if parse else 0

    @property
    def files(self) -> int:
        parse = self.stages.get("parse")
        return parse.spans if parse else 0

    def to_json_dict(self) -> dict:
        """The full JSON export (``mscope stats --format json``)."""
        return {
            "wall_us": self.wall_us,
            "files": self.files,
            "records": self.total_records,
            "errors": self.total_errors,
            "stages": [s.to_dict() for s in self.stages.values()],
            "workers": [w.to_dict() for w in self.workers.values()],
            "queue_depth": [
                {"t_us": t, "depth": depth} for t, depth in self.queue_depth
            ],
        }


def span_tree(spans: Sequence[SpanData]) -> dict:
    """The run's span tree — stage names, nesting, per-stage counts.

    Structure: a ``run`` root, its run-scoped children (``resolve``),
    then one node per ``(host, file)`` with that file's stage spans as
    children, in drain order.  Durations are deliberately excluded —
    this is the shape the golden-trace regression test pins down.
    """
    root: dict = {"stage": "run", "children": []}
    files: dict[tuple[str, str], dict] = {}
    for span in spans:
        node = {
            "stage": span.stage,
            "records": span.records,
            "errors": span.errors,
        }
        if span.stage == "run":
            root["records"] = span.records
            root["errors"] = span.errors
            continue
        if not span.source_path:
            root["children"].append(node)
            continue
        key = (span.hostname, span.source_path)
        file_node = files.get(key)
        if file_node is None:
            file_node = files[key] = {
                "stage": "file",
                "hostname": span.hostname,
                # Basename only: the tree must be machine-independent
                # (golden files are committed, log dirs are not).
                "source": PurePath(span.source_path).name,
                "children": [],
            }
            root["children"].append(file_node)
        file_node["children"].append(node)
    return root


def merge_histograms(
    histograms: Iterable[LatencyHistogram],
) -> LatencyHistogram:
    """Fold any number of histograms into one (order-independent)."""
    merged = LatencyHistogram()
    for histogram in histograms:
        merged = merged.merge(histogram)
    return merged


def stage_table(telemetry: RunTelemetry) -> list[Mapping[str, object]]:
    """Rows for the ``mscope stats`` text rendering."""
    rows: list[Mapping[str, object]] = []
    for stage in telemetry.stages.values():
        histogram = stage.histogram
        rows.append(
            {
                "stage": stage.stage,
                "spans": stage.spans,
                "records": stage.records,
                "errors": stage.errors,
                "p50_us": histogram.percentile(0.50),
                "p90_us": histogram.percentile(0.90),
                "p99_us": histogram.percentile(0.99),
                "total_us": histogram.total_us,
            }
        )
    return rows
