"""Stage spans — the pipeline's own instrumentation primitive.

The paper's thesis applied to our hot path: aggregate, end-of-run
numbers hide where a slow transform actually spent its time, so every
pipeline stage (resolve → parse → convert → import, plus
:class:`~repro.transformer.live.LiveTransformer` refresh cycles) opens
a structured span carrying host, file, stage, records/bytes processed,
error count, and monotonic wall time.

Two objects split the work across the process boundary:

* :class:`SpanProbe` — the picklable *measurement* side.  Workers in
  the parse → convert fan-out carry a probe into their process, append
  finished :class:`SpanData` to a local list, and ship the list back
  in the task result.  A disabled probe (:data:`NULL_PROBE`) returns a
  shared no-op span and never touches the clock — the near-zero
  overhead path that is the default everywhere.
* :class:`TelemetryCollector` — the parent-side *aggregation* sink.
  The single-writer drain loop ingests every file's spans in the same
  deterministic ``(host, file)`` order it imports tables, so persisted
  telemetry inherits the pipeline's determinism guarantee.

Clocks are injectable (any ``() -> int`` nanosecond source).  Wall
time is inherently nondeterministic, so the equivalence tests inject
:func:`zero_clock` — module-level, hence picklable into pool workers —
to pin every duration to zero and compare warehouses byte-for-byte.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable

__all__ = [
    "MAIN_WORKER",
    "SpanData",
    "SpanProbe",
    "TelemetryCollector",
    "NULL_PROBE",
    "NULL_TELEMETRY",
    "zero_clock",
]

#: Worker label for spans measured in the parent process.
MAIN_WORKER = "main"


def zero_clock() -> int:
    """A frozen clock: every duration becomes zero.

    The deterministic seam used by the parallel/serial equivalence
    tests — module-level so it pickles into pool workers by reference.
    """
    return 0


@dataclasses.dataclass(frozen=True, slots=True)
class SpanData:
    """One finished stage span.

    ``parent`` names the enclosing span's stage (``""`` for roots);
    nesting below a file-scoped span is keyed by ``(hostname,
    source_path)``.  Durations are clamped non-negative at measurement
    time, so downstream aggregation can rely on it.
    """

    stage: str
    hostname: str = ""
    source_path: str = ""
    parent: str = ""
    start_ns: int = 0
    duration_ns: int = 0
    records: int = 0
    bytes: int = 0
    errors: int = 0
    worker: str = MAIN_WORKER


class _ActiveSpan:
    """A span being measured; context-manage it around the stage."""

    __slots__ = (
        "_probe", "_out", "stage", "hostname", "source_path", "parent",
        "_start", "records", "bytes", "errors",
    )

    def __init__(
        self,
        probe: "SpanProbe",
        out: list[SpanData],
        stage: str,
        hostname: str,
        source_path: str,
        parent: str,
    ) -> None:
        self._probe = probe
        self._out = out
        self.stage = stage
        self.hostname = hostname
        self.source_path = source_path
        self.parent = parent
        self._start = 0
        self.records = 0
        self.bytes = 0
        self.errors = 0

    def add(self, records: int = 0, bytes: int = 0, errors: int = 0) -> None:
        """Accumulate work attribution onto the span."""
        self.records += records
        self.bytes += bytes
        self.errors += errors

    def __enter__(self) -> "_ActiveSpan":
        self._start = self._probe.clock()
        return self

    def __exit__(self, *exc_info) -> None:
        end = self._probe.clock()
        self._out.append(
            SpanData(
                stage=self.stage,
                hostname=self.hostname,
                source_path=self.source_path,
                parent=self.parent,
                start_ns=self._start,
                # Clamp: a misbehaving injected clock must never
                # produce a negative duration (property-tested).
                duration_ns=max(0, end - self._start),
                records=self.records,
                bytes=self.bytes,
                errors=self.errors,
                worker=self._probe.worker,
            )
        )


class _NullSpan:
    """Shared do-nothing span: the disabled-probe fast path."""

    __slots__ = ()

    def add(self, records: int = 0, bytes: int = 0, errors: int = 0) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


@dataclasses.dataclass(slots=True)
class SpanProbe:
    """The picklable measurement half of the telemetry layer.

    ``enabled=False`` (the :data:`NULL_PROBE` default) makes
    :meth:`span` return a shared no-op span without calling the clock,
    so instrumented code pays a single attribute check when telemetry
    is off.
    """

    enabled: bool = True
    clock: Callable[[], int] = time.perf_counter_ns
    worker: str = MAIN_WORKER

    def span(
        self,
        out: list[SpanData],
        stage: str,
        hostname: str = "",
        source_path: str = "",
        parent: str = "",
    ):
        """A context manager measuring one stage into ``out``."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, out, stage, hostname, source_path, parent)

    def relabel(self, worker: str) -> "SpanProbe":
        """A copy of this probe tagged with a worker identity."""
        return SpanProbe(enabled=self.enabled, clock=self.clock, worker=worker)


#: The default, disabled probe — instrumentation points share it.
NULL_PROBE = SpanProbe(enabled=False)


class TelemetryCollector:
    """Parent-side sink accumulating one run's spans and gauges.

    The pipeline ingests spans in single-writer drain order, records
    drain-queue depth samples as the parallel fan-out completes, and
    asks for the aggregate :class:`~repro.telemetry.aggregate.RunTelemetry`
    (or persists it into the warehouse) when the run finishes.
    """

    enabled = True

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns) -> None:
        self.clock = clock
        self.spans: list[SpanData] = []
        #: ``(t_ns, depth)`` samples of completed-but-undrained futures.
        self.queue_depth: list[tuple[int, int]] = []
        self._run_start: int | None = None
        self._wall_ns = 0

    # -- measurement -------------------------------------------------

    def probe(self, worker: str = MAIN_WORKER) -> SpanProbe:
        """A probe measuring with this collector's clock."""
        return SpanProbe(enabled=True, clock=self.clock, worker=worker)

    def start_run(self) -> None:
        """Mark the start of a pipeline run (for wall time/utilization)."""
        self._run_start = self.clock()

    def finish_run(self) -> int:
        """Mark the end of the run started by :meth:`start_run`.

        Returns this run's wall time in nanoseconds (0 when no run was
        started); wall time accumulates across runs for utilization.
        """
        if self._run_start is None:
            return 0
        delta = max(0, self.clock() - self._run_start)
        self._wall_ns += delta
        self._run_start = None
        return delta

    def ingest(self, spans: list[SpanData] | tuple[SpanData, ...]) -> None:
        """Append finished spans (call in deterministic drain order)."""
        self.spans.extend(spans)

    def record_queue_depth(self, depth: int) -> None:
        """Sample the single-writer drain queue's depth."""
        self.queue_depth.append((self.clock(), depth))

    # -- results -----------------------------------------------------

    @property
    def wall_ns(self) -> int:
        """Accumulated run wall time (0 until a run finishes)."""
        return self._wall_ns

    def run_telemetry(self):
        """Aggregate everything collected so far into a RunTelemetry."""
        from repro.telemetry.aggregate import RunTelemetry

        return RunTelemetry.from_spans(
            self.spans, queue_depth=self.queue_depth, wall_ns=self._wall_ns
        )

    def persist(self, db) -> None:
        """Write this run's telemetry into the warehouse.

        Span rows land in ``pipeline_metrics`` in ingest (= drain)
        order, so their content and ordering are identical between
        serial and parallel runs; per-worker rollups land in
        ``pipeline_workers`` (worker *assignment* is scheduler-driven,
        so that table is run-specific by nature).  Re-persisting
        replaces the previous run's telemetry.
        """
        from repro.telemetry.aggregate import RunTelemetry

        db.replace_pipeline_metrics(
            (
                span.stage,
                span.hostname,
                span.source_path,
                span.records,
                span.bytes,
                span.errors,
                span.duration_ns // 1_000,
            )
            for span in self.spans
        )
        telemetry = RunTelemetry.from_spans(
            self.spans, queue_depth=self.queue_depth, wall_ns=self._wall_ns
        )
        db.replace_pipeline_workers(
            (w.worker, w.spans, w.busy_us, w.utilization)
            for w in telemetry.workers.values()
        )

    def persist_stages(self, db, prefix: str = "analysis.") -> None:
        """Append this run's ``prefix``-stage spans to ``pipeline_metrics``.

        Unlike :meth:`persist`, rows already in the table are left
        alone except those under the same prefix — so analysis-stage
        latency lands *next to* the ingest stages and ``mscope stats``
        renders them as one run history.  Re-running analysis replaces
        only the previous analysis rows (idempotent).
        """
        db.append_pipeline_metrics(
            (
                (
                    span.stage,
                    span.hostname,
                    span.source_path,
                    span.records,
                    span.bytes,
                    span.errors,
                    span.duration_ns // 1_000,
                )
                for span in self.spans
                if span.stage.startswith(prefix)
            ),
            replace_prefix=prefix,
        )


class _NullTelemetry(TelemetryCollector):
    """The disabled collector: every hook is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=zero_clock)

    def probe(self, worker: str = MAIN_WORKER) -> SpanProbe:
        return NULL_PROBE

    def start_run(self) -> None:
        pass

    def finish_run(self) -> int:
        return 0

    def ingest(self, spans) -> None:
        pass

    def record_queue_depth(self, depth: int) -> None:
        pass

    def persist(self, db) -> None:
        pass

    def persist_stages(self, db, prefix: str = "analysis.") -> None:
        pass


#: The default sink: collection hooks stay wired, nothing is measured.
NULL_TELEMETRY = _NullTelemetry()
