"""Pipeline self-observability: spans, run telemetry, exports.

The transformer's own monitoring layer — the paper's medicine applied
to our hot path.  See :mod:`repro.telemetry.spans` for the measurement
primitives, :mod:`repro.telemetry.aggregate` for the per-run rollup,
and :mod:`repro.telemetry.export` for the JSON / Prometheus / text
renderings.
"""

from repro.telemetry.aggregate import (
    LatencyHistogram,
    RunTelemetry,
    StageStats,
    WorkerStats,
    merge_histograms,
    span_tree,
)
from repro.telemetry.export import render_json, render_prometheus, render_text
from repro.telemetry.spans import (
    MAIN_WORKER,
    NULL_PROBE,
    NULL_TELEMETRY,
    SpanData,
    SpanProbe,
    TelemetryCollector,
    zero_clock,
)

__all__ = [
    "LatencyHistogram",
    "RunTelemetry",
    "StageStats",
    "WorkerStats",
    "merge_histograms",
    "span_tree",
    "render_json",
    "render_prometheus",
    "render_text",
    "MAIN_WORKER",
    "NULL_PROBE",
    "NULL_TELEMETRY",
    "SpanData",
    "SpanProbe",
    "TelemetryCollector",
    "zero_clock",
]
