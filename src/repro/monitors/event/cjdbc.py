"""The C-JDBC event mScopeMonitor (one log4j line per routed statement)."""

from __future__ import annotations

from repro.logfmt.cjdbc import format_mscope_cjdbc
from repro.monitors.event.base import EventMonitor

__all__ = ["CjdbcMScopeMonitor"]


class CjdbcMScopeMonitor(EventMonitor):
    """Event monitor for the middleware tier (~1% CPU in the paper)."""

    tier = "cjdbc"
    monitor_name = "cjdbc_mscope"

    def __init__(
        self, per_event_cpu_us: int = 5, per_event_wait_us: int = 50
    ) -> None:
        super().__init__(per_event_cpu_us, per_event_wait_us)

    def format_line(self, server, request, boundary, payload):
        return format_mscope_cjdbc(server.wall_clock, boundary, payload.statement)
