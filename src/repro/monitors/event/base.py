"""Base class for event mScopeMonitors.

An event monitor instruments one tier server (Section IV): it swaps
the server's native log formatter for the mScope format (request ID +
four boundary timestamps) and attaches hooks whose inline CPU cost
models the instrumentation overhead.  Attaching and detaching are
symmetric, so overhead experiments can run the same system with
monitors on or off.
"""

from __future__ import annotations

from repro.common.errors import MonitorError
from repro.common.records import BoundaryRecord
from repro.common.timebase import Micros
from repro.ntier.hooks import TierHook
from repro.ntier.request import Request
from repro.ntier.server import TierServer

__all__ = ["EventMonitor"]


class EventMonitor(TierHook):
    """Instrumentation for one tier server.

    Parameters
    ----------
    per_event_cpu_us:
        CPU consumed inline at each of the four hook points — the cost
        of reading the clock, formatting, and handing the line to the
        logging facility.  This is what Figure 10's 1–3% comes from.
    per_event_wait_us:
        Non-CPU inline latency per hook point: log-buffer lock
        contention and write-path synchronization.  It burns no CPU
        but lengthens the request path — the source of Figure 11's
        ~+2 ms response-time cost.

    Subclasses set :attr:`tier` and implement :meth:`format_line`.
    """

    #: The tier this monitor instruments (e.g. ``"apache"``).
    tier: str = ""
    #: Monitor name recorded in warehouse metadata.
    monitor_name: str = "event_mscope"

    def __init__(
        self,
        per_event_cpu_us: Micros = 10,
        per_event_wait_us: Micros = 60,
    ) -> None:
        if per_event_cpu_us < 0 or per_event_wait_us < 0:
            raise MonitorError("per-event costs must be non-negative")
        self.per_event_cpu_us = per_event_cpu_us
        self.per_event_wait_us = per_event_wait_us
        self.server: TierServer | None = None

    # ------------------------------------------------------------------
    # lifecycle

    def attach(self, server: TierServer) -> None:
        """Instrument ``server``: swap the log format, hook the events."""
        if self.server is not None:
            raise MonitorError(f"{self.monitor_name} is already attached")
        if self.tier and server.tier != self.tier:
            raise MonitorError(
                f"{self.monitor_name} instruments {self.tier!r}, "
                f"got server {server.tier!r}"
            )
        self.server = server
        server.hooks.attach(self)
        server.set_line_formatter(self._formatter)

    def detach(self) -> None:
        """Remove the instrumentation and restore the stock log format."""
        if self.server is None:
            raise MonitorError(f"{self.monitor_name} is not attached")
        self.server.hooks.detach(self)
        self.server.reset_line_formatter()
        self.server = None

    # ------------------------------------------------------------------
    # instrumentation cost

    def _instrumentation_cost(self, server: TierServer):
        if self.per_event_cpu_us > 0:
            yield from server.node.cpu.consume(
                self.per_event_cpu_us, category="system"
            )
        if self.per_event_wait_us > 0:
            yield server.node.engine.timeout(self.per_event_wait_us)

    def on_upstream_arrival(self, server, request, boundary):
        yield from self._instrumentation_cost(server)

    def on_downstream_sending(self, server, request, target):
        yield from self._instrumentation_cost(server)

    def on_downstream_receiving(self, server, request, target):
        yield from self._instrumentation_cost(server)

    def on_upstream_departure(self, server, request, boundary):
        yield from self._instrumentation_cost(server)

    # ------------------------------------------------------------------
    # log formatting

    def _formatter(
        self, server: TierServer, request: Request, boundary: BoundaryRecord, payload
    ) -> str | None:
        return self.format_line(server, request, boundary, payload)

    def format_line(
        self, server: TierServer, request: Request, boundary: BoundaryRecord, payload
    ) -> str | None:
        """Render the instrumented (mScope) native log line."""
        raise NotImplementedError
