"""Event mScopeMonitors: per-tier request-boundary instrumentation."""

from repro.monitors.event.apache import ApacheMScopeMonitor
from repro.monitors.event.base import EventMonitor
from repro.monitors.event.cjdbc import CjdbcMScopeMonitor
from repro.monitors.event.mysql import MySqlMScopeMonitor
from repro.monitors.event.suite import EventMonitorSuite
from repro.monitors.event.tomcat import TomcatMScopeMonitor

__all__ = [
    "ApacheMScopeMonitor",
    "CjdbcMScopeMonitor",
    "EventMonitor",
    "EventMonitorSuite",
    "MySqlMScopeMonitor",
    "TomcatMScopeMonitor",
]
