"""Convenience wiring of event monitors across every tier server."""

from __future__ import annotations

from repro.common.errors import MonitorError
from repro.monitors.event.apache import ApacheMScopeMonitor
from repro.monitors.event.base import EventMonitor
from repro.monitors.event.cjdbc import CjdbcMScopeMonitor
from repro.monitors.event.mysql import MySqlMScopeMonitor
from repro.monitors.event.tomcat import TomcatMScopeMonitor
from repro.ntier.system import NTierSystem

__all__ = ["EventMonitorSuite"]

_MONITOR_CLASSES = {
    "apache": ApacheMScopeMonitor,
    "tomcat": TomcatMScopeMonitor,
    "cjdbc": CjdbcMScopeMonitor,
    "mysql": MySqlMScopeMonitor,
}


class EventMonitorSuite:
    """One event mScopeMonitor per tier server (replicas included)."""

    def __init__(self) -> None:
        self.monitors: dict[str, EventMonitor] = {}
        self._attached = False

    def attach(self, system: NTierSystem) -> None:
        """Instrument every server of ``system``."""
        if self._attached:
            raise MonitorError("event monitor suite already attached")
        for address, server in system.servers.items():
            monitor_cls = _MONITOR_CLASSES.get(server.tier)
            if monitor_cls is None:
                raise MonitorError(f"no event monitor for tier {server.tier!r}")
            monitor = monitor_cls()
            monitor.attach(server)
            self.monitors[address] = monitor
        self._attached = True

    def detach(self) -> None:
        """Remove the instrumentation from every server."""
        if not self._attached:
            raise MonitorError("event monitor suite is not attached")
        for monitor in self.monitors.values():
            monitor.detach()
        self.monitors.clear()
        self._attached = False

    @property
    def attached(self) -> bool:
        """Whether the suite is currently instrumenting a system."""
        return self._attached

    def monitor_for(self, address: str) -> EventMonitor:
        """The monitor instrumenting one server address."""
        try:
            return self.monitors[address]
        except KeyError:
            raise MonitorError(f"no monitor attached at {address!r}") from None
