"""The MySQL event mScopeMonitor.

Logs every statement (with the propagated ``/*ID=...*/`` comment and
its boundary pair) in a general-query-log-like format — the last link
of the causal chain the paper's Figure 5 reconstructs.
"""

from __future__ import annotations

from repro.logfmt.mysql import format_mscope_query
from repro.monitors.event.base import EventMonitor

__all__ = ["MySqlMScopeMonitor"]


class MySqlMScopeMonitor(EventMonitor):
    """Event monitor for the database tier."""

    tier = "mysql"
    monitor_name = "mysql_mscope"

    def __init__(
        self, per_event_cpu_us: int = 10, per_event_wait_us: int = 60
    ) -> None:
        super().__init__(per_event_cpu_us, per_event_wait_us)

    def format_line(self, server, request, boundary, payload):
        return format_mscope_query(server.wall_clock, boundary, payload.statement)
