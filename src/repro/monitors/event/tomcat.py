"""The Tomcat event mScopeMonitor.

The paper reports ~3% CPU for this monitor — higher than the others —
because an *additional thread* records the variable-width timestamps of
the dynamic communication with downstream servers (Section VI-B).  The
extra cost is modelled as a higher inline charge on the downstream hook
pair.
"""

from __future__ import annotations

from repro.common.timebase import Micros
from repro.logfmt.tomcat import format_mscope_tomcat
from repro.monitors.event.base import EventMonitor

__all__ = ["TomcatMScopeMonitor"]


class TomcatMScopeMonitor(EventMonitor):
    """Event monitor for the application tier (~3% CPU in the paper)."""

    tier = "tomcat"
    monitor_name = "tomcat_mscope"

    def __init__(
        self,
        per_event_cpu_us: Micros = 12,
        per_event_wait_us: Micros = 120,
        downstream_thread_cpu_us: Micros = 15,
    ) -> None:
        super().__init__(per_event_cpu_us, per_event_wait_us)
        self.downstream_thread_cpu_us = downstream_thread_cpu_us

    def _downstream_cost(self, server):
        total = self.per_event_cpu_us + self.downstream_thread_cpu_us
        if total > 0:
            yield from server.node.cpu.consume(total, category="system")
        if self.per_event_wait_us > 0:
            yield server.node.engine.timeout(self.per_event_wait_us)

    def on_downstream_sending(self, server, request, target):
        yield from self._downstream_cost(server)

    def on_downstream_receiving(self, server, request, target):
        yield from self._downstream_cost(server)

    def format_line(self, server, request, boundary, payload):
        return format_mscope_tomcat(
            server.wall_clock, request.interaction.name, boundary
        )
