"""The Apache event mScopeMonitor.

Reproduces the paper's Appendix A: a unique fixed-width request ID is
inserted into the URL (``?ID=...``), and the modified
``mod_log_config`` appends the four boundary timestamps — the upstream
pair Apache records natively, plus the ModJK connector pair captured by
the ``request_rec`` extension.
"""

from __future__ import annotations

from repro.logfmt.apache import format_mscope_access
from repro.monitors.event.base import EventMonitor

__all__ = ["ApacheMScopeMonitor"]


class ApacheMScopeMonitor(EventMonitor):
    """Event monitor for the web tier (~1% CPU overhead in the paper)."""

    tier = "apache"
    monitor_name = "apache_mscope"

    def __init__(
        self, per_event_cpu_us: int = 8, per_event_wait_us: int = 80
    ) -> None:
        super().__init__(per_event_cpu_us, per_event_wait_us)

    def format_line(self, server, request, boundary, payload):
        return format_mscope_access(
            server.wall_clock,
            request.url,
            boundary,
            request.interaction.response_bytes,
        )
