"""The SAR resource mScopeMonitor (CPU utilization).

Supports both output paths from the paper's Figure 3: the legacy text
report (handled downstream by the customized SAR mScopeParser) and the
XML output of the upgraded SAR (which feeds the XML-to-CSV converter
directly).
"""

from __future__ import annotations

from repro.common.errors import MonitorError
from repro.common.records import ResourceSample
from repro.common.timebase import Micros, WallClock, ms
from repro.logfmt.sar import (
    SarCpuRow,
    format_sar_text_average,
    format_sar_text_row,
    format_sar_xml_row,
    sar_text_banner,
    sar_text_header,
    sar_xml_close,
    sar_xml_open,
)
from repro.monitors.resource.base import ResourceMonitor, cpu_window_metrics
from repro.ntier.node import Node

__all__ = ["SarMonitor", "SAR_TEXT_MODE", "SAR_XML_MODE"]

SAR_TEXT_MODE = "text"
SAR_XML_MODE = "xml"

#: Text mode repeats the column header every this many rows.
_HEADER_REPEAT = 20


class SarMonitor(ResourceMonitor):
    """CPU monitor in SAR's text or XML format."""

    monitor_name = "sar"

    def __init__(
        self,
        node: Node,
        wall_clock: WallClock,
        interval_us: Micros = ms(50),
        mode: str = SAR_TEXT_MODE,
        cpu_us_per_sample: Micros = 50,
    ) -> None:
        if mode not in (SAR_TEXT_MODE, SAR_XML_MODE):
            raise MonitorError(f"unknown SAR mode {mode!r}")
        super().__init__(node, wall_clock, interval_us, cpu_us_per_sample)
        self.mode = mode
        self.log_stream = "sar_xml" if mode == SAR_XML_MODE else "sar"
        self._rows: list[SarCpuRow] = []
        self._since_header = 0

    def preamble(self) -> list[str]:
        if self.mode == SAR_XML_MODE:
            return sar_xml_open(
                self.wall_clock, self.node.name, self.node.spec.cores
            ).split("\n")
        return [
            sar_text_banner(self.wall_clock, self.node.name, self.node.spec.cores),
            "",
        ]

    def postamble(self) -> list[str]:
        if self.mode == SAR_XML_MODE:
            return sar_xml_close().split("\n")
        return ["", format_sar_text_average(self._rows)]

    def collect(self, start: Micros, stop: Micros) -> dict[str, float]:
        return cpu_window_metrics(self.node, start, stop)

    def render(self, sample: ResourceSample) -> list[str]:
        row = SarCpuRow(
            timestamp=sample.timestamp,
            user=sample.metrics["cpu_user_pct"],
            system=sample.metrics["cpu_system_pct"],
            iowait=sample.metrics["cpu_iowait_pct"],
            steal=sample.metrics.get("cpu_steal_pct", 0.0),
        )
        self._rows.append(row)
        if self.mode == SAR_XML_MODE:
            return [format_sar_xml_row(self.wall_clock, row)]
        lines: list[str] = []
        if self._since_header % _HEADER_REPEAT == 0:
            lines.append(sar_text_header(self.wall_clock, sample.timestamp))
        self._since_header += 1
        lines.append(format_sar_text_row(self.wall_clock, row))
        return lines
