"""The IOstat resource mScopeMonitor (disk activity)."""

from __future__ import annotations

from repro.common.records import ResourceSample
from repro.common.timebase import Micros, WallClock, ms
from repro.logfmt.iostat import IostatDeviceRow, format_iostat_block
from repro.monitors.resource.base import ResourceMonitor, disk_window_metrics
from repro.ntier.node import Node

__all__ = ["IostatMonitor"]


class IostatMonitor(ResourceMonitor):
    """Disk monitor in ``iostat -dxt`` block format."""

    monitor_name = "iostat"
    log_stream = "iostat"

    def __init__(
        self,
        node: Node,
        wall_clock: WallClock,
        interval_us: Micros = ms(50),
        device: str = "sda",
        cpu_us_per_sample: Micros = 50,
    ) -> None:
        super().__init__(node, wall_clock, interval_us, cpu_us_per_sample)
        self.device = device

    def collect(self, start: Micros, stop: Micros) -> dict[str, float]:
        return disk_window_metrics(self.node, start, stop)

    def render(self, sample: ResourceSample) -> list[str]:
        row = IostatDeviceRow(
            device=self.device,
            reads_per_sec=sample.metrics["disk_reads_per_sec"],
            writes_per_sec=sample.metrics["disk_writes_per_sec"],
            read_kb_per_sec=sample.metrics["disk_read_kb_per_sec"],
            write_kb_per_sec=sample.metrics["disk_write_kb_per_sec"],
            avg_queue=sample.metrics["disk_avg_queue"],
            util_pct=sample.metrics["disk_util_pct"],
        )
        return format_iostat_block(self.wall_clock, sample.timestamp, [row])
