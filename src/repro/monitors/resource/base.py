"""Base class for resource mScopeMonitors.

A resource monitor samples one node's hardware counters on a fixed
interval — tens of milliseconds, the granularity the paper argues VSB
diagnosis requires — and renders each sample in its tool's native log
format through the node's logging facility (so monitoring overhead is
part of the model, not outside it).
"""

from __future__ import annotations

from repro.common.errors import MonitorError
from repro.common.records import ResourceSample
from repro.common.timebase import Micros, US_PER_SEC, WallClock, ms
from repro.ntier.node import Node

__all__ = ["ResourceMonitor", "cpu_window_metrics", "disk_window_metrics"]


def cpu_window_metrics(node: Node, start: Micros, stop: Micros) -> dict[str, float]:
    """CPU percentages over a window, as SAR would report them.

    Quantum charges land at quantum *end* instants, so a window edge
    can catch slightly more than a window's worth of charge; the
    percentages are clamped the way /proc-based tools clamp theirs.
    """
    user = min(100.0, node.cpu.category_pct("user", start, stop))
    system = min(100.0 - user, node.cpu.category_pct("system", start, stop))
    steal = min(
        100.0 - user - system, node.cpu.category_pct("steal", start, stop)
    )
    iowait = min(
        100.0 - user - system - steal,
        node.cpu.category_pct("iowait", start, stop),
    )
    return {
        "cpu_user_pct": user,
        "cpu_system_pct": system,
        "cpu_iowait_pct": iowait,
        "cpu_steal_pct": steal,
        "cpu_idle_pct": max(0.0, 100.0 - user - system - iowait - steal),
    }


def disk_window_metrics(node: Node, start: Micros, stop: Micros) -> dict[str, float]:
    """Disk rates and utilization over a window, as IOstat would report."""
    span_sec = (stop - start) / US_PER_SEC
    disk = node.disk
    return {
        "disk_reads_per_sec": disk.read_ops.between(start, stop) / span_sec,
        "disk_writes_per_sec": disk.write_ops.between(start, stop) / span_sec,
        "disk_read_kb_per_sec": disk.read_bytes.between(start, stop) / 1024 / span_sec,
        "disk_write_kb_per_sec": disk.write_bytes.between(start, stop) / 1024 / span_sec,
        "disk_avg_queue": disk.queue_series.mean(start, stop),
        "disk_util_pct": 100.0 * disk.utilization(start, stop),
    }


class ResourceMonitor:
    """Samples one node at a fixed interval and logs native-format rows.

    Parameters
    ----------
    node:
        The node to observe.
    wall_clock:
        Wall-clock mapping for rendered timestamps.
    interval_us:
        Sampling interval (default 50 ms — fine-grained monitoring).
    cpu_us_per_sample:
        CPU consumed by the sampling process itself.
    """

    #: Monitor name recorded in metadata and warehouse tables.
    monitor_name: str = "resource_monitor"
    #: Node log stream the monitor writes to.
    log_stream: str = "resource_log"

    def __init__(
        self,
        node: Node,
        wall_clock: WallClock,
        interval_us: Micros = ms(50),
        cpu_us_per_sample: Micros = 50,
    ) -> None:
        if interval_us <= 0:
            raise MonitorError(f"sampling interval must be positive: {interval_us}")
        self.node = node
        self.wall_clock = wall_clock
        self.interval_us = interval_us
        self.cpu_us_per_sample = cpu_us_per_sample
        self.samples: list[ResourceSample] = []
        self._started = False
        self._finalized = False

    @property
    def facility(self):
        """The node log facility this monitor writes through."""
        return self.node.facility(self.log_stream)

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._started:
            return
        self._started = True
        for line in self.preamble():
            self.facility.write_line(line)
        self.node.engine.process(self._sampling_loop())

    def _sampling_loop(self):
        engine = self.node.engine
        last = engine.now
        next_tick = engine.now + self.interval_us
        while True:
            # Absolute schedule: the monitor's own CPU cost must not
            # drift the sampling grid.
            delay = next_tick - engine.now
            if delay > 0:
                yield engine.timeout(delay)
            next_tick += self.interval_us
            # If the monitor was starved past one or more gridpoints
            # (CPU saturation starves the sampler too), emit a single
            # late sample covering the gap and realign — never a
            # catch-up burst of near-zero windows.
            while next_tick <= engine.now:
                next_tick += self.interval_us
            window_start, window_stop = last, engine.now
            last = window_stop
            if window_stop == window_start:
                continue
            metrics = self.collect(window_start, window_stop)
            sample = ResourceSample(
                node=self.node.name,
                monitor=self.monitor_name,
                timestamp=window_stop,
                interval=window_stop - window_start,
                metrics=metrics,
            )
            self.samples.append(sample)
            for line in self.render(sample):
                self.facility.write_line(line)
            if self.cpu_us_per_sample > 0:
                yield from self.node.cpu.consume(
                    self.cpu_us_per_sample, category="system"
                )

    def finalize(self) -> None:
        """Write any trailer lines (idempotent; call after the run)."""
        if self._finalized or not self._started:
            return
        self._finalized = True
        for line in self.postamble():
            self.facility.write_line(line)

    # ------------------------------------------------------------------
    # subclass interface

    def preamble(self) -> list[str]:
        """Lines written once before sampling begins."""
        return []

    def postamble(self) -> list[str]:
        """Lines written once after the run ends."""
        return []

    def collect(self, start: Micros, stop: Micros) -> dict[str, float]:
        """Gather the window's metrics."""
        raise NotImplementedError

    def render(self, sample: ResourceSample) -> list[str]:
        """Render one sample as native log lines."""
        raise NotImplementedError
