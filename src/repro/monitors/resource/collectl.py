"""The Collectl resource mScopeMonitor (CPU + disk + memory).

Collectl is the monitor both illustrative scenarios lean on: disk
utilization for scenario A (Fig 4) and the memory subsystem's
dirty-page count for scenario B (Fig 8d).  It logs either CSV
(``collectl -P``) or plain text.
"""

from __future__ import annotations

from repro.common.errors import MonitorError
from repro.common.records import ResourceSample
from repro.common.timebase import Micros, WallClock, ms
from repro.logfmt.collectl import (
    CollectlSample,
    collectl_csv_header,
    collectl_text_header,
    format_collectl_csv_row,
    format_collectl_text_row,
)
from repro.monitors.resource.base import (
    ResourceMonitor,
    cpu_window_metrics,
    disk_window_metrics,
)
from repro.ntier.node import Node

__all__ = ["CollectlMonitor", "COLLECTL_CSV_MODE", "COLLECTL_TEXT_MODE"]

COLLECTL_CSV_MODE = "csv"
COLLECTL_TEXT_MODE = "text"


class CollectlMonitor(ResourceMonitor):
    """Multi-subsystem monitor in Collectl's CSV or text format."""

    monitor_name = "collectl"

    def __init__(
        self,
        node: Node,
        wall_clock: WallClock,
        interval_us: Micros = ms(50),
        mode: str = COLLECTL_CSV_MODE,
        cpu_us_per_sample: Micros = 80,
    ) -> None:
        if mode not in (COLLECTL_CSV_MODE, COLLECTL_TEXT_MODE):
            raise MonitorError(f"unknown Collectl mode {mode!r}")
        super().__init__(node, wall_clock, interval_us, cpu_us_per_sample)
        self.mode = mode
        self.log_stream = (
            "collectl_csv" if mode == COLLECTL_CSV_MODE else "collectl"
        )

    def preamble(self) -> list[str]:
        if self.mode == COLLECTL_CSV_MODE:
            return [collectl_csv_header()]
        return [collectl_text_header()]

    def collect(self, start: Micros, stop: Micros) -> dict[str, float]:
        metrics = cpu_window_metrics(self.node, start, stop)
        metrics.update(disk_window_metrics(self.node, start, stop))
        metrics["mem_dirty_kb"] = self.node.page_cache.dirty_series.value_at(stop) / 1024
        return metrics

    def render(self, sample: ResourceSample) -> list[str]:
        span_sec = sample.interval / 1_000_000
        rendered = CollectlSample(
            timestamp=sample.timestamp,
            cpu_user=sample.metrics["cpu_user_pct"],
            cpu_sys=sample.metrics["cpu_system_pct"],
            cpu_wait=sample.metrics["cpu_iowait_pct"],
            disk_read_kb=sample.metrics["disk_read_kb_per_sec"] * span_sec,
            disk_write_kb=sample.metrics["disk_write_kb_per_sec"] * span_sec,
            disk_util=sample.metrics["disk_util_pct"],
            mem_dirty_kb=sample.metrics["mem_dirty_kb"],
        )
        if self.mode == COLLECTL_CSV_MODE:
            return [format_collectl_csv_row(self.wall_clock, rendered)]
        return [format_collectl_text_row(self.wall_clock, rendered)]
