"""Convenience wiring of resource monitors across a system's nodes."""

from __future__ import annotations

from repro.common.timebase import Micros, ms
from repro.monitors.resource.base import ResourceMonitor
from repro.monitors.resource.collectl import CollectlMonitor
from repro.monitors.resource.iostat import IostatMonitor
from repro.monitors.resource.sar import SarMonitor
from repro.ntier.system import NTierSystem

__all__ = ["ResourceMonitorSuite"]


class ResourceMonitorSuite:
    """One Collectl + IOstat + SAR per node, started and finalized together.

    Parameters
    ----------
    system:
        The built (not yet run) system to observe.
    interval_us:
        Sampling interval for every monitor.
    include:
        Monitor kinds to deploy, any of ``{"collectl", "iostat", "sar"}``.
    sar_mode / collectl_mode:
        Output formats (exercise different transformer paths).
    """

    def __init__(
        self,
        system: NTierSystem,
        interval_us: Micros = ms(50),
        include: tuple[str, ...] = ("collectl", "iostat", "sar"),
        sar_mode: str = "text",
        collectl_mode: str = "csv",
    ) -> None:
        system.add_finalizer(self.finalize)
        self.monitors: list[ResourceMonitor] = []
        for node in system.nodes.values():
            # Each monitor stamps samples with its host's (possibly
            # skewed) clock, exactly like a real sar on that box.
            wall = node.wall_clock or system.wall_clock
            if "collectl" in include:
                self.monitors.append(
                    CollectlMonitor(node, wall, interval_us, mode=collectl_mode)
                )
            if "iostat" in include:
                self.monitors.append(IostatMonitor(node, wall, interval_us))
            if "sar" in include:
                self.monitors.append(
                    SarMonitor(node, wall, interval_us, mode=sar_mode)
                )

    def start(self) -> None:
        """Start every monitor."""
        for monitor in self.monitors:
            monitor.start()

    def finalize(self) -> None:
        """Write every monitor's trailer lines (after the run)."""
        for monitor in self.monitors:
            monitor.finalize()

    def by_node(self, node_name: str) -> list[ResourceMonitor]:
        """Monitors observing ``node_name``."""
        return [m for m in self.monitors if m.node.name == node_name]

    def by_kind(self, monitor_name: str) -> list[ResourceMonitor]:
        """Monitors of one kind (``"collectl"``, ``"iostat"``, ``"sar"``)."""
        return [m for m in self.monitors if m.monitor_name == monitor_name]
