"""Resource mScopeMonitors: SAR, IOstat, Collectl samplers."""

from repro.monitors.resource.base import (
    ResourceMonitor,
    cpu_window_metrics,
    disk_window_metrics,
)
from repro.monitors.resource.collectl import (
    COLLECTL_CSV_MODE,
    COLLECTL_TEXT_MODE,
    CollectlMonitor,
)
from repro.monitors.resource.iostat import IostatMonitor
from repro.monitors.resource.sar import SAR_TEXT_MODE, SAR_XML_MODE, SarMonitor
from repro.monitors.resource.suite import ResourceMonitorSuite

__all__ = [
    "COLLECTL_CSV_MODE",
    "COLLECTL_TEXT_MODE",
    "CollectlMonitor",
    "IostatMonitor",
    "ResourceMonitor",
    "ResourceMonitorSuite",
    "SAR_TEXT_MODE",
    "SAR_XML_MODE",
    "SarMonitor",
    "cpu_window_metrics",
    "disk_window_metrics",
]
