"""mScopeMonitors: event instrumentation and resource samplers."""

from repro.monitors.event import (
    ApacheMScopeMonitor,
    CjdbcMScopeMonitor,
    EventMonitor,
    EventMonitorSuite,
    MySqlMScopeMonitor,
    TomcatMScopeMonitor,
)
from repro.monitors.resource import (
    CollectlMonitor,
    IostatMonitor,
    ResourceMonitor,
    ResourceMonitorSuite,
    SarMonitor,
)

__all__ = [
    "ApacheMScopeMonitor",
    "CjdbcMScopeMonitor",
    "CollectlMonitor",
    "EventMonitor",
    "EventMonitorSuite",
    "IostatMonitor",
    "MySqlMScopeMonitor",
    "ResourceMonitor",
    "ResourceMonitorSuite",
    "SarMonitor",
    "TomcatMScopeMonitor",
]
