"""Pluggable log-volume-reduction policies.

Three policies, all operating on converted :class:`CsvTable` batches at
the import boundary (so batch, live, and sharded ingest share one
implementation):

* :class:`HeadSamplingPolicy` — keep a request iff a *coherent* hash of
  its request id falls under the rate.  The hash is process- and
  host-independent, so every tier keeps the same request set and each
  sampled-in causal path survives intact.
* :class:`TailSamplingPolicy` — defer each request's records in a
  bounded buffer; the moment any record shows an end-to-end span over
  the VLRT threshold the whole request is committed (retroactively,
  across every tier), while non-VLRT requests fall back to a coherent
  base rate at flush/eviction time.
* :class:`ConflationPolicy` — keep a coherent exemplar fraction per
  request class (the RUBBoS interaction mix gives the classes) and fold
  the rest into per-class count/latency aggregates destined for the
  ``conflated_requests`` table.

Every policy *counts* what it drops — per ``(table, source)`` rows and
bytes seen/kept — so the warehouse's ``sampling_ledger`` measures the
volume reduction instead of estimating it.  Decisions are pure
functions of the request id (plus explicit policy state), never of
Python's salted ``hash()``, so a policy applied in a worker process
agrees with the same policy applied in the parent.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.common.errors import AnalysisError
from repro.transformer.xml_to_csv import CsvTable

__all__ = [
    "ConflationPolicy",
    "FlushTable",
    "HeadSamplingPolicy",
    "SampleCounts",
    "SamplingPolicy",
    "TailSamplingPolicy",
    "coherent_keep",
    "parse_policy",
    "row_bytes",
]

_HASH_SPAN = float(2**64)

_REQUEST_ID = "request_id"
_ARRIVAL = "upstream_arrival_us"
_DEPARTURE = "upstream_departure_us"
_INTERACTION = "interaction"


def coherent_keep(request_id: str, rate: float) -> bool:
    """Keep decision for ``request_id`` at ``rate``, coherent everywhere.

    blake2b of the id mapped onto [0, 1): stable across processes,
    hosts, and Python invocations (unlike the salted builtin ``hash``),
    so all tiers of one request make the same decision.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    digest = hashlib.blake2b(
        request_id.encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / _HASH_SPAN < rate


def row_bytes(row: tuple) -> int:
    """Deterministic encoded size of one record (value text + separators).

    The same pure function runs in shard workers and the parent writer,
    so monolith and sharded ledgers agree byte for byte.
    """
    return sum(len(str(value)) for value in row) + len(row)


@dataclasses.dataclass(slots=True)
class SampleCounts:
    """Cumulative ledger counts for one ``(table, source)`` stream."""

    rows_seen: int = 0
    rows_kept: int = 0
    bytes_seen: int = 0
    bytes_kept: int = 0


@dataclasses.dataclass(slots=True)
class FlushTable:
    """Rows a stateful policy releases at flush time, one table each."""

    name: str
    columns: list[tuple[str, str]]
    rows: list[tuple]
    monitor: str
    source: str


class SamplingPolicy:
    """Base class: shared counting plus the policy protocol.

    ``apply`` filters one converted table and returns it (rows may be
    withheld into policy state); ``flush`` releases whatever a stateful
    policy still buffers.  ``parallel_safe`` marks policies that are
    pure per-row functions and may therefore run inside sharded
    fan-out workers; stateful policies must stay on a single writer.
    """

    #: Canonical spec string (``parse_policy`` round-trips it).
    spec: str = "none"
    #: True when apply() is a pure per-row function (no cross-call state).
    parallel_safe: bool = False

    def __init__(self) -> None:
        #: Cumulative counts keyed by ``(table_name, source_path)``.
        self.counts: dict[tuple[str, str], SampleCounts] = {}
        #: ``(table, source)`` -> ``(hostname, parser_name)``, recorded
        #: by the transformer at apply time so flush-time imports can
        #: rebuild full provenance.  Lives on the policy because serve
        #: shares one policy instance across per-host transformers.
        self.streams: dict[tuple[str, str], tuple[str, str]] = {}

    def _counts_for(self, table: CsvTable) -> SampleCounts:
        key = (table.name, table.source)
        entry = self.counts.get(key)
        if entry is None:
            entry = self.counts[key] = SampleCounts()
        return entry

    def apply(self, table: CsvTable) -> CsvTable:
        raise NotImplementedError

    def flush(self) -> list[FlushTable]:
        """Release buffered rows (stateless policies return nothing)."""
        return []

    def conflated_rows(self) -> list[tuple[str, str, int, int, int, int, int]]:
        """Cumulative ``conflated_requests`` rows (conflation only)."""
        return []

    @property
    def sampled_keys(self) -> list[tuple[str, str]]:
        """Every ``(table, source)`` this policy made decisions for."""
        return sorted(self.counts)


def _column_index(table: CsvTable, name: str) -> int | None:
    try:
        return table.column_names.index(name)
    except ValueError:
        return None


def _span_us(row: tuple, arrival: int | None, departure: int | None) -> int:
    if arrival is None or departure is None:
        return 0
    try:
        return int(row[departure]) - int(row[arrival])
    except (TypeError, ValueError):
        return 0


class HeadSamplingPolicy(SamplingPolicy):
    """Keep each request with probability ``rate``, decided at the head.

    The decision is a pure function of the request id, so it is safe in
    parallel shard workers and trivially split-invariant for live
    ingest: however the byte stream is partitioned into refreshes, the
    kept set is identical.
    """

    parallel_safe = True

    def __init__(self, rate: float) -> None:
        super().__init__()
        if not 0.0 < rate <= 1.0:
            raise AnalysisError(f"head sampling rate out of (0, 1]: {rate}")
        self.rate = rate
        self.spec = f"head:{rate:g}"

    def apply(self, table: CsvTable) -> CsvTable:
        rid = _column_index(table, _REQUEST_ID)
        if rid is None:
            return table
        entry = self._counts_for(table)
        kept: list[tuple] = []
        for row in table.rows:
            size = row_bytes(row)
            entry.rows_seen += 1
            entry.bytes_seen += size
            if coherent_keep(str(row[rid]), self.rate):
                entry.rows_kept += 1
                entry.bytes_kept += size
                kept.append(row)
        return dataclasses.replace(table, rows=kept)


class TailSamplingPolicy(SamplingPolicy):
    """Always-keep-VLRT tail sampling with a bounded deferral buffer.

    Records are withheld per request until the request's fate is known:
    any record whose upstream span crosses ``threshold_us`` marks the
    request VLRT and every buffered record of that request — on every
    tier — is retroactively committed at flush, as are all its later
    records immediately.  Requests that never cross the threshold fall
    back to a coherent ``base_rate`` keep decision at flush or when the
    buffer evicts them (oldest first, ``max_requests`` bound).
    """

    parallel_safe = False

    def __init__(
        self,
        base_rate: float,
        threshold_us: int,
        max_requests: int = 65536,
    ) -> None:
        super().__init__()
        if not 0.0 <= base_rate <= 1.0:
            raise AnalysisError(f"tail base rate out of [0, 1]: {base_rate}")
        if threshold_us <= 0:
            raise AnalysisError(f"tail threshold must be positive: {threshold_us}")
        if max_requests < 1:
            raise AnalysisError(f"tail buffer bound must be >= 1: {max_requests}")
        self.base_rate = base_rate
        self.threshold_us = threshold_us
        self.max_requests = max_requests
        self.spec = (
            f"tail:{base_rate:g}:{threshold_us // 1000:g}"
            if threshold_us % 1000 == 0
            else f"tail:{base_rate:g}:{threshold_us / 1000:g}"
        )
        #: request id -> keep decision, once made (True = keep forever).
        self._decided: dict[str, bool] = {}
        #: request id -> buffered (table, source, row), insertion-ordered.
        self._buffer: dict[str, list[tuple[str, str, tuple]]] = {}
        #: (table, source) -> (columns, monitor) for flush-time rebuild.
        self._table_info: dict[tuple[str, str], tuple[list, str]] = {}
        #: rows settled as keepers, awaiting the next flush().
        self._flushable: dict[tuple[str, str], list[tuple]] = {}

    @property
    def pending_requests(self) -> int:
        """Requests currently deferred (observable in serve /stats)."""
        return len(self._buffer)

    def apply(self, table: CsvTable) -> CsvTable:
        rid_idx = _column_index(table, _REQUEST_ID)
        if rid_idx is None:
            return table
        arrival = _column_index(table, _ARRIVAL)
        departure = _column_index(table, _DEPARTURE)
        entry = self._counts_for(table)
        key = (table.name, table.source)
        self._table_info[key] = (list(table.columns), table.monitor)
        kept: list[tuple] = []
        for row in table.rows:
            size = row_bytes(row)
            entry.rows_seen += 1
            entry.bytes_seen += size
            rid = str(row[rid_idx])
            decided = self._decided.get(rid)
            if decided is None and _span_us(row, arrival, departure) >= (
                self.threshold_us
            ):
                # The request just proved VLRT: it (and everything it
                # already buffered on other tiers) is kept from here on.
                self._commit_request(rid)
                decided = True
            if decided is True:
                entry.rows_kept += 1
                entry.bytes_kept += size
                kept.append(row)
            elif decided is False:
                continue
            else:
                self._buffer.setdefault(rid, []).append(
                    (table.name, table.source, row)
                )
                self._evict_over_bound()
        return dataclasses.replace(table, rows=kept)

    def _commit_request(self, rid: str) -> None:
        """Retroactively keep everything this request already buffered.

        Moving the rows out of the deferral buffer *now* matters: a
        later flush settles whatever is still buffered at the base
        rate, which would overwrite the VLRT keep decision.
        """
        self._decided[rid] = True
        for table_name, source, row in self._buffer.pop(rid, []):
            entry = self.counts[(table_name, source)]
            entry.rows_kept += 1
            entry.bytes_kept += row_bytes(row)
            self._flushable.setdefault((table_name, source), []).append(row)

    def _evict_over_bound(self) -> None:
        while len(self._buffer) > self.max_requests:
            rid = next(iter(self._buffer))
            self._settle(rid)

    def _settle(self, rid: str) -> None:
        """Make the base-rate decision for a deferred request."""
        keep = coherent_keep(rid, self.base_rate)
        self._decided[rid] = keep
        rows = self._buffer.pop(rid)
        if not keep:
            return
        for table_name, source, row in rows:
            entry = self.counts[(table_name, source)]
            entry.rows_kept += 1
            entry.bytes_kept += row_bytes(row)
            self._flushable.setdefault((table_name, source), []).append(row)

    def flush(self) -> list[FlushTable]:
        for rid in list(self._buffer):
            self._settle(rid)
        released = self._flushable
        tables: list[FlushTable] = []
        for key in sorted(released):
            table_name, source = key
            columns, monitor = self._table_info[key]
            tables.append(
                FlushTable(
                    name=table_name,
                    columns=columns,
                    rows=released[key],
                    monitor=monitor,
                    source=source,
                )
            )
        released.clear()
        return tables


class ConflationPolicy(SamplingPolicy):
    """Per-class exemplars plus count/latency aggregates for the rest.

    Request classes are the values of the ``interaction`` column — for
    RUBBoS front-tier logs that is the paper's 24-interaction mix —
    with ``""`` as the class for tables that carry no interaction tag.
    A coherent ``exemplar_rate`` fraction of requests keep their full
    records; all other rows are dropped and folded into cumulative
    per-``(table, class)`` aggregates served by ``conflated_rows``.
    """

    parallel_safe = False

    def __init__(self, exemplar_rate: float) -> None:
        super().__init__()
        if not 0.0 < exemplar_rate <= 1.0:
            raise AnalysisError(
                f"conflation exemplar rate out of (0, 1]: {exemplar_rate}"
            )
        self.exemplar_rate = exemplar_rate
        self.spec = f"conflate:{exemplar_rate:g}"
        #: (table, class) -> [rid set, records, latency sum, min, max]
        self._aggregates: dict[tuple[str, str], list] = {}

    def apply(self, table: CsvTable) -> CsvTable:
        rid_idx = _column_index(table, _REQUEST_ID)
        if rid_idx is None:
            return table
        arrival = _column_index(table, _ARRIVAL)
        departure = _column_index(table, _DEPARTURE)
        interaction = _column_index(table, _INTERACTION)
        entry = self._counts_for(table)
        kept: list[tuple] = []
        for row in table.rows:
            size = row_bytes(row)
            entry.rows_seen += 1
            entry.bytes_seen += size
            rid = str(row[rid_idx])
            if coherent_keep(rid, self.exemplar_rate):
                entry.rows_kept += 1
                entry.bytes_kept += size
                kept.append(row)
                continue
            klass = (
                str(row[interaction]) if interaction is not None else ""
            )
            span = _span_us(row, arrival, departure)
            agg = self._aggregates.get((table.name, klass))
            if agg is None:
                agg = self._aggregates[(table.name, klass)] = [
                    set(), 0, 0, span, span,
                ]
            agg[0].add(rid)
            agg[1] += 1
            agg[2] += span
            agg[3] = min(agg[3], span)
            agg[4] = max(agg[4], span)
        return dataclasses.replace(table, rows=kept)

    def conflated_rows(self) -> list[tuple[str, str, int, int, int, int, int]]:
        rows = []
        for (table_name, klass), agg in sorted(self._aggregates.items()):
            rids, records, total, low, high = agg
            rows.append(
                (table_name, klass, len(rids), records, total, low, high)
            )
        return rows


def commit_flush(policy: SamplingPolicy, importer, db) -> int:
    """Commit everything a stateful policy still withholds.

    Shared by the batch and live transformers: settles every deferred
    request (VLRTs and coherent base-rate keeps commit, the rest
    drop), imports the released rows through ``importer``, re-records
    the load catalog and sampling ledger with the final cumulative
    counts, and upserts the conflation aggregates.  Idempotent;
    returns the retroactively committed rows.
    """
    committed = 0
    for flush in policy.flush():
        key = (flush.name, flush.source)
        hostname, parser_name = policy.streams[key]
        table = CsvTable(
            name=flush.name,
            columns=flush.columns,
            rows=flush.rows,
            monitor=flush.monitor,
            source=flush.source,
        )
        importer.import_table(table, hostname, parser_name)
        committed += len(flush.rows)
        # The importer's record_load saw only this call's delta;
        # re-record the stream with the cumulative totals (the
        # live-transformer catch-up idiom), then the final ledger.
        entry = policy.counts[key]
        db.record_load(
            flush.name,
            flush.source,
            entry.rows_kept,
            len(db.table_schema(flush.name)),
        )
        db.record_sampling(
            flush.name,
            flush.source,
            policy.spec,
            entry.rows_seen,
            entry.rows_kept,
            entry.bytes_seen,
            entry.bytes_kept,
        )
    for row in policy.conflated_rows():
        db.record_conflated(*row)
    return committed


def parse_policy(spec: str | None) -> SamplingPolicy | None:
    """Build a policy from its spec string (``None``/``"none"`` = off).

    Accepted forms::

        head:RATE                     e.g. head:0.1
        tail:BASE_RATE:THRESHOLD_MS   e.g. tail:0.05:50
        tail:BASE_RATE:THRESHOLD_MS:MAX_BUFFERED_REQUESTS
        conflate:EXEMPLAR_RATE        e.g. conflate:0.1
    """
    if spec is None or spec == "none":
        return None
    kind, _, rest = spec.partition(":")
    parts = rest.split(":") if rest else []
    try:
        if kind == "head" and len(parts) == 1:
            return HeadSamplingPolicy(float(parts[0]))
        if kind == "tail" and len(parts) in (2, 3):
            threshold_us = int(round(float(parts[1]) * 1000))
            bound = int(parts[2]) if len(parts) == 3 else 65536
            return TailSamplingPolicy(
                float(parts[0]), threshold_us, max_requests=bound
            )
        if kind == "conflate" and len(parts) == 1:
            return ConflationPolicy(float(parts[0]))
    except ValueError as exc:
        raise AnalysisError(f"bad sampling spec {spec!r}: {exc}") from exc
    raise AnalysisError(
        f"unknown sampling spec {spec!r} (expected head:RATE, "
        f"tail:BASE:THRESHOLD_MS[:MAX], or conflate:RATE)"
    )
