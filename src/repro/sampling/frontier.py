"""The measured accuracy/volume frontier behind ``mscope frontier``.

The paper's monitors double a tier's disk write volume; the sampling
policies in :mod:`repro.sampling.policy` buy that volume back.  This
module *measures* what each policy costs in diagnosis accuracy: it
sweeps policy × rate across the labeled fault scenarios through
:class:`~repro.validation.runner.ScenarioRunner`, scores every cell
with :func:`~repro.validation.scoring.score_reports`, reads the
achieved volume reduction out of the warehouse's ``sampling_ledger``
(measured, never estimated), and emits the frontier as one JSON
artifact.

:data:`PINNED_POLICY` is the operating point the sweep selected —
tail sampling keeps every slow request on all tiers while thinning
the fast ones to its base rate, and the ledger-corrected VLRT
baseline (:meth:`~repro.analysis.diagnosis.Diagnoser.sampled_baseline_us`)
keeps detection calibrated at base rates where a naive median
collapses.  Its floors in :data:`FRONTIER_FLOORS` are claimed nowhere
and tested everywhere: the gating CI job and the validation suite
re-run the fast scenarios at the pinned point and fail on any
regression.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.validation.runner import ScenarioRunner

# NOTE: the validation/warehouse imports live inside the functions:
# the transformer layer imports this package for its policies, and the
# validation runner imports the transformer — a module-level import
# here would close that cycle.

__all__ = [
    "DEFAULT_POLICY_GRID",
    "FRONTIER_FLOORS",
    "PINNED_POLICY",
    "check_frontier_floors",
    "run_frontier",
]

#: The operating point the frontier sweep pinned (seed 7): recall and
#: rank-1 attribution stay at 1.0 on all five labeled scenarios while
#: the ledger shows >=12.8x row and byte reduction on each.  At this
#: base rate the raw VLRT median collapses (the survivors are mostly
#: slow requests); the pinned point only holds together with the
#: Diagnoser's inverse-probability baseline correction.
PINNED_POLICY = "tail:0.01:200"

#: Gating floors the pinned operating point must clear on *every*
#: labeled scenario.  ``row_reduction``/``byte_reduction`` come from
#: the warehouse's sampling ledger — measured volume, not an estimate.
FRONTIER_FLOORS: dict[str, float] = {
    "recall": 0.9,
    "rank1_attribution": 0.8,
    "row_reduction": 10.0,
    "byte_reduction": 10.0,
}

#: The nightly sweep grid: every policy family across its useful rate
#: range, bracketing the pinned point from both sides so a frontier
#: shift (e.g. a detector change moving the recall cliff) is visible
#: in the artifact, not just a floor failure.
DEFAULT_POLICY_GRID: tuple[str, ...] = (
    "head:0.5",
    "head:0.2",
    "head:0.1",
    "head:0.05",
    "tail:0.05:50",
    "tail:0.02:100",
    "tail:0.01:150",
    "tail:0.01:200",
    "tail:0.005:200",
    "conflate:0.2",
    "conflate:0.05",
)


def _frontier_cell(
    runner: "ScenarioRunner", scenario: str, seed: int, policy: str
) -> dict:
    """Accuracy + measured volume for one (scenario, policy) cell."""
    from repro.warehouse.sharded import open_warehouse

    outcome = runner.run(scenario, seed=seed, mode="batch", sampling=policy)
    db = open_warehouse(outcome.db_path)
    try:
        summary = db.sampling_summary()
    finally:
        db.close()
    score = outcome.score
    latency = score.mean_detection_latency_us
    return {
        "precision": round(score.precision, 4),
        "recall": round(score.recall, 4),
        "attribution": round(score.attribution_accuracy, 4),
        "rank1_attribution": round(score.primary_attribution_accuracy, 4),
        "detection_latency_ms": (
            round(latency / 1000.0, 1) if latency is not None else None
        ),
        "row_reduction": (
            round(summary["row_reduction"], 2) if summary else 1.0
        ),
        "byte_reduction": (
            round(summary["byte_reduction"], 2) if summary else 1.0
        ),
    }


def run_frontier(
    workdir: Path,
    policies: Iterable[str] = DEFAULT_POLICY_GRID,
    scenarios: Iterable[str] | None = None,
    seed: int = 7,
    record: "Callable[..., None] | None" = None,
) -> dict:
    """Sweep ``policies`` × ``scenarios`` and build the frontier.

    Every cell is a full scenario run: simulate (cached per scenario),
    ingest under the policy, diagnose, score against the labeled fault
    schedule, and read the achieved reduction from the ledger.
    ``record(section, **fields)`` (the benchmark recorder) is called
    once per cell when given.  The returned document is deterministic
    for a given ``(policies, scenarios, seed)``.
    """
    from repro.validation.runner import SCENARIOS, ScenarioRunner

    if scenarios is None:
        names = sorted(SCENARIOS)
    else:
        names = list(scenarios)
    runner = ScenarioRunner(Path(workdir))
    grid: dict[str, dict] = {}
    for policy in policies:
        cells = {
            name: _frontier_cell(runner, name, seed, policy)
            for name in names
        }
        if record is not None:
            # One bench-record section per cell (the recorder merges
            # by section name, so a shared name would keep only the
            # last cell).
            for name, cell in cells.items():
                record(f"frontier:{policy}:{name}", **cell)
        grid[policy] = {
            "scenarios": cells,
            # The frontier coordinate of this policy: its *worst*
            # scenario on each axis — an operating point is only as
            # good as the scenario it degrades most.
            "worst": {
                metric: min(cell[metric] for cell in cells.values())
                for metric in (
                    "precision",
                    "recall",
                    "rank1_attribution",
                    "row_reduction",
                    "byte_reduction",
                )
            },
        }
    return {
        "seed": seed,
        "scenarios": names,
        "pinned_policy": PINNED_POLICY,
        "floors": dict(FRONTIER_FLOORS),
        "policies": grid,
    }


def check_frontier_floors(frontier: dict) -> list[str]:
    """Floor violations of the pinned operating point (empty = holds).

    Checks every swept scenario cell of ``pinned_policy`` against
    :data:`FRONTIER_FLOORS`; the pinned policy missing from the sweep
    is itself a violation (a sweep that silently dropped the gated
    point must not pass the gate).
    """
    pinned = frontier.get("pinned_policy", PINNED_POLICY)
    entry = frontier["policies"].get(pinned)
    if entry is None:
        return [f"pinned policy {pinned!r} was not swept"]
    violations = []
    for name, cell in sorted(entry["scenarios"].items()):
        for metric, floor in sorted(FRONTIER_FLOORS.items()):
            if cell[metric] < floor:
                violations.append(
                    f"{name} [{pinned}]: {metric} {cell[metric]:.3f} "
                    f"< floor {floor:.3f}"
                )
    return violations
