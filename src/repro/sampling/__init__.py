"""Adaptive log-volume reduction policies.

The paper concedes that fine-grained monitoring can double disk write
volume (four timestamps per request per tier).  This package holds the
pluggable sampling policies the transformer layer threads through
batch, live, and sharded ingest, plus the measured accuracy/volume
frontier (`mscope frontier`) that proves the reduced logs still
diagnose correctly.
"""

from repro.sampling.frontier import (
    DEFAULT_POLICY_GRID,
    FRONTIER_FLOORS,
    PINNED_POLICY,
    check_frontier_floors,
    run_frontier,
)
from repro.sampling.policy import (
    ConflationPolicy,
    FlushTable,
    HeadSamplingPolicy,
    SampleCounts,
    SamplingPolicy,
    TailSamplingPolicy,
    coherent_keep,
    commit_flush,
    parse_policy,
    row_bytes,
)

__all__ = [
    "ConflationPolicy",
    "commit_flush",
    "DEFAULT_POLICY_GRID",
    "FlushTable",
    "FRONTIER_FLOORS",
    "HeadSamplingPolicy",
    "PINNED_POLICY",
    "SampleCounts",
    "SamplingPolicy",
    "TailSamplingPolicy",
    "check_frontier_floors",
    "coherent_keep",
    "parse_policy",
    "row_bytes",
    "run_frontier",
]
