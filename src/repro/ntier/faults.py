"""Very-short-bottleneck fault injectors.

These reproduce the two root causes the paper's illustrative scenarios
diagnose (Section V), plus a Java garbage-collection injector covering
the related cause cited from earlier work:

* :class:`DBLogFlushFault` — the database flushes its log from memory
  to disk in large bursts; the disk saturates for hundreds of
  milliseconds and synchronous commits queue behind the flush
  (scenario A / Figures 2, 4, 6, 7).
* :class:`DirtyPageFlushFault` — dirty pages accumulate until the
  kernel flusher kicks in, stealing every core at kernel priority for
  a short burst; the dirty-page count drops abruptly while the CPU
  saturates (scenario B / Figure 8).
* :class:`GarbageCollectionFault` — stop-the-world JVM collections on
  a tier, an alternative CPU-level VSB used by extension experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import ConfigError
from repro.common.timebase import Micros, ms
from repro.ntier.hardware import Cpu
from repro.ntier.node import Node

if TYPE_CHECKING:
    from repro.ntier.system import NTierSystem

__all__ = [
    "Fault",
    "DBLogFlushFault",
    "DirtyPageFlushFault",
    "GarbageCollectionFault",
]


class Fault:
    """Base class for fault injectors."""

    #: Human-readable fault name recorded in experiment metadata.
    name = "fault"

    def install(self, system: "NTierSystem") -> None:
        """Attach the fault's processes to the built system."""
        raise NotImplementedError


class DBLogFlushFault(Fault):
    """Periodic large log flushes on the database node's disk.

    Parameters
    ----------
    start_at:
        Simulation time of the first flush.
    period:
        Interval between flush bursts.
    flush_bytes:
        Volume written per burst; at the default disk bandwidth,
        30 MiB ≈ 300 ms of disk saturation.
    bursts:
        Number of bursts to inject (``None`` = keep going forever).
    tier:
        The tier whose node hosts the flush (default ``"mysql"``).
    """

    name = "db_log_flush"

    def __init__(
        self,
        start_at: Micros,
        period: Micros,
        flush_bytes: int = 30 * 1024 * 1024,
        bursts: int | None = None,
        tier: str = "mysql",
    ) -> None:
        if flush_bytes <= 0:
            raise ConfigError("flush_bytes must be positive")
        if period <= 0:
            raise ConfigError("period must be positive")
        self.start_at = start_at
        self.period = period
        self.flush_bytes = flush_bytes
        self.bursts = bursts
        self.tier = tier
        self.flush_times: list[Micros] = []
        #: ``(start, stop)`` of each completed flush burst — the
        #: labeled ground-truth intervals the validation harness scores
        #: diagnosis output against.
        self.flush_windows: list[tuple[Micros, Micros]] = []

    def install(self, system: "NTierSystem") -> None:
        node = system.node_for_tier(self.tier)
        server = system.servers.get(self.tier)
        system.engine.process(self._run(node, server))

    def _run(self, node: Node, server):
        engine = node.engine
        yield engine.timeout(self.start_at)
        injected = 0
        while self.bursts is None or injected < self.bursts:
            started = engine.now
            self.flush_times.append(started)
            # Group-commit semantics: commits arriving during the flush
            # wait on the barrier, and the flush itself is one large
            # sequential write that saturates the disk — together these
            # produce the VLRT requests of scenario A.
            if server is not None and hasattr(server, "begin_log_flush"):
                server.begin_log_flush()
            yield from node.disk.write(self.flush_bytes, priority=5)
            if server is not None and hasattr(server, "end_log_flush"):
                server.end_log_flush()
            self.flush_windows.append((started, engine.now))
            injected += 1
            if self.bursts is not None and injected >= self.bursts:
                break
            yield engine.timeout(self.period)


class DirtyPageFlushFault(Fault):
    """Kernel dirty-page writeback bursts on one tier's node.

    A background dirtier (standing in for application file writes plus
    log traffic) raises the dirty level; when it crosses ``threshold``
    the flusher claims every core at kernel priority and cleans down to
    ``low_watermark``, saturating the CPU for the burst duration.

    Parameters
    ----------
    tier:
        The tier whose node is affected.
    threshold_bytes / low_watermark_bytes:
        Trigger and stop levels (``vm.dirty_ratio`` semantics).
    dirty_rate_bytes_per_sec:
        Background dirtying rate.
    chunk_bytes:
        Page volume recycled per flusher work unit.
    cpu_per_chunk_us:
        Kernel CPU consumed per chunk per worker.  Recycling is pure
        page-reclaim scanning — CPU work, no disk traffic — matching
        the paper's observation that scenario B shows CPU saturation
        *without* elevated I/O utilization.
    check_interval:
        How often the watcher samples the dirty level.
    """

    name = "dirty_page_flush"

    def __init__(
        self,
        tier: str,
        threshold_bytes: int = 96 * 1024 * 1024,
        low_watermark_bytes: int = 16 * 1024 * 1024,
        dirty_rate_bytes_per_sec: int = 48 * 1024 * 1024,
        chunk_bytes: int = 256 * 1024,
        cpu_per_chunk_us: Micros = ms(10),
        check_interval: Micros = ms(10),
        initial_dirty_bytes: int = 0,
    ) -> None:
        if low_watermark_bytes >= threshold_bytes:
            raise ConfigError("low watermark must be below the threshold")
        if min(chunk_bytes, cpu_per_chunk_us, check_interval) <= 0:
            raise ConfigError("chunk/cpu/check parameters must be positive")
        self.tier = tier
        self.threshold_bytes = threshold_bytes
        self.low_watermark_bytes = low_watermark_bytes
        self.dirty_rate = dirty_rate_bytes_per_sec
        self.chunk_bytes = chunk_bytes
        self.cpu_per_chunk_us = cpu_per_chunk_us
        self.check_interval = check_interval
        self.initial_dirty_bytes = initial_dirty_bytes
        self.burst_windows: list[tuple[Micros, Micros]] = []

    def install(self, system: "NTierSystem") -> None:
        node = system.node_for_tier(self.tier)
        if self.initial_dirty_bytes:
            node.page_cache.dirty(self.initial_dirty_bytes)
        if self.dirty_rate > 0:
            system.engine.process(self._dirtier(node))
        system.engine.process(self._watcher(node))

    def _dirtier(self, node: Node):
        engine = node.engine
        per_tick = int(self.dirty_rate * self.check_interval / 1_000_000)
        while True:
            yield engine.timeout(self.check_interval)
            node.page_cache.dirty(per_tick)

    def _watcher(self, node: Node):
        engine = node.engine
        while True:
            yield engine.timeout(self.check_interval)
            if node.page_cache.dirty_bytes >= self.threshold_bytes:
                started = engine.now
                yield from self._flush_burst(node)
                self.burst_windows.append((started, engine.now))

    def _flush_burst(self, node: Node):
        cores = node.spec.cores
        state = {"active": True}
        workers = [
            node.engine.process(self._flusher_worker(node, state))
            for _ in range(cores)
        ]
        # Wait for every worker to drain its share.
        for worker in workers:
            yield worker

    def _flusher_worker(self, node: Node, state: dict):
        # The reclaim worker holds its core for the whole burst: direct
        # reclaim throttles every other task on the CPU, which is what
        # starves request processing and produces the ~second-long RT
        # peaks of Fig 8a.
        claim = node.cpu.seize(priority=Cpu.KERNEL_PRIORITY)
        yield claim
        try:
            while state["active"]:
                if node.page_cache.dirty_bytes <= self.low_watermark_bytes:
                    state["active"] = False
                    break
                yield node.engine.timeout(self.cpu_per_chunk_us)
                node.cpu.charge("system", self.cpu_per_chunk_us)
                node.page_cache.clean(self.chunk_bytes)
        finally:
            node.cpu.release(claim)


class GarbageCollectionFault(Fault):
    """Stop-the-world JVM collections: periodic full-CPU kernel bursts."""

    name = "jvm_gc"

    def __init__(
        self,
        tier: str,
        start_at: Micros,
        period: Micros,
        pause: Micros = ms(250),
        collections: int | None = None,
    ) -> None:
        if period <= 0 or pause <= 0:
            raise ConfigError("period and pause must be positive")
        self.tier = tier
        self.start_at = start_at
        self.period = period
        self.pause = pause
        self.collections = collections
        self.pause_windows: list[tuple[Micros, Micros]] = []

    def install(self, system: "NTierSystem") -> None:
        node = system.node_for_tier(self.tier)
        system.engine.process(self._run(node))

    def _run(self, node: Node):
        engine = node.engine
        yield engine.timeout(self.start_at)
        done = 0
        while self.collections is None or done < self.collections:
            started = engine.now
            workers = [
                engine.process(self._pause_core(node)) for _ in range(node.spec.cores)
            ]
            for worker in workers:
                yield worker
            self.pause_windows.append((started, engine.now))
            done += 1
            if self.collections is not None and done >= self.collections:
                break
            yield engine.timeout(self.period)

    def _pause_core(self, node: Node):
        # Stop-the-world: hold the core for the entire pause so no
        # request thread makes progress; account the time in quanta so
        # sampling windows see the saturation spread over the pause.
        claim = node.cpu.seize(priority=Cpu.KERNEL_PRIORITY)
        yield claim
        try:
            remaining = self.pause
            while remaining > 0:
                piece = min(node.cpu.quantum, remaining)
                yield node.engine.timeout(piece)
                node.cpu.charge("system", piece)
                remaining -= piece
        finally:
            node.cpu.release(claim)
