"""The extended millibottleneck fault catalogue.

Six further root causes of VLRT requests, drawn from the
millibottleneck taxonomy and the microservices trace studies cited in
the paper's related work.  Each injector follows the house idiom: a
deterministic episode schedule (``start_at`` / ``period`` /
``episodes``), a process attached in :meth:`~Fault.install`, and a
``*_windows`` list of completed ``(start, stop)`` episodes that
:func:`~repro.validation.schedule.FaultSchedule.from_faults` turns into
labeled ground truth.

* :class:`RetryStormFault` — timeout-triggered retries multiply the
  servlet load on the application tier; CPU saturates for the storm.
* :class:`ConnectionPoolExhaustionFault` — stuck transactions hold
  most of a database replica's connection pool while hammering its
  disk; fresh queries queue behind the stragglers.
* :class:`LockConvoyFault` — a hot lock serializes the database: the
  commit barrier rises while lock-holder scheduling burns every core.
* :class:`CacheStampedeFault` — a cache flush makes every read miss
  the buffer pool at full-table sizes; the disk saturates under the
  stampede of re-fetches.
* :class:`NetworkJitterFault` — a noisy neighbour on the host's
  switch/NIC adds per-hop latency while the hypervisor steals cycles.
* :class:`MemoryLeakFault` — a slow leak raises memory pressure until
  reclaim thrashes: every core scans at kernel priority while the
  dirty level collapses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import ConfigError
from repro.common.timebase import Micros, ms
from repro.ntier.faults import Fault
from repro.ntier.hardware import Cpu
from repro.ntier.node import Node

if TYPE_CHECKING:
    from repro.ntier.system import NTierSystem

__all__ = [
    "RetryStormFault",
    "ConnectionPoolExhaustionFault",
    "LockConvoyFault",
    "CacheStampedeFault",
    "NetworkJitterFault",
    "MemoryLeakFault",
]


class _EpisodicFault(Fault):
    """Shared start/period/episodes scheduling for the catalogue faults.

    Subclasses implement :meth:`_episode` (a generator running one
    episode) and name the attribute their completed windows land in via
    ``windows_attr``.
    """

    windows_attr = "windows"

    def __init__(
        self,
        tier: str,
        start_at: Micros,
        period: Micros,
        episodes: int | None = None,
    ) -> None:
        if period <= 0:
            raise ConfigError("period must be positive")
        self.tier = tier
        self.start_at = start_at
        self.period = period
        self.episodes = episodes
        setattr(self, self.windows_attr, [])

    @property
    def windows(self) -> list[tuple[Micros, Micros]]:
        """Completed episode windows regardless of the attribute name."""
        return getattr(self, self.windows_attr)

    def install(self, system: "NTierSystem") -> None:
        self._system = system
        system.engine.process(self._schedule(system))

    def _schedule(self, system: "NTierSystem"):
        engine = system.engine
        node = system.node_for_tier(self.tier)
        yield engine.timeout(self.start_at)
        injected = 0
        while self.episodes is None or injected < self.episodes:
            started = engine.now
            yield from self._episode(system, node)
            self.windows.append((started, engine.now))
            injected += 1
            if self.episodes is not None and injected >= self.episodes:
                break
            yield engine.timeout(self.period)

    def _episode(self, system: "NTierSystem", node: Node):
        raise NotImplementedError
        yield  # pragma: no cover

    def _burn_cores(self, node: Node, duration: Micros, category: str):
        """Hold every core for ``duration``, charging ``category`` in quanta."""
        workers = [
            node.engine.process(self._burn_one(node, duration, category))
            for _ in range(node.spec.cores)
        ]
        for worker in workers:
            yield worker

    def _burn_one(self, node: Node, duration: Micros, category: str):
        claim = node.cpu.seize(priority=Cpu.KERNEL_PRIORITY)
        yield claim
        try:
            remaining = duration
            while remaining > 0:
                piece = min(node.cpu.quantum, remaining)
                yield node.engine.timeout(piece)
                node.cpu.charge(category, piece)
                remaining -= piece
        finally:
            node.cpu.release(claim)


class RetryStormFault(_EpisodicFault):
    """Timeout-triggered retry amplification on the application tier.

    A transient blip pushes some responses past the client timeout;
    every timed-out caller retries, multiplying the servlet load, whose
    timeouts trigger still more retries — the storm sustains itself for
    hundreds of milliseconds of user-CPU saturation before the queues
    drain.  Modeled as the amplified servlet work itself: all cores
    busy executing (user-mode) retry copies for ``storm_duration``.
    """

    name = "retry_storm"
    windows_attr = "storm_windows"

    def __init__(
        self,
        tier: str = "tomcat",
        start_at: Micros = 0,
        period: Micros = ms(1000),
        storm_duration: Micros = ms(400),
        episodes: int | None = None,
    ) -> None:
        if storm_duration <= 0:
            raise ConfigError("storm_duration must be positive")
        super().__init__(tier, start_at, period, episodes)
        self.storm_duration = storm_duration

    def _episode(self, system: "NTierSystem", node: Node):
        yield from self._burn_cores(node, self.storm_duration, "user")


class ConnectionPoolExhaustionFault(_EpisodicFault):
    """Stuck transactions exhaust one replica's connection pool.

    ``held_fraction`` of the replica's worker pool is claimed by
    stragglers that sit on their connections running oversized reads;
    fresh queries wait in the pool's queue until the stragglers
    release.  The disk saturates under the stragglers' reads — the
    observable resource signal on the afflicted replica's node.
    """

    name = "pool_exhaustion"
    windows_attr = "exhaustion_windows"

    def __init__(
        self,
        tier: str = "mysql",
        start_at: Micros = 0,
        period: Micros = ms(1000),
        hold_duration: Micros = ms(450),
        held_fraction: float = 0.9,
        read_bytes: int = 512 * 1024,
        episodes: int | None = None,
    ) -> None:
        if hold_duration <= 0:
            raise ConfigError("hold_duration must be positive")
        if not 0.0 < held_fraction <= 1.0:
            raise ConfigError(f"held_fraction out of (0, 1]: {held_fraction}")
        if read_bytes <= 0:
            raise ConfigError("read_bytes must be positive")
        super().__init__(tier, start_at, period, episodes)
        self.hold_duration = hold_duration
        self.held_fraction = held_fraction
        self.read_bytes = read_bytes

    def _episode(self, system: "NTierSystem", node: Node):
        server = system.servers[self.tier]
        count = max(1, int(server.workers.capacity * self.held_fraction))
        stragglers = [
            system.engine.process(self._straggler(server, node))
            for _ in range(count)
        ]
        for straggler in stragglers:
            yield straggler

    def _straggler(self, server, node: Node):
        # Stragglers outrank arriving queries in the pool queue
        # (priority -1 < the servers' default 0), so the exhaustion
        # takes hold even on a busy replica.
        claim = server.workers.acquire(priority=-1)
        yield claim
        try:
            deadline = node.engine.now + self.hold_duration
            while node.engine.now < deadline:
                started = node.engine.now
                yield from node.disk.read(self.read_bytes, priority=5)
                node.cpu.charge("iowait", node.engine.now - started)
        finally:
            server.workers.release(claim)


class LockConvoyFault(_EpisodicFault):
    """A hot lock serializes the database tier.

    Every transaction convoys behind one lock: commits stall on the
    barrier while the lock-holder handoffs burn system CPU on every
    core (the convoy's context-switch storm) for ``convoy_duration``.
    """

    name = "lock_convoy"
    windows_attr = "convoy_windows"

    def __init__(
        self,
        tier: str = "mysql",
        start_at: Micros = 0,
        period: Micros = ms(1000),
        convoy_duration: Micros = ms(400),
        episodes: int | None = None,
    ) -> None:
        if convoy_duration <= 0:
            raise ConfigError("convoy_duration must be positive")
        super().__init__(tier, start_at, period, episodes)
        self.convoy_duration = convoy_duration

    def _episode(self, system: "NTierSystem", node: Node):
        server = system.servers.get(self.tier)
        if server is not None and hasattr(server, "begin_log_flush"):
            server.begin_log_flush()
        try:
            yield from self._burn_cores(node, self.convoy_duration, "system")
        finally:
            if server is not None and hasattr(server, "end_log_flush"):
                server.end_log_flush()


class CacheStampedeFault(_EpisodicFault):
    """A buffer-pool flush stampedes every read to disk.

    For ``stampede_duration`` the replica's cache hit rate collapses to
    zero (``miss_override = 1.0``) and each miss fetches
    ``read_multiplier`` times the hot-page volume — cold reads are
    full-table scans.  The disk saturates under the re-fetch stampede.
    """

    name = "cache_stampede"
    windows_attr = "stampede_windows"

    def __init__(
        self,
        tier: str = "mysql",
        start_at: Micros = 0,
        period: Micros = ms(1000),
        stampede_duration: Micros = ms(450),
        read_multiplier: float = 12.0,
        episodes: int | None = None,
    ) -> None:
        if stampede_duration <= 0:
            raise ConfigError("stampede_duration must be positive")
        if read_multiplier <= 0:
            raise ConfigError("read_multiplier must be positive")
        super().__init__(tier, start_at, period, episodes)
        self.stampede_duration = stampede_duration
        self.read_multiplier = read_multiplier

    def _episode(self, system: "NTierSystem", node: Node):
        server = system.servers[self.tier]
        server.miss_override = 1.0
        server.read_multiplier = self.read_multiplier
        try:
            yield system.engine.timeout(self.stampede_duration)
        finally:
            server.miss_override = None
            server.read_multiplier = 1.0


class NetworkJitterFault(_EpisodicFault):
    """A noisy neighbour congests the afflicted node's network path.

    During a burst every hop into or out of the tier's bus address pays
    ``extra_latency_us`` one-way, and the co-located tenant's softirq
    load shows up as stolen cycles on the node — the guest-visible
    signature of a neighbour saturating a shared NIC.
    """

    name = "net_jitter"
    windows_attr = "jitter_windows"

    def __init__(
        self,
        tier: str = "mysql",
        start_at: Micros = 0,
        period: Micros = ms(1000),
        jitter_duration: Micros = ms(350),
        extra_latency_us: Micros = ms(20),
        episodes: int | None = None,
    ) -> None:
        if jitter_duration <= 0:
            raise ConfigError("jitter_duration must be positive")
        if extra_latency_us <= 0:
            raise ConfigError("extra_latency_us must be positive")
        super().__init__(tier, start_at, period, episodes)
        self.jitter_duration = jitter_duration
        self.extra_latency_us = extra_latency_us

    def _episode(self, system: "NTierSystem", node: Node):
        system.bus.set_extra_latency(self.tier, self.extra_latency_us)
        try:
            yield from self._burn_cores(node, self.jitter_duration, "steal")
        finally:
            system.bus.set_extra_latency(self.tier, None)


class MemoryLeakFault(Fault):
    """A slow memory leak ends in periodic reclaim thrash.

    A leaking process dirties pages at ``leak_rate_bytes_per_sec``;
    when the dirty level crosses ``threshold_bytes`` reclaim takes
    every core at kernel priority and scans the level back down to
    ``low_watermark_bytes``.  Unlike the catalogue's episodic faults
    the thrash times emerge from the leak rate — the windows list fills
    with whatever bursts actually happened.
    """

    name = "memory_leak"

    def __init__(
        self,
        tier: str = "cjdbc",
        start_at: Micros = 0,
        leak_rate_bytes_per_sec: int = 28 * 1024 * 1024,
        threshold_bytes: int = 40 * 1024 * 1024,
        low_watermark_bytes: int = 8 * 1024 * 1024,
        chunk_bytes: int = 256 * 1024,
        cpu_per_chunk_us: Micros = ms(10),
        check_interval: Micros = ms(10),
    ) -> None:
        if leak_rate_bytes_per_sec <= 0:
            raise ConfigError("leak rate must be positive")
        if low_watermark_bytes >= threshold_bytes:
            raise ConfigError("low watermark must be below the threshold")
        if min(chunk_bytes, cpu_per_chunk_us, check_interval) <= 0:
            raise ConfigError("chunk/cpu/check parameters must be positive")
        self.tier = tier
        self.start_at = start_at
        self.leak_rate = leak_rate_bytes_per_sec
        self.threshold_bytes = threshold_bytes
        self.low_watermark_bytes = low_watermark_bytes
        self.chunk_bytes = chunk_bytes
        self.cpu_per_chunk_us = cpu_per_chunk_us
        self.check_interval = check_interval
        self.thrash_windows: list[tuple[Micros, Micros]] = []

    def install(self, system: "NTierSystem") -> None:
        node = system.node_for_tier(self.tier)
        system.engine.process(self._leaker(node))
        system.engine.process(self._watcher(node))

    def _leaker(self, node: Node):
        engine = node.engine
        yield engine.timeout(self.start_at)
        per_tick = int(self.leak_rate * self.check_interval / 1_000_000)
        while True:
            yield engine.timeout(self.check_interval)
            node.page_cache.dirty(per_tick)

    def _watcher(self, node: Node):
        engine = node.engine
        while True:
            yield engine.timeout(self.check_interval)
            if node.page_cache.dirty_bytes >= self.threshold_bytes:
                started = engine.now
                yield from self._thrash(node)
                self.thrash_windows.append((started, engine.now))

    def _thrash(self, node: Node):
        workers = [
            node.engine.process(self._reclaim_worker(node))
            for _ in range(node.spec.cores)
        ]
        for worker in workers:
            yield worker

    def _reclaim_worker(self, node: Node):
        claim = node.cpu.seize(priority=Cpu.KERNEL_PRIORITY)
        yield claim
        try:
            while node.page_cache.dirty_bytes > self.low_watermark_bytes:
                yield node.engine.timeout(self.cpu_per_chunk_us)
                node.cpu.charge("system", self.cpu_per_chunk_us)
                node.page_cache.clean(self.chunk_bytes)
        finally:
            node.cpu.release(claim)
