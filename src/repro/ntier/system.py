"""Assembly of the complete four-tier system.

:class:`NTierSystem` wires engine, nodes, tiers, network, client
emulator, and fault injectors from a declarative
:class:`SystemConfig`.  Monitors (event and resource mScopeMonitors)
attach *between* construction and :meth:`NTierSystem.run`, mirroring
how milliScope instruments an already-deployed application.
"""

from __future__ import annotations

import dataclasses
import datetime
from pathlib import Path
from typing import Iterable

from repro.common.errors import ConfigError
from repro.common.ids import RequestIdGenerator
from repro.common.records import RequestTrace
from repro.common.rng import RngStreams
from repro.common.timebase import DEFAULT_EPOCH, Micros, WallClock
from repro.ntier.balancer import DISPATCH_POLICIES, LoadBalancer
from repro.ntier.client import ClientEmulator, TraceCollector
from repro.ntier.faults import Fault
from repro.ntier.messages import NetworkBus
from repro.ntier.node import Node, NodeSpec
from repro.ntier.server import TierServer
from repro.ntier.tiers import (
    ApacheServer,
    CjdbcServer,
    MySqlServer,
    TIER_ORDER,
    TomcatServer,
)
from repro.rubbos.workload import WorkloadSpec
from repro.sim.engine import Engine

__all__ = ["TierConfig", "SystemConfig", "NTierSystem", "SystemResult", "KERNELS"]

_TIER_CLASSES = {
    "apache": ApacheServer,
    "tomcat": TomcatServer,
    "cjdbc": CjdbcServer,
    "mysql": MySqlServer,
}

_TIER_NODE_PREFIX = {
    "apache": "web",
    "tomcat": "app",
    "cjdbc": "mid",
    "mysql": "db",
}


def tier_address(tier: str, replica: int) -> str:
    """Bus address of one replica (the first keeps the bare tier name)."""
    return tier if replica == 0 else f"{tier}#{replica + 1}"


def logical_tier(address: str) -> str:
    """The tier name behind a (possibly replicated) bus address."""
    return address.split("#", 1)[0]


@dataclasses.dataclass(frozen=True, slots=True)
class TierConfig:
    """Sizing of one tier: worker pool, node hardware, replica count.

    ``replicas > 1`` deploys several identical servers on separate
    nodes; the upstream tier balances over them round-robin (ModJK
    spreading Tomcats, C-JDBC spreading database backends).
    """

    workers: int
    node: NodeSpec = dataclasses.field(default_factory=NodeSpec)
    replicas: int = 1

    def validate(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"tier needs >= 1 worker, got {self.workers}")
        if self.replicas < 1:
            raise ConfigError(f"tier needs >= 1 replica, got {self.replicas}")
        self.node.validate()


def default_tier_configs() -> dict[str, TierConfig]:
    """Worker-pool sizes approximating the RUBBoS deployment defaults."""
    return {
        "apache": TierConfig(workers=150),
        "tomcat": TierConfig(workers=90),
        "cjdbc": TierConfig(workers=90),
        "mysql": TierConfig(workers=90),
    }


#: Simulator kernels a system can run on.
KERNELS = ("scalar", "vector")


@dataclasses.dataclass(slots=True)
class SystemConfig:
    """Everything needed to build a reproducible system instance.

    ``kernel`` selects the simulator substrate: ``"scalar"`` runs
    every occurrence as a Python event; ``"vector"`` runs the client's
    timer traffic on the numpy event calendar
    (:mod:`repro.sim.vector`) with identical monitor-log output.
    ``dispatch`` names the :data:`~repro.ntier.balancer.DISPATCH_POLICIES`
    entry every tier uses to spread requests over downstream replicas.
    """

    workload: WorkloadSpec
    seed: int = 1
    epoch: datetime.datetime = DEFAULT_EPOCH
    network_latency_us: Micros = 150
    log_dir: Path | None = None
    experiment_tag: str = "0A"
    kernel: str = "scalar"
    dispatch: str = "round-robin"
    tiers: dict[str, TierConfig] = dataclasses.field(
        default_factory=default_tier_configs
    )

    def validate(self) -> None:
        self.workload.validate()
        if self.kernel not in KERNELS:
            raise ConfigError(
                f"unknown kernel {self.kernel!r}; expected one of {KERNELS}"
            )
        if self.dispatch not in DISPATCH_POLICIES:
            raise ConfigError(
                f"unknown dispatch policy {self.dispatch!r}; "
                f"expected one of {DISPATCH_POLICIES}"
            )
        missing = [t for t in TIER_ORDER if t not in self.tiers]
        if missing:
            raise ConfigError(f"missing tier configs: {missing}")
        for tier_config in self.tiers.values():
            tier_config.validate()


@dataclasses.dataclass(slots=True)
class SystemResult:
    """Outcome of one run: ground truth plus handles to every component."""

    config: SystemConfig
    duration: Micros
    traces: list[RequestTrace]
    servers: dict[str, TierServer]
    nodes: dict[str, Node]
    wall_clock: WallClock
    collector: TraceCollector

    def throughput(self, start: Micros | None = None, stop: Micros | None = None) -> float:
        """End-to-end completed requests per second."""
        start = 0 if start is None else start
        stop = self.duration if stop is None else stop
        return self.collector.throughput(start, stop)

    def mean_response_time_ms(
        self, start: Micros | None = None, stop: Micros | None = None
    ) -> float:
        """Mean client response time over a window (ms)."""
        start = 0 if start is None else start
        stop = self.duration if stop is None else stop
        return self.collector.mean_response_time_ms(start, stop)


class NTierSystem:
    """A buildable, runnable four-tier RUBBoS deployment."""

    def __init__(self, config: SystemConfig, faults: Iterable[Fault] = ()) -> None:
        config.validate()
        self.config = config
        if config.kernel == "vector":
            from repro.sim.vector import VectorEngine

            self.engine = VectorEngine()
        else:
            self.engine = Engine()
        self.wall_clock = WallClock(config.epoch)
        self.streams = RngStreams(config.seed)
        self.bus = NetworkBus(self.engine, latency_us=config.network_latency_us)
        self.nodes: dict[str, Node] = {}
        self.servers: dict[str, TierServer] = {}
        self._build_tiers()
        self.id_generator = RequestIdGenerator(config.experiment_tag)
        first_tier = TIER_ORDER[0]
        if config.kernel == "vector":
            from repro.ntier.vectorclient import VectorClientEmulator

            client_class = VectorClientEmulator
        else:
            client_class = ClientEmulator
        self.client = client_class(
            self.engine,
            self.bus,
            config.workload,
            self.streams,
            self.id_generator,
            first_tier=[
                tier_address(first_tier, replica)
                for replica in range(config.tiers[first_tier].replicas)
            ],
        )
        self.faults = list(faults)
        self._finalizers: list = []
        self._ran = False
        self._finished = False

    def add_finalizer(self, callback) -> None:
        """Register a callable invoked after the run, before logs close.

        Resource monitors use this to write their trailer lines (SAR's
        ``Average:`` row, the XML closing tags) into still-open sinks.
        """
        self._finalizers.append(callback)

    def _build_tiers(self) -> None:
        addresses: dict[str, list[str]] = {
            tier: [
                tier_address(tier, replica)
                for replica in range(self.config.tiers[tier].replicas)
            ]
            for tier in TIER_ORDER
        }
        for index, tier in enumerate(TIER_ORDER):
            tier_config = self.config.tiers[tier]
            if index + 1 < len(TIER_ORDER):
                downstream = addresses[TIER_ORDER[index + 1]]
            else:
                downstream = None
            for replica in range(tier_config.replicas):
                node = Node(
                    self.engine,
                    f"{_TIER_NODE_PREFIX[tier]}{replica + 1}",
                    spec=tier_config.node,
                    log_dir=self.config.log_dir,
                )
                self.nodes[node.name] = node
                address = addresses[tier][replica]
                # Each node logs with its *own* clock: a skewed node
                # shifts every wall timestamp it writes.
                node_wall = self.wall_clock
                if tier_config.node.clock_offset_us:
                    node_wall = WallClock(
                        self.config.epoch
                        + datetime.timedelta(
                            microseconds=tier_config.node.clock_offset_us
                        )
                    )
                node.wall_clock = node_wall
                balancer = None
                if downstream is not None:
                    # Every server gets its own dispatcher with its own
                    # rng stream, so a seeded-random choice on one
                    # replica never perturbs another's draws.
                    balancer = LoadBalancer(
                        self.config.dispatch,
                        downstream,
                        rng=self.streams.stream(f"balance.{address}"),
                        inflight=self._inflight_of,
                    )
                server = _TIER_CLASSES[tier](
                    engine=self.engine,
                    tier=tier,
                    node=node,
                    bus=self.bus,
                    workers=tier_config.workers,
                    downstream=downstream,
                    wall_clock=node_wall,
                    rng=self.streams.stream(f"server.{address}"),
                    address=address,
                    balancer=balancer,
                )
                self.servers[address] = server

    def _inflight_of(self, address: str) -> float:
        """Requests currently on a server — the least-connections probe."""
        return self.servers[address].concurrency.current

    def node_for_tier(self, tier: str) -> Node:
        """The node hosting a tier (or a specific replica address).

        ``"mysql"`` names the first replica's node; ``"mysql#2"`` the
        second's — so fault injectors can target one replica of a
        scaled-out tier.
        """
        logical = logical_tier(tier)
        if logical not in _TIER_NODE_PREFIX:
            raise ConfigError(f"unknown tier {tier!r}")
        replica = 0
        if "#" in tier:
            replica = int(tier.split("#", 1)[1]) - 1
        name = f"{_TIER_NODE_PREFIX[logical]}{replica + 1}"
        try:
            return self.nodes[name]
        except KeyError:
            raise ConfigError(f"tier {tier!r} has no node {name!r}") from None

    def servers_for_tier(self, tier: str) -> list[TierServer]:
        """Every replica server of one logical tier."""
        matching = [s for s in self.servers.values() if s.tier == tier]
        if not matching:
            raise ConfigError(f"unknown tier {tier!r}")
        return matching

    def run(self, duration: Micros) -> SystemResult:
        """Run the system for ``duration`` µs and return the result."""
        self.start_workload()
        self.advance(duration)
        return self.finish()

    def start_workload(self) -> None:
        """Install faults and start servers and clients (once).

        Part of the stepped-run API: ``start_workload`` →
        ``advance`` (repeatedly) → ``finish``.  Online-monitoring
        examples interleave :meth:`advance` with warehouse refreshes.
        """
        if self._ran:
            raise ConfigError("system instance already ran; build a fresh one")
        self._ran = True
        for fault in self.faults:
            fault.install(self)
        for server in self.servers.values():
            server.start()
        self.client.start()

    def advance(self, until: Micros) -> None:
        """Advance the simulation clock to ``until`` (monotone)."""
        if not self._ran:
            raise ConfigError("call start_workload() before advance()")
        if self._finished:
            raise ConfigError("system already finished")
        self.engine.run(until=until)

    def finish(self) -> SystemResult:
        """Run finalizers, close logs, and return the result."""
        if not self._ran:
            raise ConfigError("nothing ran; call start_workload() first")
        if self._finished:
            raise ConfigError("system already finished")
        self._finished = True
        for finalizer in self._finalizers:
            finalizer()
        for node in self.nodes.values():
            for facility in node.facilities.values():
                facility.flush_now()
            node.close_logs()
        return SystemResult(
            config=self.config,
            duration=self.engine.now,
            traces=list(self.client.collector.traces),
            servers=dict(self.servers),
            nodes=dict(self.nodes),
            wall_clock=self.wall_clock,
            collector=self.client.collector,
        )
