"""Instrumentation hook points on tier servers.

Event mScopeMonitors attach to servers through these hooks.  Hooks are
*generator* callbacks: an attached monitor may consume CPU inline (its
instrumentation cost) and the server's handler yields through it, so
monitor overhead shows up in request latency and CPU accounting exactly
as real instrumentation would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.records import BoundaryRecord

if TYPE_CHECKING:
    from repro.ntier.request import Request
    from repro.ntier.server import TierServer

__all__ = ["TierHook", "HookDispatcher"]


class TierHook:
    """Base class for server instrumentation; every method is a no-op.

    Subclasses override the hook points they care about.  Each hook is
    a generator: ``yield from`` simulation events to model the cost of
    the instrumentation itself.
    """

    def on_upstream_arrival(
        self, server: "TierServer", request: "Request", boundary: BoundaryRecord
    ):
        """The request arrived at the server from upstream."""
        yield from ()

    def on_downstream_sending(
        self, server: "TierServer", request: "Request", target: str
    ):
        """The server is about to forward the request downstream."""
        yield from ()

    def on_downstream_receiving(
        self, server: "TierServer", request: "Request", target: str
    ):
        """The downstream reply just came back."""
        yield from ()

    def on_upstream_departure(
        self, server: "TierServer", request: "Request", boundary: BoundaryRecord
    ):
        """The server is returning the response upstream."""
        yield from ()


class HookDispatcher:
    """Fans hook invocations out to every attached hook, in order."""

    def __init__(self) -> None:
        self._hooks: list[TierHook] = []

    def attach(self, hook: TierHook) -> None:
        """Attach one hook; hooks run in attach order."""
        self._hooks.append(hook)

    def detach(self, hook: TierHook) -> None:
        """Remove a previously attached hook."""
        self._hooks.remove(hook)

    @property
    def attached(self) -> list[TierHook]:
        """The hooks currently attached."""
        return list(self._hooks)

    def upstream_arrival(self, server, request, boundary):
        for hook in self._hooks:
            yield from hook.on_upstream_arrival(server, request, boundary)

    def downstream_sending(self, server, request, target):
        for hook in self._hooks:
            yield from hook.on_downstream_sending(server, request, target)

    def downstream_receiving(self, server, request, target):
        for hook in self._hooks:
            yield from hook.on_downstream_receiving(server, request, target)

    def upstream_departure(self, server, request, boundary):
        for hook in self._hooks:
            yield from hook.on_upstream_departure(server, request, boundary)
