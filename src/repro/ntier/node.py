"""Component-server nodes.

A :class:`Node` bundles the hardware models of one machine in the
n-tier deployment (CPU, disk, page cache) plus its native log streams.
Tier servers, fault injectors, and resource monitors all reference the
node, mirroring how SAR/IOstat observe a host rather than a process.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.common.errors import ConfigError
from repro.common.timebase import Micros, ms
from repro.ntier.hardware import Cpu, Disk, PageCache
from repro.ntier.logfacility import (
    FileLogSink,
    LogSink,
    MemoryLogSink,
    NativeLogFacility,
)
from repro.sim.engine import Engine

__all__ = ["NodeSpec", "Node"]


@dataclasses.dataclass(frozen=True, slots=True)
class NodeSpec:
    """Hardware sizing of one node.

    The defaults approximate the commodity servers in the paper's
    RUBBoS testbed: a small multicore with a single SATA-class disk.

    ``clock_offset_us`` skews this node's *wall clock* relative to true
    time: every timestamp the node logs is shifted by it.  The paper's
    testbed was NTP-disciplined so it never faced this; the skew
    experiments show what unsynchronized clocks do to cross-node
    analysis (and how the offsets can be estimated back out of the
    event logs).
    """

    cores: int = 4
    cpu_quantum_us: Micros = ms(1)
    disk_bandwidth_bytes_per_sec: int = 100 * 1024 * 1024
    disk_seek_us: Micros = 200
    log_flush_threshold_bytes: int = 64 * 1024
    clock_offset_us: int = 0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on an impossible configuration."""
        if self.cores < 1:
            raise ConfigError(f"node needs >= 1 core, got {self.cores}")
        if self.disk_bandwidth_bytes_per_sec <= 0:
            raise ConfigError("disk bandwidth must be positive")
        if self.cpu_quantum_us <= 0:
            raise ConfigError("cpu quantum must be positive")


class Node:
    """One machine: CPU, disk, page cache, and named log streams.

    Parameters
    ----------
    engine:
        The simulation engine.
    name:
        Host name, e.g. ``"web1"``.
    spec:
        Hardware sizing.
    log_dir:
        Directory for this node's log files.  ``None`` keeps logs in
        memory (fast; used by unit tests).
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        spec: NodeSpec | None = None,
        log_dir: Path | None = None,
    ) -> None:
        if spec is None:
            spec = NodeSpec()
        spec.validate()
        self.engine = engine
        self.name = name
        self.spec = spec
        self.log_dir = log_dir
        self.cpu = Cpu(
            engine, spec.cores, name=f"{name}.cpu", quantum=spec.cpu_quantum_us
        )
        self.disk = Disk(
            engine,
            name=f"{name}.disk",
            bandwidth_bytes_per_sec=spec.disk_bandwidth_bytes_per_sec,
            seek_us=spec.disk_seek_us,
        )
        self.page_cache = PageCache(engine, name=f"{name}.pagecache")
        #: The clock this node stamps its logs with; the system builder
        #: sets it (skewed when ``spec.clock_offset_us`` is nonzero).
        self.wall_clock = None
        self._facilities: dict[str, NativeLogFacility] = {}

    def facility(self, log_name: str, *, sync: bool = False) -> NativeLogFacility:
        """Return (creating on first use) the log stream ``log_name``."""
        existing = self._facilities.get(log_name)
        if existing is not None:
            return existing
        sink: LogSink
        if self.log_dir is None:
            sink = MemoryLogSink()
        else:
            sink = FileLogSink(self.log_dir / self.name / f"{log_name}.log")
        facility = NativeLogFacility(
            self,
            sink,
            log_name,
            flush_threshold_bytes=self.spec.log_flush_threshold_bytes,
            sync=sync,
        )
        self._facilities[log_name] = facility
        return facility

    @property
    def facilities(self) -> dict[str, NativeLogFacility]:
        """All log streams created so far, by name."""
        return dict(self._facilities)

    def total_log_bytes(self) -> float:
        """Total bytes written across every log stream on this node."""
        return sum(f.bytes_written.total for f in self._facilities.values())

    def close_logs(self) -> None:
        """Flush and close every log sink (idempotent)."""
        for facility in self._facilities.values():
            facility.sink.close()
