"""Native logging facilities of component servers.

The paper's event mScopeMonitors deliberately reuse each component's
*existing* logging infrastructure (Section IV-C) rather than opening a
side channel, keeping overhead at 1–3% CPU.  This module models that
infrastructure: a buffered, append-only log whose writes cost a little
CPU per line, dirty the page cache, and are flushed to disk in batches
(charging iowait while the flush is in flight).

Log *content* is always durable from the parser's point of view — the
sink receives every line immediately — while the *performance* effects
(CPU, dirty pages, disk traffic, iowait) follow the buffered model.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TYPE_CHECKING

from repro.common.errors import MonitorError
from repro.common.timebase import Micros
from repro.ntier.hardware import CumulativeCounter

if TYPE_CHECKING:
    from repro.ntier.node import Node

__all__ = ["LogSink", "MemoryLogSink", "FileLogSink", "NativeLogFacility"]


class LogSink:
    """Destination for rendered log lines."""

    def write_line(self, line: str) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying file handle (idempotent)."""

    @property
    def description(self) -> str:
        """Human-readable identification of where lines go."""
        raise NotImplementedError


class MemoryLogSink(LogSink):
    """Collects log lines in memory; used by tests and quick runs."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def write_line(self, line: str) -> None:
        self.lines.append(line)

    def text(self) -> str:
        """The full log content with trailing newline per line."""
        return "".join(line + "\n" for line in self.lines)

    @property
    def description(self) -> str:
        return f"<memory:{len(self.lines)} lines>"


class FileLogSink(LogSink):
    """Appends log lines to a real file on disk."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Line-buffered, like a real logging daemon's stream: a live
        # reader (tail, LiveTransformer) sees every completed line.
        self._handle: io.TextIOWrapper | None = self.path.open(
            "a", encoding="utf-8", buffering=1
        )

    def write_line(self, line: str) -> None:
        if self._handle is None:
            raise MonitorError(f"log sink {self.path} already closed")
        self._handle.write(line + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @property
    def description(self) -> str:
        return str(self.path)


class NativeLogFacility:
    """One component's buffered logging channel.

    Parameters
    ----------
    node:
        The node whose CPU/disk/page cache the facility charges.
    sink:
        Where rendered lines go.
    name:
        Log stream name, e.g. ``"access_log"``.
    cpu_us_per_line:
        CPU (system) time accounted per logged line.
    flush_threshold_bytes:
        Buffered bytes that trigger a background flush to disk.
    sync:
        When true every line is flushed synchronously (the ablation's
        "dedicated side-channel logger" mode — far more iowait).
    """

    def __init__(
        self,
        node: "Node",
        sink: LogSink,
        name: str,
        *,
        cpu_us_per_line: Micros = 4,
        flush_threshold_bytes: int = 64 * 1024,
        sync: bool = False,
    ) -> None:
        if flush_threshold_bytes <= 0:
            raise MonitorError("flush threshold must be positive")
        self.node = node
        self.sink = sink
        self.name = name
        self.cpu_us_per_line = cpu_us_per_line
        self.flush_threshold_bytes = flush_threshold_bytes
        self.sync = sync
        self.lines_written = CumulativeCounter()
        self.bytes_written = CumulativeCounter()
        self._buffered = 0
        self._flush_in_flight = False

    def write_line(self, line: str) -> None:
        """Log one line: deliver to the sink and charge the cost model."""
        engine = self.node.engine
        nbytes = len(line) + 1
        self.sink.write_line(line)
        self.lines_written.add(engine.now, 1)
        self.bytes_written.add(engine.now, nbytes)
        self.node.cpu.charge("system", self.cpu_us_per_line)
        self.node.page_cache.dirty(nbytes)
        self._buffered += nbytes
        if self.sync or self._buffered >= self.flush_threshold_bytes:
            self._start_flush()

    def _start_flush(self) -> None:
        if self._flush_in_flight and not self.sync:
            return
        amount, self._buffered = self._buffered, 0
        if amount == 0:
            return
        self._flush_in_flight = True
        self.node.engine.process(self._flush(amount))

    def _flush(self, nbytes: int):
        engine = self.node.engine
        started = engine.now
        try:
            yield from self.node.disk.write(nbytes, priority=7)
            self.node.page_cache.clean(nbytes)
            self.node.cpu.charge("iowait", engine.now - started)
        finally:
            self._flush_in_flight = False

    def flush_now(self) -> None:
        """Force any buffered bytes toward the disk (used at run end)."""
        self._start_flush()
