"""Client emulation.

Reproduces the RUBBoS client emulator: ``workload`` concurrent users,
each alternating an exponential think time with one interaction drawn
from the mix.  Completed request traces accumulate in a
:class:`TraceCollector` — the simulator's ground truth, against which
the monitoring pipeline's reconstructions are validated.
"""

from __future__ import annotations

from repro.common.ids import RequestIdGenerator
from repro.common.records import RequestTrace
from repro.common.rng import RngStreams
from repro.common.timebase import Micros, US_PER_SEC
from repro.ntier.messages import NetworkBus
from repro.ntier.request import Request
from repro.rubbos.workload import WorkloadSpec
from repro.sim.engine import Engine

__all__ = ["TraceCollector", "ClientEmulator"]


class TraceCollector:
    """Accumulates completed request traces in completion order."""

    def __init__(self) -> None:
        self.traces: list[RequestTrace] = []

    def add(self, trace: RequestTrace) -> None:
        """Record one completed trace."""
        self.traces.append(trace)

    def __len__(self) -> int:
        return len(self.traces)

    def completed_between(self, start: Micros, stop: Micros) -> list[RequestTrace]:
        """Traces whose response arrived in ``[start, stop)``."""
        return [
            t
            for t in self.traces
            if t.client_receive is not None and start <= t.client_receive < stop
        ]

    def throughput(self, start: Micros, stop: Micros) -> float:
        """Completed requests per second over ``[start, stop)``."""
        if stop <= start:
            raise ValueError(f"throughput window empty: [{start}, {stop})")
        count = len(self.completed_between(start, stop))
        return count * US_PER_SEC / (stop - start)

    def mean_response_time_ms(self, start: Micros, stop: Micros) -> float:
        """Mean response time (ms) of requests completing in the window."""
        window = self.completed_between(start, stop)
        if not window:
            return 0.0
        return sum(t.response_time_ms() for t in window) / len(window)


class ClientEmulator:
    """Drives the workload against the first tier.

    Parameters
    ----------
    engine, bus:
        Simulation engine and the network the first tier listens on.
    workload:
        User count, think time, ramp-up, and interaction mix.
    streams:
        RNG family; consumes ``client.think``, ``client.mix``,
        ``client.ramp`` streams.
    id_generator:
        Source of fixed-width request IDs (the Apache mScopeMonitor's
        injection, performed here because the emulator builds the URL).
    first_tier:
        Bus address(es) of the entry tier; a list is balanced
        round-robin across replicas.
    """

    def __init__(
        self,
        engine: Engine,
        bus: NetworkBus,
        workload: WorkloadSpec,
        streams: RngStreams,
        id_generator: RequestIdGenerator,
        first_tier: "str | list[str]" = "apache",
    ) -> None:
        workload.validate()
        self.engine = engine
        self.bus = bus
        self.workload = workload
        self.mix = workload.build_mix()
        self.id_generator = id_generator
        if isinstance(first_tier, str):
            self.first_tier_addresses = [first_tier]
        else:
            self.first_tier_addresses = list(first_tier)
        self._balance_counter = 0
        self.collector = TraceCollector()
        self._think_rng = streams.stream("client.think")
        self._mix_rng = streams.stream("client.mix")
        self._ramp_rng = streams.stream("client.ramp")
        self._transitions = None
        if workload.session_model == "markov":
            from repro.rubbos.transitions import TransitionModel

            self._transitions = TransitionModel()
        self._started = False

    def start(self) -> None:
        """Launch every emulated user (idempotent)."""
        if self._started:
            return
        self._started = True
        for _ in range(self.workload.users):
            self.engine.process(self._user_session())

    def _user_session(self):
        session = (
            self._transitions.new_session() if self._transitions is not None else None
        )
        if self.workload.ramp_up_us > 0:
            offset = int(self._ramp_rng.random() * self.workload.ramp_up_us)
            yield self.engine.timeout(offset)
        while True:
            think = self._sample_think()
            if think > 0:
                yield self.engine.timeout(think)
            yield from self._one_request(session)

    def _sample_think(self) -> Micros:
        mean = self.workload.think_time_us
        if mean == 0:
            return 0
        return int(self._think_rng.expovariate(1.0 / mean))

    def _one_request(self, session=None):
        if self._transitions is not None and session is not None:
            interaction = self._transitions.advance(session, self._mix_rng)
        else:
            interaction = self.mix.sample(self._mix_rng)
        request_id = self.id_generator.next_id()
        now = self.engine.now
        trace = RequestTrace(request_id, interaction.name, client_send=now)
        request = Request(request_id, interaction, trace, created_at=now)
        target = self.first_tier_addresses[
            self._balance_counter % len(self.first_tier_addresses)
        ]
        self._balance_counter += 1
        reply_event = self.bus.send(request, "client", target)
        yield reply_event
        trace.client_receive = self.engine.now
        self.collector.add(trace)
