"""Replica dispatch policies for load-balanced tiers.

A :class:`LoadBalancer` decides which downstream replica serves a
request.  The decision is *sticky per request* (and per fan-out
branch): ModJK pins a session to one Tomcat and a connection pool pins
a transaction to one backend, so every SQL statement a request issues
travels to the same replica — which is also what lets causal-path
reconstruction attribute a request's database time to exactly one
replica.

Three policies:

* ``round-robin`` — new requests rotate over the replicas in address
  order (ModJK's default ``lbmethod=byrequests``);
* ``least-connections`` — new requests go to the replica with the
  fewest requests currently in flight, ties broken by address order
  (ModJK's ``bybusyness``); needs an in-flight probe wired by
  :class:`~repro.ntier.system.NTierSystem`;
* ``seeded-random`` — new requests draw a replica from a dedicated RNG
  stream, so the choice is deterministic per ``(seed, request)`` and
  never perturbs any other stream.

With one replica every policy degenerates to "the replica", so the
default deployment's behaviour (and its warehouse bytes) is unchanged.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.common.errors import ConfigError

__all__ = ["DISPATCH_POLICIES", "LoadBalancer"]

#: Dispatch policies a :class:`~repro.ntier.system.SystemConfig` may name.
DISPATCH_POLICIES = ("round-robin", "least-connections", "seeded-random")

#: Sticky assignments are pruned oldest-first past this bound.  Requests
#: live milliseconds, so anything this old has long completed; the bound
#: keeps week-long simulations from accreting one entry per request.
_STICKY_BOUND = 131072


class LoadBalancer:
    """Per-server dispatcher over a fixed downstream replica list.

    Parameters
    ----------
    policy:
        One of :data:`DISPATCH_POLICIES`.
    targets:
        Downstream replica addresses, in deterministic order.
    rng:
        Dedicated stream for ``seeded-random`` (unused otherwise).
    inflight:
        ``address -> outstanding requests`` probe for
        ``least-connections``; wired after construction because the
        downstream servers do not exist yet when the upstream tier is
        built.
    """

    def __init__(
        self,
        policy: str,
        targets: list[str],
        rng: random.Random | None = None,
        inflight: Callable[[str], float] | None = None,
    ) -> None:
        if policy not in DISPATCH_POLICIES:
            raise ConfigError(
                f"unknown dispatch policy {policy!r}; "
                f"expected one of {DISPATCH_POLICIES}"
            )
        if policy == "seeded-random" and rng is None:
            raise ConfigError("seeded-random dispatch needs an rng stream")
        self.policy = policy
        self.targets = list(targets)
        self.rng = rng
        self.inflight = inflight
        self._counter = 0
        #: ``(request_id, branch) -> target`` sticky assignments.
        self._sticky: dict[tuple[str, int], str] = {}

    def pick(self, request_id: str, branch: int = 0) -> str:
        """The replica serving ``request_id`` (branch-distinct in fan-out).

        The first call for a ``(request, branch)`` assigns a replica by
        policy; repeats return the same one.
        """
        if not self.targets:
            raise ConfigError("load balancer has no downstream targets")
        if len(self.targets) == 1:
            return self.targets[0]
        key = (request_id, branch)
        target = self._sticky.get(key)
        if target is None:
            target = self._assign()
            if len(self._sticky) >= _STICKY_BOUND:
                self._prune()
            self._sticky[key] = target
        return target

    def _assign(self) -> str:
        if self.policy == "round-robin":
            target = self.targets[self._counter % len(self.targets)]
            self._counter += 1
            return target
        if self.policy == "least-connections":
            if self.inflight is None:
                raise ConfigError(
                    "least-connections dispatch has no in-flight probe wired"
                )
            # min() keeps the first of equals, so ties resolve by
            # address order — deterministic under any replica count.
            return min(self.targets, key=self.inflight)
        assert self.rng is not None  # validated in the constructor
        return self.targets[self.rng.randrange(len(self.targets))]

    def _prune(self) -> None:
        """Drop the oldest half of the sticky map (dict order = insertion)."""
        for key in list(self._sticky)[: _STICKY_BOUND // 2]:
            del self._sticky[key]

    def assignments(self) -> dict[tuple[str, int], str]:
        """A snapshot of the sticky map (tests inspect the spread)."""
        return dict(self._sticky)
