"""The tier-server base class.

A :class:`TierServer` is one component server in the n-tier pipeline:
it owns a worker pool on a node, listens on its bus inbox, and serves
each message with a tier-specific :meth:`work` generator.  The base
class is responsible for everything the paper's event mScopeMonitors
observe — recording the four boundary timestamps, maintaining the
ground-truth concurrency series, dispatching instrumentation hooks, and
writing the component's native log line for every served request.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.common.errors import SimulationError
from repro.common.records import BoundaryRecord, DownstreamCall
from repro.common.timebase import WallClock
from repro.ntier.balancer import LoadBalancer
from repro.ntier.hardware import CumulativeCounter
from repro.ntier.hooks import HookDispatcher
from repro.ntier.messages import Message, NetworkBus
from repro.ntier.node import Node
from repro.ntier.request import Request
from repro.sim.engine import Engine
from repro.sim.tracking import StepSeries

__all__ = ["TierServer", "LineFormatter"]

#: Renders the native log line for one served request (``None`` = no line).
LineFormatter = Callable[["TierServer", Request, BoundaryRecord, Any], "str | None"]


class TierServer:
    """One component server (Apache, Tomcat, C-JDBC, or MySQL).

    Parameters
    ----------
    engine:
        The simulation engine.
    tier:
        Tier name, also the bus address (e.g. ``"apache"``).
    node:
        The node this server runs on.
    bus:
        The inter-tier network.
    workers:
        Worker-pool size (threads / connections).
    downstream:
        Bus address(es) of the next tier — a single address, a list of
        replica addresses (balanced round-robin, the way ModJK spreads
        Tomcats and C-JDBC spreads database backends), or ``None`` for
        the last tier.
    wall_clock:
        Wall-clock mapping used when rendering native log lines.
    rng:
        Stream for server-local randomness (e.g. buffer-pool misses).
    address:
        Bus address of *this* server; defaults to the tier name.
        Replicas use ``"<tier>#<n>"``.
    balancer:
        Replica dispatch policy over ``downstream``; defaults to a
        sticky round-robin :class:`~repro.ntier.balancer.LoadBalancer`.
    """

    #: Name of the native log stream this tier writes to.
    log_stream = "server_log"

    def __init__(
        self,
        engine: Engine,
        tier: str,
        node: Node,
        bus: NetworkBus,
        workers: int,
        downstream: "str | list[str] | None",
        wall_clock: WallClock,
        rng: random.Random,
        address: str | None = None,
        balancer: LoadBalancer | None = None,
    ) -> None:
        self.engine = engine
        self.tier = tier
        self.address = address if address is not None else tier
        self.node = node
        self.bus = bus
        if downstream is None:
            self.downstream_targets: list[str] = []
        elif isinstance(downstream, str):
            self.downstream_targets = [downstream]
        else:
            self.downstream_targets = list(downstream)
        self.balancer = (
            balancer
            if balancer is not None
            else LoadBalancer("round-robin", self.downstream_targets)
        )
        self.wall_clock = wall_clock
        self.rng = rng
        self.inbox = bus.register(self.address)
        from repro.sim.resources import Resource

        self.workers = Resource(engine, workers, name=f"{self.address}.workers")
        self.hooks = HookDispatcher()
        self.concurrency = StepSeries(initial=0)
        self.completed = CumulativeCounter()
        self.errors = CumulativeCounter()
        self._line_formatter: LineFormatter = type(self).default_line_formatter
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        """Begin accepting messages (idempotent)."""
        if self._started:
            return
        self._started = True
        self.engine.process(self._listen())

    def _listen(self):
        while True:
            message: Message = yield self.inbox.get()
            boundary = BoundaryRecord(
                request_id=message.request.request_id,
                tier=self.tier,
                node=self.node.name,
                upstream_arrival=self.engine.now,
            )
            message.request.trace.add_visit(boundary)
            self.concurrency.adjust(self.engine.now, +1)
            self.engine.process(self._serve(message, boundary))

    def _serve(self, message: Message, boundary: BoundaryRecord):
        claim = self.workers.acquire()
        yield claim
        try:
            try:
                yield from self.hooks.upstream_arrival(
                    self, message.request, boundary
                )
                payload = yield from self.work(message, boundary)
                yield from self.hooks.upstream_departure(
                    self, message.request, boundary
                )
            except SimulationError:
                raise  # kernel-level inconsistencies must not be masked
            except Exception as exc:
                # A crashing handler answers like a real server: the
                # request errors out, the worker survives, and the
                # upstream caller is unblocked instead of hanging.
                payload = {"error": f"{type(exc).__name__}: {exc}"}
                self.errors.add(self.engine.now, 1)
            boundary.upstream_departure = self.engine.now
            self.concurrency.adjust(self.engine.now, -1)
            self._write_log_line(message.request, boundary, message.payload)
            self.bus.reply(message, payload)
            self.completed.add(self.engine.now, 1)
        finally:
            self.workers.release(claim)

    # ------------------------------------------------------------------
    # tier-specific behaviour

    def work(self, message: Message, boundary: BoundaryRecord):
        """Serve one message; returns the reply payload (generator)."""
        raise NotImplementedError
        yield  # pragma: no cover

    @property
    def downstream(self) -> str | None:
        """First downstream address (``None`` on the last tier)."""
        return self.downstream_targets[0] if self.downstream_targets else None

    def _pick_downstream(self, request: Request, branch: int = 0) -> str:
        """The dispatch policy's sticky replica choice for ``request``."""
        return self.balancer.pick(request.request_id, branch)

    def call_downstream(
        self, request: Request, boundary: BoundaryRecord, payload: Any = None
    ):
        """Forward to the downstream tier and wait for its reply.

        Records the downstream sending/receiving pair on ``boundary``
        and fires the corresponding hooks.
        """
        if not self.downstream_targets:
            raise SimulationError(f"tier {self.tier!r} has no downstream")
        target = self._pick_downstream(request)
        return (
            yield from self._call_target(request, boundary, payload, target)
        )

    def call_fanout(
        self, request: Request, boundary: BoundaryRecord, payloads: list
    ):
        """Issue one downstream call per payload *concurrently* and join.

        The fan-out half of a fan-out/fan-in call graph: every branch
        is its own process, branch *i* dispatched by the balancer under
        branch key *i* (so round-robin spreads the branches over the
        replicas), and the caller resumes only after every branch's
        reply — the join.  Returns the replies in payload order.
        """
        if not self.downstream_targets:
            raise SimulationError(f"tier {self.tier!r} has no downstream")
        results: list[Any] = [None] * len(payloads)
        branches = [
            self.engine.process(
                self._fanout_branch(
                    request,
                    boundary,
                    payload,
                    self._pick_downstream(request, branch=index),
                    results,
                    index,
                )
            )
            for index, payload in enumerate(payloads)
        ]
        for branch in branches:
            yield branch
        return results

    def _fanout_branch(
        self,
        request: Request,
        boundary: BoundaryRecord,
        payload: Any,
        target: str,
        results: list,
        index: int,
    ):
        results[index] = yield from self._call_target(
            request, boundary, payload, target
        )

    def _call_target(
        self, request: Request, boundary: BoundaryRecord, payload: Any, target: str
    ):
        yield from self.hooks.downstream_sending(self, request, target)
        sending = self.engine.now
        reply_event = self.bus.send(request, self.address, target, payload)
        result = yield reply_event
        boundary.record_call(DownstreamCall(target, sending, self.engine.now))
        yield from self.hooks.downstream_receiving(self, request, target)
        return result

    # ------------------------------------------------------------------
    # native logging

    def default_line_formatter(
        self, request: Request, boundary: BoundaryRecord, payload: Any
    ) -> str | None:
        """The unmodified component's log line (overridden per tier)."""
        return None

    def set_line_formatter(self, formatter: LineFormatter) -> None:
        """Replace the native log formatter (how event monitors instrument)."""
        self._line_formatter = formatter

    def reset_line_formatter(self) -> None:
        """Restore the unmodified component's formatter."""
        self._line_formatter = type(self).default_line_formatter

    def _write_log_line(
        self, request: Request, boundary: BoundaryRecord, payload: Any
    ) -> None:
        line = self._line_formatter(self, request, boundary, payload)
        if line is not None:
            self.node.facility(self.log_stream).write_line(line)

    # ------------------------------------------------------------------
    # observability

    def utilization(self, start, stop) -> float:
        """Worker-pool utilization over a window."""
        return self.workers.utilization(start, stop)

    def throughput(self, start, stop) -> float:
        """Requests completed per second over a window."""
        from repro.common.timebase import US_PER_SEC

        return self.completed.between(start, stop) * US_PER_SEC / (stop - start)
