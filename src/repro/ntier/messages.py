"""Inter-tier messaging.

Tiers exchange :class:`Message` objects over a :class:`NetworkBus` with
a fixed one-way latency.  The bus supports passive *taps*: observers
that see every request and reply message with wire timestamps but never
perturb delivery.  The SysViz baseline (the paper's hardware network
tracer) is implemented as such a tap.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import TYPE_CHECKING, Any, Protocol

from repro.common.errors import SimulationError
from repro.common.timebase import Micros
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.resources import Store

if TYPE_CHECKING:
    from repro.ntier.request import Request

__all__ = ["Message", "NetworkBus", "BusTap"]


@dataclasses.dataclass(slots=True)
class Message:
    """One inter-tier message (a request hop or its reply).

    ``payload`` carries hop-specific data (e.g. the
    :class:`~repro.rubbos.interactions.QuerySpec` for a SQL hop).
    ``reply_to`` is the event the sender waits on; the receiving tier
    answers through :meth:`NetworkBus.reply`.
    """

    kind: str  # "request" or "reply"
    request: "Request"
    src: str
    dst: str
    payload: Any = None
    reply_to: Event | None = None
    sent_at: Micros | None = None
    delivered_at: Micros | None = None
    serial: int = -1


class BusTap(Protocol):
    """Passive observer of every message on the bus."""

    def on_message(self, message: Message) -> None:
        """Called at wire time; must not mutate the message."""
        ...


class NetworkBus:
    """Delivers messages between tiers with fixed one-way latency.

    Parameters
    ----------
    engine:
        The simulation engine.
    latency_us:
        One-way network latency applied to every hop.
    """

    def __init__(self, engine: Engine, latency_us: Micros = 150) -> None:
        if latency_us < 0:
            raise SimulationError(f"negative bus latency: {latency_us}")
        self.engine = engine
        self.latency_us = latency_us
        self._inboxes: dict[str, Store] = {}
        self._taps: list[BusTap] = []
        self._serial = itertools.count()
        #: Per-address added one-way latency (noisy-neighbor jitter).
        self._extra_latency: dict[str, Micros] = {}

    def set_extra_latency(self, address: str, extra_us: Micros | None) -> None:
        """Add (or clear, with ``None``/0) latency on one endpoint's links.

        Every hop into *or* out of ``address`` pays the extra one-way
        delay — how a noisy neighbor saturating a shared NIC looks to
        the tiers talking to the afflicted node.
        """
        if not extra_us:
            self._extra_latency.pop(address, None)
            return
        if extra_us < 0:
            raise SimulationError(f"negative extra latency: {extra_us}")
        self._extra_latency[address] = extra_us

    def _latency(self, src: str, dst: str) -> Micros:
        """One-way latency for a hop, including per-endpoint jitter."""
        return (
            self.latency_us
            + self._extra_latency.get(src, 0)
            + self._extra_latency.get(dst, 0)
        )

    def register(self, tier: str) -> Store:
        """Create and return the inbox for ``tier``."""
        if tier in self._inboxes:
            raise SimulationError(f"tier {tier!r} already registered on the bus")
        inbox = Store(self.engine, name=f"{tier}.inbox")
        self._inboxes[tier] = inbox
        return inbox

    def inbox(self, tier: str) -> Store:
        """The inbox of a registered tier."""
        try:
            return self._inboxes[tier]
        except KeyError:
            raise SimulationError(f"unknown tier {tier!r}") from None

    def add_tap(self, tap: BusTap) -> None:
        """Attach a passive observer (e.g. the SysViz tracer)."""
        self._taps.append(tap)

    def send(
        self,
        request: "Request",
        src: str,
        dst: str,
        payload: Any = None,
    ) -> Event:
        """Send a request hop from ``src`` to ``dst``.

        Returns the reply event the caller should yield on; its value is
        the reply payload.
        """
        inbox = self.inbox(dst)
        reply_to = Event(self.engine)
        message = Message(
            kind="request",
            request=request,
            src=src,
            dst=dst,
            payload=payload,
            reply_to=reply_to,
            sent_at=self.engine.now,
            serial=next(self._serial),
        )
        self._notify_taps(message)
        delivery = self.engine.timeout(self._latency(src, dst))
        delivery.callbacks.append(lambda _e: self._deliver(message, inbox))
        return reply_to

    def _deliver(self, message: Message, inbox: Store) -> None:
        message.delivered_at = self.engine.now
        inbox.put(message)

    def reply(self, original: Message, payload: Any = None) -> None:
        """Answer a request hop; fires ``original.reply_to`` after latency."""
        if original.reply_to is None:
            raise SimulationError("message has no reply channel")
        reply = Message(
            kind="reply",
            request=original.request,
            src=original.dst,
            dst=original.src,
            payload=payload,
            sent_at=self.engine.now,
            serial=next(self._serial),
        )
        self._notify_taps(reply)
        original.reply_to.succeed(
            payload, delay=self._latency(original.dst, original.src)
        )

    def _notify_taps(self, message: Message) -> None:
        for tap in self._taps:
            tap.on_message(message)
