"""Hardware resource models for component-server nodes.

Each simulated node owns a :class:`Cpu` (a pool of cores with
per-category time accounting), a :class:`Disk` (a single service
channel with bandwidth and seek latency), and a :class:`PageCache`
(dirty-byte tracking feeding the dirty-page-flush fault model).

Accounting is deliberately explicit: the resource mScopeMonitors read
these counters exactly the way SAR or IOstat read ``/proc`` — as
cumulative totals differenced over a sampling window.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.common.errors import SimulationError
from repro.common.timebase import Micros, US_PER_SEC, ms
from repro.sim.engine import Engine
from repro.sim.resources import Resource
from repro.sim.tracking import StepSeries

__all__ = ["CumulativeCounter", "Cpu", "Disk", "PageCache", "CPU_CATEGORIES"]

#: CPU time categories, matching what SAR reports.  The paper's Fig 10
#: aggregates user + system + iowait; ``steal`` exists for the VM
#: consolidation root cause the paper cites (its ref [5]).
CPU_CATEGORIES = ("user", "system", "iowait", "steal")


class CumulativeCounter:
    """A monotone cumulative counter readable over windows.

    Mirrors ``/proc`` semantics: monitors sample the running total and
    difference consecutive samples.
    """

    __slots__ = ("_times", "_totals")

    def __init__(self) -> None:
        self._times: list[Micros] = [0]
        self._totals: list[float] = [0.0]

    def add(self, time: Micros, amount: float) -> None:
        """Add ``amount`` to the counter at ``time``."""
        if amount < 0:
            raise SimulationError(f"counter decrement not allowed: {amount}")
        last = self._times[-1]
        if time < last:
            raise SimulationError(f"counter add out of order: {time} < {last}")
        if time == last:
            self._totals[-1] += amount
        else:
            self._times.append(time)
            self._totals.append(self._totals[-1] + amount)

    @property
    def total(self) -> float:
        """The current running total."""
        return self._totals[-1]

    def total_at(self, time: Micros) -> float:
        """The running total as of ``time``."""
        index = bisect_right(self._times, time) - 1
        if index < 0:
            return 0.0
        return self._totals[index]

    def between(self, start: Micros, stop: Micros) -> float:
        """Amount accumulated in ``(start, stop]``."""
        if stop < start:
            raise SimulationError(f"counter window reversed: ({start}, {stop}]")
        return self.total_at(stop) - self.total_at(start)


class Cpu:
    """A pool of identical cores with per-category time accounting.

    Work is consumed in quanta so that a kernel-priority burst (e.g.
    the dirty-page flusher) interleaves with request processing at
    millisecond granularity instead of blocking a core for the whole
    burst.

    Parameters
    ----------
    engine:
        The simulation engine.
    cores:
        Number of cores.
    name:
        Diagnostic name, usually ``"<node>.cpu"``.
    quantum:
        Default scheduling quantum in microseconds.
    """

    #: Priority used by kernel activity (flusher daemons); lower is served first.
    KERNEL_PRIORITY = 0
    #: Priority used by ordinary request processing.
    USER_PRIORITY = 5

    def __init__(
        self,
        engine: Engine,
        cores: int,
        name: str = "cpu",
        quantum: Micros = ms(1),
    ) -> None:
        if quantum <= 0:
            raise SimulationError(f"cpu quantum must be positive: {quantum}")
        self.engine = engine
        self.cores = cores
        self.name = name
        self.quantum = quantum
        self.resource = Resource(engine, cores, name=name)
        self.accounting: dict[str, CumulativeCounter] = {
            category: CumulativeCounter() for category in CPU_CATEGORIES
        }
        #: Relative clock speed; DVFS faults lower it below 1.0, which
        #: stretches the wall time of every consumed quantum.
        self.speed = 1.0

    def consume(
        self,
        duration: Micros,
        category: str = "user",
        priority: int | None = None,
        quantum: Micros | None = None,
    ):
        """Occupy one core for ``duration`` µs, sliced into quanta.

        This is a process generator: ``yield from cpu.consume(...)``.
        """
        if category not in self.accounting:
            raise SimulationError(f"unknown CPU category {category!r}")
        if duration < 0:
            raise SimulationError(f"negative CPU demand: {duration}")
        if priority is None:
            priority = self.USER_PRIORITY
        step = quantum if quantum is not None else self.quantum
        remaining = duration
        counter = self.accounting[category]
        while remaining > 0:
            piece = min(step, remaining)
            claim = self.resource.acquire(priority=priority)
            yield claim
            # A lowered clock (DVFS) stretches the wall time the demand
            # occupies; the accounted busy time is the wall time, as
            # /proc would report it.
            wall = piece if self.speed >= 1.0 else round(piece / self.speed)
            yield self.engine.timeout(wall)
            self.resource.release(claim)
            counter.add(self.engine.now, wall)
            remaining -= piece

    def seize(self, priority: int | None = None):
        """Claim one core without the quantum-release discipline.

        Returns the acquire event to ``yield`` on.  The caller holds
        the core until it calls :meth:`release` — this is how kernel
        activity that throttles everything else (direct reclaim, a
        stop-the-world pause) is modelled.  Account consumed time with
        :meth:`charge` while holding.
        """
        if priority is None:
            priority = self.KERNEL_PRIORITY
        return self.resource.acquire(priority=priority)

    def release(self, claim) -> None:
        """Release a core claimed with :meth:`seize`."""
        self.resource.release(claim)

    def charge(self, category: str, amount: Micros) -> None:
        """Account ``amount`` µs to ``category`` without occupying a core.

        Used for iowait: the CPU is idle while a thread blocks on disk,
        but SAR still reports the blocked time as %iowait.
        """
        if category not in self.accounting:
            raise SimulationError(f"unknown CPU category {category!r}")
        self.accounting[category].add(self.engine.now, amount)

    def utilization(self, start: Micros, stop: Micros) -> float:
        """Fraction of core capacity occupied over ``[start, stop)``."""
        return self.resource.utilization(start, stop)

    def category_pct(self, category: str, start: Micros, stop: Micros) -> float:
        """Percentage of capacity accounted to ``category`` over a window.

        ``iowait`` is capped at the window's idle share: many threads
        may block on the same disk simultaneously, but /proc-style
        %iowait can never exceed the time the CPU actually sat idle.
        """
        if stop <= start:
            raise SimulationError(f"cpu window empty: [{start}, {stop})")
        capacity = (stop - start) * self.cores
        used = self.accounting[category].between(start, stop)
        pct = 100.0 * used / capacity
        if category == "iowait":
            busy = sum(
                100.0 * self.accounting[c].between(start, stop) / capacity
                for c in ("user", "system", "steal")
            )
            pct = min(pct, max(0.0, 100.0 - busy))
        return pct

    def aggregate_pct(self, start: Micros, stop: Micros) -> float:
        """user + system + iowait percentage (the paper's Fig 10 metric)."""
        return min(
            100.0, sum(self.category_pct(c, start, stop) for c in CPU_CATEGORIES)
        )


class Disk:
    """A disk with one service channel, seek latency, and bandwidth.

    Read/write byte counters mirror what IOstat derives from
    ``/proc/diskstats``; utilization comes from the busy integral of
    the service channel.
    """

    def __init__(
        self,
        engine: Engine,
        name: str = "disk",
        bandwidth_bytes_per_sec: int = 100 * 1024 * 1024,
        seek_us: Micros = 200,
    ) -> None:
        if bandwidth_bytes_per_sec <= 0:
            raise SimulationError("disk bandwidth must be positive")
        self.engine = engine
        self.name = name
        self.bandwidth = bandwidth_bytes_per_sec
        self.seek_us = seek_us
        self.resource = Resource(engine, 1, name=name)
        self.read_bytes = CumulativeCounter()
        self.write_bytes = CumulativeCounter()
        self.read_ops = CumulativeCounter()
        self.write_ops = CumulativeCounter()

    def transfer_duration(self, nbytes: int) -> Micros:
        """Service time for one I/O of ``nbytes``."""
        if nbytes < 0:
            raise SimulationError(f"negative I/O size: {nbytes}")
        return self.seek_us + (nbytes * US_PER_SEC) // self.bandwidth

    def read(self, nbytes: int, priority: int = 5):
        """Perform a synchronous read (process generator)."""
        yield from self._io(nbytes, self.read_bytes, self.read_ops, priority)

    def write(self, nbytes: int, priority: int = 5):
        """Perform a synchronous write (process generator)."""
        yield from self._io(nbytes, self.write_bytes, self.write_ops, priority)

    def _io(
        self,
        nbytes: int,
        byte_counter: CumulativeCounter,
        op_counter: CumulativeCounter,
        priority: int,
    ):
        duration = self.transfer_duration(nbytes)
        claim = self.resource.acquire(priority=priority)
        yield claim
        yield self.engine.timeout(duration)
        self.resource.release(claim)
        byte_counter.add(self.engine.now, nbytes)
        op_counter.add(self.engine.now, 1)

    def utilization(self, start: Micros, stop: Micros) -> float:
        """Fraction of time the disk was servicing I/O over ``[start, stop)``."""
        return self.resource.utilization(start, stop)

    @property
    def queue_series(self) -> StepSeries:
        """Step series of the I/O wait-queue length."""
        return self.resource.queue_series


class PageCache:
    """Dirty-page tracking for one node.

    Buffered writes (log appends, application file writes) dirty pages;
    the kernel flusher cleans them.  The dirty level is what Collectl's
    memory subsystem reports and what Fig 8d plots.
    """

    def __init__(self, engine: Engine, name: str = "pagecache") -> None:
        self.engine = engine
        self.name = name
        self.dirty_series = StepSeries(initial=0)

    @property
    def dirty_bytes(self) -> int:
        """Current dirty-page volume in bytes."""
        return int(self.dirty_series.current)

    def dirty(self, nbytes: int) -> None:
        """Mark ``nbytes`` of freshly written data dirty."""
        if nbytes < 0:
            raise SimulationError(f"negative dirty amount: {nbytes}")
        self.dirty_series.adjust(self.engine.now, nbytes)

    def clean(self, nbytes: int) -> int:
        """Write back up to ``nbytes``; returns the amount actually cleaned."""
        if nbytes < 0:
            raise SimulationError(f"negative clean amount: {nbytes}")
        actual = min(nbytes, self.dirty_bytes)
        if actual:
            self.dirty_series.adjust(self.engine.now, -actual)
        return actual
