"""The four concrete tiers of the RUBBoS deployment.

Apache (web) → Tomcat (application) → C-JDBC (middleware) → MySQL
(database), exactly the pipeline in the paper's Figure 1.  Each tier
implements its :meth:`~repro.ntier.server.TierServer.work` generator
against the node's hardware models and writes its unmodified native
log line; the event mScopeMonitors later *replace* the line formatter
with the instrumented format and add their hook costs.
"""

from __future__ import annotations

from repro.common.records import BoundaryRecord
from repro.logfmt.apache import format_plain_access
from repro.logfmt.cjdbc import format_plain_cjdbc
from repro.logfmt.mysql import format_plain_binlog
from repro.logfmt.tomcat import format_plain_tomcat
from repro.ntier.messages import Message
from repro.ntier.server import TierServer
from repro.rubbos.interactions import QuerySpec

__all__ = ["ApacheServer", "TomcatServer", "CjdbcServer", "MySqlServer", "TIER_ORDER"]

#: Upstream-to-downstream tier order of the standard deployment.
TIER_ORDER = ("apache", "tomcat", "cjdbc", "mysql")


class ApacheServer(TierServer):
    """The web tier: parses the request, proxies to Tomcat via ModJK."""

    log_stream = "access_log"

    def work(self, message: Message, boundary: BoundaryRecord):
        interaction = message.request.interaction
        # Request parsing + static handling before the ModJK forward.
        yield from self.node.cpu.consume(int(interaction.apache_cpu_us * 0.6))
        reply = yield from self.call_downstream(message.request, boundary)
        # Response assembly and socket write after the proxy returns.
        yield from self.node.cpu.consume(int(interaction.apache_cpu_us * 0.4))
        return reply

    def default_line_formatter(self, request, boundary, payload):
        return format_plain_access(
            self.wall_clock,
            request.plain_url,
            boundary,
            request.interaction.response_bytes,
        )


class TomcatServer(TierServer):
    """The application tier: runs the servlet and issues its SQL.

    A plain interaction issues its statements sequentially; a
    ``fanout`` interaction issues them concurrently — one branch per
    statement, spread over the downstream replicas by the balancer —
    and joins on all replies before assembling the response.
    """

    log_stream = "catalina_log"

    def work(self, message: Message, boundary: BoundaryRecord):
        interaction = message.request.interaction
        yield from self.node.cpu.consume(int(interaction.tomcat_cpu_us * 0.5))
        rows = 0
        if interaction.fanout and len(interaction.queries) > 1:
            results = yield from self.call_fanout(
                message.request, boundary, list(interaction.queries)
            )
            rows = sum(r for r in results if isinstance(r, int))
        else:
            for query in interaction.queries:
                result = yield from self.call_downstream(
                    message.request, boundary, payload=query
                )
                rows += result if isinstance(result, int) else 0
        yield from self.node.cpu.consume(int(interaction.tomcat_cpu_us * 0.5))
        return rows

    def default_line_formatter(self, request, boundary, payload):
        return format_plain_tomcat(
            self.wall_clock, request.interaction.name, boundary
        )


class CjdbcServer(TierServer):
    """The middleware tier: routes each statement to the database backend."""

    log_stream = "controller_log"

    def work(self, message: Message, boundary: BoundaryRecord):
        query: QuerySpec = message.payload
        yield from self.node.cpu.consume(query.cjdbc_cpu_us)
        result = yield from self.call_downstream(
            message.request, boundary, payload=query
        )
        return result

    def default_line_formatter(self, request, boundary, payload):
        query: QuerySpec = payload
        return format_plain_cjdbc(self.wall_clock, boundary, query.statement)


class MySqlServer(TierServer):
    """The database tier: executes queries against buffer pool and disk.

    Reads miss the buffer pool with the query's ``miss_ratio`` and then
    fetch from disk; writes append a synchronous commit record to the
    database log.  While a background log flush is in flight (scenario
    A's :class:`~repro.ntier.faults.DBLogFlushFault`), commits wait on
    the flush barrier — group-commit semantics — and buffer-pool misses
    queue behind the flush's large sequential write on the disk.
    """

    log_stream = "mysql_log"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._log_flush_barrier = None
        #: When set, replaces every query's ``miss_ratio`` — a cache
        #: stampede forces 1.0 (everything misses to disk).
        self.miss_override: float | None = None
        #: Scales the bytes fetched per buffer-pool miss (a stampede's
        #: un-cached reads are full-table, not hot-page, sized).
        self.read_multiplier: float = 1.0

    def begin_log_flush(self):
        """Raise the commit barrier; returns the event to succeed at flush end."""
        if self._log_flush_barrier is not None and not self._log_flush_barrier.triggered:
            return self._log_flush_barrier
        self._log_flush_barrier = self.engine.event()
        return self._log_flush_barrier

    def end_log_flush(self) -> None:
        """Release the commit barrier (idempotent)."""
        if self._log_flush_barrier is not None and not self._log_flush_barrier.triggered:
            self._log_flush_barrier.succeed()
        self._log_flush_barrier = None

    def work(self, message: Message, boundary: BoundaryRecord):
        query: QuerySpec = message.payload
        yield from self.node.cpu.consume(query.mysql_cpu_us)
        miss_ratio = (
            query.miss_ratio if self.miss_override is None else self.miss_override
        )
        if query.read_bytes > 0 and self.rng.random() < miss_ratio:
            started = self.engine.now
            yield from self.node.disk.read(
                int(query.read_bytes * self.read_multiplier), priority=5
            )
            self.node.cpu.charge("iowait", self.engine.now - started)
        if query.is_write:
            started = self.engine.now
            barrier = self._log_flush_barrier
            if barrier is not None and not barrier.triggered:
                yield barrier
            yield from self.node.disk.write(query.commit_bytes, priority=5)
            self.node.cpu.charge("iowait", self.engine.now - started)
            self.node.page_cache.dirty(query.commit_bytes)
        return 1

    def default_line_formatter(self, request, boundary, payload):
        query: QuerySpec = payload
        return format_plain_binlog(self.wall_clock, boundary, query.statement)
