"""The vector kernel's client: flat callbacks over calendar rows.

:class:`VectorClientEmulator` drives the same user population as the
scalar :class:`~repro.ntier.client.ClientEmulator`, but each user's
session is a state machine over typed :class:`~repro.sim.vector.EventCalendar`
rows instead of a generator :class:`~repro.sim.process.Process` — no
per-user generator frame, no per-sleep ``Timeout`` object, no heap
churn for the client's timer traffic (the dominant event class at
scale).

Dump identity with the scalar client is engineered, not hoped for:

* every calendar row is scheduled exactly where the scalar client
  would allocate a sequence number (process bootstrap → BOOT row,
  ramp timeout → WAKE row, think timeout → ISSUE row), drawn from the
  engine's one shared counter;
* randomness comes from the *same* :class:`random.Random` substreams
  (``client.think`` / ``client.mix`` / ``client.ramp``), consumed in
  the same order, so every think time, ramp offset, and interaction
  choice is bit-identical.

Servers, monitors, faults, and the bus are untouched scalar code, so a
``kernel="vector"`` run produces byte-identical monitor logs — and an
``iterdump_content()``-identical warehouse — to ``kernel="scalar"``.
"""

from __future__ import annotations

from repro.common.ids import RequestIdGenerator
from repro.common.records import RequestTrace
from repro.common.rng import RngStreams
from repro.ntier.client import ClientEmulator
from repro.ntier.messages import NetworkBus
from repro.ntier.request import Request
from repro.rubbos.workload import WorkloadSpec
from repro.sim.vector import VectorEngine

__all__ = ["VectorClientEmulator"]

#: Calendar channel codes (slot = user index).
BOOT = 1  # mirrors the scalar process-bootstrap event
WAKE = 2  # mirrors the ramp-up timeout
ISSUE = 3  # mirrors the think timeout


class VectorClientEmulator(ClientEmulator):
    """Client emulator running on the vector kernel's event calendar.

    Accepts the same constructor arguments as the scalar emulator but
    requires a :class:`~repro.sim.vector.VectorEngine`.  The public
    surface (``collector``, ``start()``) is inherited unchanged.
    """

    def __init__(
        self,
        engine: VectorEngine,
        bus: NetworkBus,
        workload: WorkloadSpec,
        streams: RngStreams,
        id_generator: RequestIdGenerator,
        first_tier: "str | list[str]" = "apache",
    ) -> None:
        if not isinstance(engine, VectorEngine):
            raise TypeError(
                "VectorClientEmulator requires a VectorEngine "
                f"(got {type(engine).__name__})"
            )
        super().__init__(engine, bus, workload, streams, id_generator, first_tier)
        self._sessions: list = []
        engine.register_channel(BOOT, self._on_boot)
        engine.register_channel(WAKE, self._on_wake)
        engine.register_channel(ISSUE, self._on_issue)

    def start(self) -> None:
        """Launch every emulated user as one BOOT calendar row each.

        The scalar client allocates one agenda sequence per user for
        the process-bootstrap event; the BOOT row claims exactly that
        position.
        """
        if self._started:
            return
        self._started = True
        engine: VectorEngine = self.engine
        for slot in range(self.workload.users):
            self._sessions.append(
                self._transitions.new_session()
                if self._transitions is not None
                else None
            )
            engine.schedule_row(BOOT, slot)

    # ------------------------------------------------------------------
    # state machine (each handler mirrors one scalar generator resume)

    def _on_boot(self, time: int, slot: int) -> None:
        # Scalar: first resume draws the ramp offset and sleeps, or
        # falls straight into the think loop when there is no ramp.
        if self.workload.ramp_up_us > 0:
            offset = int(self._ramp_rng.random() * self.workload.ramp_up_us)
            self.engine.schedule_row(WAKE, slot, offset)
        else:
            self._cycle(slot)

    def _on_wake(self, time: int, slot: int) -> None:
        self._cycle(slot)

    def _on_issue(self, time: int, slot: int) -> None:
        self._issue(slot)

    def _cycle(self, slot: int) -> None:
        # Scalar: top of the while-loop — think draw, then the think
        # timeout (skipped when the draw rounds to zero).
        think = self._sample_think()
        if think > 0:
            self.engine.schedule_row(ISSUE, slot, think)
        else:
            self._issue(slot)

    def _issue(self, slot: int) -> None:
        # Mirrors ClientEmulator._one_request draw for draw.
        session = self._sessions[slot]
        if self._transitions is not None and session is not None:
            interaction = self._transitions.advance(session, self._mix_rng)
        else:
            interaction = self.mix.sample(self._mix_rng)
        request_id = self.id_generator.next_id()
        now = self.engine.now
        trace = RequestTrace(request_id, interaction.name, client_send=now)
        request = Request(request_id, interaction, trace, created_at=now)
        target = self.first_tier_addresses[
            self._balance_counter % len(self.first_tier_addresses)
        ]
        self._balance_counter += 1
        reply_event = self.bus.send(request, "client", target)
        # The scalar process yields the reply event (a callback, no
        # sequence allocation); this callback is the same hook.
        reply_event.callbacks.append(
            lambda event, trace=trace, slot=slot: self._on_reply(trace, slot)
        )

    def _on_reply(self, trace: RequestTrace, slot: int) -> None:
        trace.client_receive = self.engine.now
        self.collector.add(trace)
        self._cycle(slot)
