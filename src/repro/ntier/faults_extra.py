"""Additional VSB root causes the paper cites (Section II).

Beyond the two illustrated scenarios, the paper lists further known
causes of VLRT requests: CPU dynamic voltage and frequency scaling
(DVFS) at the architectural layer and virtual-machine consolidation at
the VM layer.  These injectors reproduce them on the testbed so the
monitoring framework can be exercised against the full cause
catalogue.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import ConfigError
from repro.common.timebase import Micros, ms
from repro.ntier.faults import Fault
from repro.ntier.hardware import Cpu
from repro.ntier.node import Node

if TYPE_CHECKING:
    from repro.ntier.system import NTierSystem

__all__ = ["DvfsSlowdownFault", "VmConsolidationFault"]


class DvfsSlowdownFault(Fault):
    """CPU frequency drops for short windows (governor napping).

    Under a power-saving governor, a lull in utilization drops the
    clock; the next request burst then executes at a fraction of the
    nominal speed until the governor ramps back up — a classic
    architectural-layer VSB.

    Parameters
    ----------
    tier:
        The affected tier.
    start_at / period / episodes:
        When the first slowdown begins, the spacing between slowdowns,
        and how many to inject (``None`` = forever).
    slow_duration:
        Length of each reduced-frequency window.
    speed_factor:
        Relative clock during the window (e.g. 0.25 = quarter speed).
    """

    name = "dvfs_slowdown"

    def __init__(
        self,
        tier: str,
        start_at: Micros,
        period: Micros,
        slow_duration: Micros = ms(400),
        speed_factor: float = 0.25,
        episodes: int | None = None,
    ) -> None:
        if not 0.0 < speed_factor < 1.0:
            raise ConfigError(f"speed factor out of (0, 1): {speed_factor}")
        if period <= 0 or slow_duration <= 0:
            raise ConfigError("period and slow_duration must be positive")
        self.tier = tier
        self.start_at = start_at
        self.period = period
        self.slow_duration = slow_duration
        self.speed_factor = speed_factor
        self.episodes = episodes
        self.slow_windows: list[tuple[Micros, Micros]] = []

    def install(self, system: "NTierSystem") -> None:
        node = system.node_for_tier(self.tier)
        system.engine.process(self._run(node))

    def _run(self, node: Node):
        engine = node.engine
        yield engine.timeout(self.start_at)
        injected = 0
        while self.episodes is None or injected < self.episodes:
            started = engine.now
            node.cpu.speed = self.speed_factor
            yield engine.timeout(self.slow_duration)
            node.cpu.speed = 1.0
            self.slow_windows.append((started, engine.now))
            injected += 1
            if self.episodes is not None and injected >= self.episodes:
                break
            yield engine.timeout(self.period)


class VmConsolidationFault(Fault):
    """A co-located VM steals CPU for short bursts.

    Consolidation places other tenants on the same physical host; when
    a neighbour becomes active, the hypervisor takes cores away and
    the guest's SAR shows %steal — the VM-layer VSB the paper cites.

    Parameters
    ----------
    tier:
        The affected tier.
    stolen_cores:
        How many cores the neighbour takes during a burst.
    burst:
        Length of each interference burst.
    period:
        Spacing between bursts.
    """

    name = "vm_consolidation"

    def __init__(
        self,
        tier: str,
        start_at: Micros,
        period: Micros,
        burst: Micros = ms(300),
        stolen_cores: int = 0,
        episodes: int | None = None,
    ) -> None:
        if period <= 0 or burst <= 0:
            raise ConfigError("period and burst must be positive")
        if stolen_cores < 0:
            raise ConfigError("stolen_cores must be non-negative")
        self.tier = tier
        self.start_at = start_at
        self.period = period
        self.burst = burst
        self.stolen_cores = stolen_cores
        self.episodes = episodes
        self.steal_windows: list[tuple[Micros, Micros]] = []

    def install(self, system: "NTierSystem") -> None:
        node = system.node_for_tier(self.tier)
        # stolen_cores=0 means "all of them".
        if self.stolen_cores == 0:
            self.stolen_cores = node.spec.cores
        system.engine.process(self._run(node))

    def _run(self, node: Node):
        engine = node.engine
        yield engine.timeout(self.start_at)
        injected = 0
        while self.episodes is None or injected < self.episodes:
            started = engine.now
            thieves = [
                engine.process(self._steal_core(node))
                for _ in range(min(self.stolen_cores, node.spec.cores))
            ]
            for thief in thieves:
                yield thief
            self.steal_windows.append((started, engine.now))
            injected += 1
            if self.episodes is not None and injected >= self.episodes:
                break
            yield engine.timeout(self.period)

    def _steal_core(self, node: Node):
        # The hypervisor preempts the guest outright: hold the core at
        # kernel priority, accounting steal time in quantum-sized
        # pieces so sampling windows see it spread over the burst.
        claim = node.cpu.seize(priority=Cpu.KERNEL_PRIORITY)
        yield claim
        try:
            remaining = self.burst
            while remaining > 0:
                piece = min(node.cpu.quantum, remaining)
                yield node.engine.timeout(piece)
                node.cpu.charge("steal", piece)
                remaining -= piece
        finally:
            node.cpu.release(claim)
