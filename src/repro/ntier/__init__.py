"""The n-tier testbed substrate: nodes, tiers, clients, faults, wiring."""

from repro.ntier.client import ClientEmulator, TraceCollector
from repro.ntier.faults import (
    DBLogFlushFault,
    DirtyPageFlushFault,
    Fault,
    GarbageCollectionFault,
)
from repro.ntier.faults_extra import DvfsSlowdownFault, VmConsolidationFault
from repro.ntier.hardware import CPU_CATEGORIES, Cpu, CumulativeCounter, Disk, PageCache
from repro.ntier.hooks import HookDispatcher, TierHook
from repro.ntier.logfacility import (
    FileLogSink,
    LogSink,
    MemoryLogSink,
    NativeLogFacility,
)
from repro.ntier.messages import Message, NetworkBus
from repro.ntier.node import Node, NodeSpec
from repro.ntier.request import Request
from repro.ntier.server import TierServer
from repro.ntier.system import (
    KERNELS,
    NTierSystem,
    SystemConfig,
    SystemResult,
    TierConfig,
    default_tier_configs,
    logical_tier,
    tier_address,
)
from repro.ntier.tiers import (
    ApacheServer,
    CjdbcServer,
    MySqlServer,
    TIER_ORDER,
    TomcatServer,
)
from repro.ntier.vectorclient import VectorClientEmulator

__all__ = [
    "ApacheServer",
    "CPU_CATEGORIES",
    "CjdbcServer",
    "ClientEmulator",
    "Cpu",
    "CumulativeCounter",
    "DBLogFlushFault",
    "DirtyPageFlushFault",
    "Disk",
    "DvfsSlowdownFault",
    "Fault",
    "FileLogSink",
    "GarbageCollectionFault",
    "HookDispatcher",
    "KERNELS",
    "LogSink",
    "MemoryLogSink",
    "Message",
    "MySqlServer",
    "NTierSystem",
    "NativeLogFacility",
    "NetworkBus",
    "Node",
    "NodeSpec",
    "PageCache",
    "Request",
    "SystemConfig",
    "SystemResult",
    "TIER_ORDER",
    "TierConfig",
    "TierHook",
    "TierServer",
    "TomcatServer",
    "TraceCollector",
    "VectorClientEmulator",
    "VmConsolidationFault",
    "default_tier_configs",
    "logical_tier",
    "tier_address",
]
