"""Requests flowing through the n-tier system."""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.common.records import RequestTrace
from repro.common.timebase import Micros

if TYPE_CHECKING:
    from repro.rubbos.interactions import InteractionProfile

__all__ = ["Request"]


@dataclasses.dataclass(slots=True)
class Request:
    """One client request, carrying its interaction profile and trace.

    The ``request_id`` is the fixed-width identifier the Apache
    mScopeMonitor injects into the URL; it rides along to every tier
    (URL parameter, then SQL comment) exactly as in the paper's
    Appendix A.
    """

    request_id: str
    interaction: "InteractionProfile"
    trace: RequestTrace
    created_at: Micros

    @property
    def url(self) -> str:
        """The instrumented URL including the propagated request ID."""
        return f"/rubbos/{self.interaction.name}?ID={self.request_id}"

    @property
    def plain_url(self) -> str:
        """The URL as an uninstrumented client would send it."""
        return f"/rubbos/{self.interaction.name}"
