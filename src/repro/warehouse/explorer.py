"""High-level exploration of a populated mScopeDB.

The paper's §III-C motivation: "researchers might wonder if any disk
activities happen during the period when Point-In-Time response time
fluctuates heavily ... with mScopeDB, researchers are able to explore
the disk utilization scenario across different component nodes".  The
:class:`WarehouseExplorer` is that interface — the handful of queries
an investigation actually needs, without writing SQL.
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import QueryError
from repro.common.timebase import Micros
from repro.warehouse.db import MScopeDB, RESPONSE_TIME_SQL, quote_identifier

__all__ = [
    "WarehouseExplorer",
    "IngestErrorSummary",
    "InteractionStats",
    "SlowRequest",
    "slowest_requests_sql",
    "interaction_stats_sql",
]


def slowest_requests_sql(front_table: str) -> str:
    """The ``slowest_requests`` SQL (shared with the query-plan tests).

    Sorts on :data:`~repro.warehouse.db.RESPONSE_TIME_SQL` — the exact
    expression the importer indexes, so the ``ORDER BY ... DESC LIMIT``
    reads straight off the index.
    """
    return (
        f"SELECT request_id, interaction, "
        f"{RESPONSE_TIME_SQL} AS rt, "
        f"upstream_departure_us "
        f"FROM {quote_identifier(front_table)} "
        f"WHERE upstream_departure_us IS NOT NULL "
        f"ORDER BY rt DESC LIMIT ?"
    )


def interaction_stats_sql(front_table: str) -> str:
    """The ``interaction_stats`` SQL (shared with the query-plan tests).

    Reads only the columns of the importer's ``interaction_rt``
    covering index, so the GROUP BY scans the index and never touches
    the table.
    """
    return (
        f"SELECT interaction, COUNT(*), "
        f"AVG({RESPONSE_TIME_SQL}), "
        f"MAX({RESPONSE_TIME_SQL}) "
        f"FROM {quote_identifier(front_table)} "
        f"WHERE upstream_departure_us IS NOT NULL "
        f"GROUP BY interaction ORDER BY 3 DESC"
    )


@dataclasses.dataclass(frozen=True, slots=True)
class InteractionStats:
    """Aggregate response-time statistics of one interaction type."""

    interaction: str
    count: int
    mean_ms: float
    max_ms: float


@dataclasses.dataclass(frozen=True, slots=True)
class SlowRequest:
    """One of the slowest requests in the warehouse."""

    request_id: str
    interaction: str
    response_ms: float
    completed_at_us: Micros


@dataclasses.dataclass(frozen=True, slots=True)
class IngestErrorSummary:
    """Per-source-file rollup of the ``ingest_errors`` ledger.

    ``file_failed`` is true when the file has a whole-file error row
    (line number 0) — it imported nothing, so any analysis that needs
    that monitor's data is blind there.
    """

    source_path: str
    parser: str
    error_count: int
    file_failed: bool


class WarehouseExplorer:
    """Convenience queries over event and resource tables.

    Parameters
    ----------
    db:
        The populated warehouse.
    front_table:
        The first tier's event table (response times come from its
        upstream pair).
    epoch_us:
        Offset rebasing warehouse wall timestamps to simulation time.
    """

    def __init__(
        self,
        db: MScopeDB,
        front_table: str = "apache_events_web1",
        epoch_us: int = 0,
    ) -> None:
        self.db = db
        self.front_table = front_table
        self.epoch_us = epoch_us
        if front_table not in db.tables():
            raise QueryError(f"front table {front_table!r} not in the warehouse")

    # ------------------------------------------------------------------
    # requests

    def slowest_requests(self, n: int = 10) -> list[SlowRequest]:
        """The ``n`` slowest requests, slowest first."""
        rows = self.db.query(slowest_requests_sql(self.front_table), (n,))
        return [
            SlowRequest(
                request_id=request_id or "",
                interaction=interaction or "",
                response_ms=rt / 1000.0,
                completed_at_us=departure - self.epoch_us,
            )
            for request_id, interaction, rt, departure in rows
        ]

    def interaction_stats(self) -> list[InteractionStats]:
        """Per-interaction response-time aggregates, slowest mean first."""
        rows = self.db.query(interaction_stats_sql(self.front_table))
        return [
            InteractionStats(
                interaction=interaction or "",
                count=count,
                mean_ms=mean / 1000.0,
                max_ms=peak / 1000.0,
            )
            for interaction, count, mean, peak in rows
        ]

    def request_flow(self, request_id: str) -> list[tuple]:
        """Every event record of one request, across all event tables.

        Returns ``(table, arrival_us, departure_us)`` rows ordered by
        arrival — the raw material of the paper's Figure 5.
        """
        flows: list[tuple] = []
        for table in self.event_tables():
            columns = {name for name, _ in self.db.table_schema(table)}
            if "request_id" not in columns:
                continue
            rows = self.db.query(
                f"SELECT upstream_arrival_us, upstream_departure_us "
                f"FROM {quote_identifier(table)} WHERE request_id = ?",
                (request_id,),
            )
            flows.extend(
                (table, arrival - self.epoch_us, departure - self.epoch_us)
                for arrival, departure in rows
            )
        flows.sort(key=lambda row: row[1])
        return flows

    # ------------------------------------------------------------------
    # catalog

    def event_tables(self) -> list[str]:
        """Dynamic tables holding event-monitor records."""
        return [
            table
            for table in self.db.dynamic_tables()
            if "upstream_arrival_us"
            in {name for name, _ in self.db.table_schema(table)}
        ]

    def resource_tables(self) -> list[str]:
        """Dynamic tables holding resource-monitor samples."""
        event = set(self.event_tables())
        return [
            table
            for table in self.db.dynamic_tables()
            if table not in event
            and "timestamp_us" in {name for name, _ in self.db.table_schema(table)}
        ]

    def hosts(self) -> list[str]:
        """Hosts registered in the static configuration table."""
        return [row[0] for row in self.db.query(
            "SELECT hostname FROM host_config ORDER BY hostname"
        )]

    # ------------------------------------------------------------------
    # ingestion health

    def ingest_errors(self, source_path: str | None = None) -> list[tuple]:
        """The raw ``ingest_errors`` rows a lenient transform recorded."""
        return self.db.ingest_errors(source_path)

    def error_summary(self) -> list[IngestErrorSummary]:
        """Per-file ingest-error rollup, most-damaged file first.

        The first thing to check before trusting an analysis: an empty
        summary means every record of every log imported; a
        ``file_failed`` entry means an entire monitor stream is missing
        from the warehouse.
        """
        rows = self.db.query(
            "SELECT source_path, parser, COUNT(*), "
            "MAX(CASE WHEN line_number = 0 THEN 1 ELSE 0 END) "
            "FROM ingest_errors GROUP BY source_path, parser "
            "ORDER BY 3 DESC, source_path"
        )
        return [
            IngestErrorSummary(
                source_path=source_path,
                parser=parser,
                error_count=count,
                file_failed=bool(failed),
            )
            for source_path, parser, count, failed in rows
        ]

    # ------------------------------------------------------------------
    # pipeline telemetry

    def pipeline_metrics(self):
        """The telemetry the loading pipeline persisted, aggregated.

        Returns a :class:`~repro.telemetry.aggregate.RunTelemetry`
        (per-stage latency histograms, per-worker utilization) rebuilt
        from the ``pipeline_metrics`` / ``pipeline_workers`` tables,
        or ``None`` when the transform ran with telemetry off.  Render
        it with :func:`repro.telemetry.export.render_json` /
        ``render_prometheus`` / ``render_text``.
        """
        from repro.telemetry.aggregate import RunTelemetry

        return RunTelemetry.from_db(self.db)

    # ------------------------------------------------------------------
    # metrics

    def metric_timeline(
        self,
        table: str,
        column: str,
        start: Micros | None = None,
        stop: Micros | None = None,
    ) -> list[tuple[Micros, float]]:
        """A rebased ``(time, value)`` series from one resource table."""
        shifted_start = None if start is None else start + self.epoch_us
        shifted_stop = None if stop is None else stop + self.epoch_us
        rows = self.db.fetch_series(
            table, "timestamp_us", column, shifted_start, shifted_stop
        )
        return [(t - self.epoch_us, v) for t, v in rows]

    def busiest_window(
        self, table: str, column: str, window_us: Micros
    ) -> tuple[Micros, float]:
        """The window start with the highest mean of ``column``."""
        series = self.metric_timeline(table, column)
        if not series:
            raise QueryError(f"{table}.{column} has no samples")
        best_start: Micros = series[0][0]
        best_mean = float("-inf")
        for start_index, (start_time, _) in enumerate(series):
            values = []
            j = start_index
            while j < len(series) and series[j][0] < start_time + window_us:
                values.append(series[j][1])
                j += 1
            mean = sum(values) / len(values)
            if mean > best_mean:
                best_mean = mean
                best_start = start_time
        return best_start, best_mean
