"""ShardedMScopeDB — the scale-out, host/time-partitioned warehouse.

The monolithic :class:`~repro.warehouse.db.MScopeDB` funnels every
monitor's rows through one sqlite file and one writer — the last
single-writer drain in an otherwise parallel pipeline.  This module
partitions the warehouse into per-``(host, time-window)`` **shard**
databases behind the same API:

* **Writes** route by the dynamic table's host (milliScope tables are
  named ``<monitor>_<hostname>``) and each row's timestamp window, so
  ``transform_directory(jobs=N)`` gives every worker its *own*
  :class:`ShardHostWriter` — N writers proceed in parallel with no
  shared lock.
* **Reads** federate transparently: queries naming a dynamic table get
  a ``TEMP VIEW`` that ``UNION ALL``s the shards holding it (attached
  read-side via sqlite ``ATTACH``), with a synthetic per-branch
  ``rowid`` preserving the tie-break ordering the causal joins rely
  on.  A :meth:`ShardedMScopeDB.pruned` window hint restricts the view
  to overlapping shards — windowed analysis never opens cold data, and
  :attr:`ShardedMScopeDB.shard_opens` counts exactly what was opened.
* **Metadata** (the paper's static tables, the schema catalog, ingest
  errors, pipeline telemetry) lives in one small ``manifest.db`` next
  to the shards, alongside the shard manifest itself.

Layout on disk::

    <root>/manifest.db                  static tables + shard manifest
    <root>/shards/<host>/all.db         host-only sharding (window_us=None)
    <root>/shards/<host>/w<k>.db        time window k (k = ts // window_us)
    <root>/shards/<host>/w<k>.db.cols/  optional columnar sidecars (.npy)

Retention: :meth:`ShardedMScopeDB.drop_shards_before` deletes cold
windows outright; :meth:`ShardedMScopeDB.compact_shards_before` rolls
them up into one shard per host (same rows, fewer files to attach).
The optional columnar backend (:meth:`ShardedMScopeDB.build_columnar`)
materializes numeric columns as numpy sidecar files that the bulk
analysis engine's :class:`~repro.analysis.cache.SeriesCache` reads in
place of SQL full scans.

Equivalence is held by the conformance suite: a sharded warehouse's
:meth:`ShardedMScopeDB.iterdump_content` must equal the monolith's
line-for-line (the ``warehouse-sharded`` pair).
"""

from __future__ import annotations

import contextlib
import itertools
import shutil
import sqlite3
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.common.errors import QueryError, WarehouseError
from repro.warehouse.db import (
    _ALLOWED_TYPES,
    _INSERT_BATCH_SIZE,
    MScopeDB,
    RESPONSE_TIME_SQL,
    STATIC_TABLES,
    quote_identifier,
    table_content_lines,
)

__all__ = [
    "MANIFEST_FILE",
    "ShardHostWriter",
    "ShardInfo",
    "ShardedMScopeDB",
    "host_for_table",
    "open_warehouse",
]

#: The metadata database inside a shard root (its presence is how
#: :func:`open_warehouse` recognizes a sharded warehouse).
MANIFEST_FILE = "manifest.db"

_SHARD_DIR = "shards"

#: Internal manifest-only tables, excluded from dynamic listings and
#: from the canonical content dump (the monolith has no counterpart).
_INTERNAL_TABLES = frozenset(
    {"shard_config", "shard_manifest", "shard_schema", "shard_tables"}
)

#: window_index of the single shard when sharding by host only.
_WHOLE_WINDOW = 0
#: window_index for rows carrying no routable timestamp.
_MISC_WINDOW = -1

#: Shard-open budget for ``ATTACH`` federation: sqlite's default
#: SQLITE_MAX_ATTACHED is 10; keeping two in reserve leaves room for
#: unrelated attachments.  Queries needing more shards than this fall
#: back to materializing a TEMP table (correct, just not zero-copy).
_DEFAULT_ATTACH_BUDGET = 8

#: Per-branch rowid offset shift in federated views: shard-local
#: rowids stay below 2**44, so ``(branch << 44) + rowid`` is unique and
#: orders rows window-major — equal-timestamp ties keep shard-insert
#: order, matching the monolith's ``ORDER BY ..., rowid`` tie-breaks.
_ROWID_SHIFT = 44

#: Columns that route a row into a time window, in priority order.
_TIME_COLUMNS = ("timestamp_us", "upstream_arrival_us")

_META_KEYS = ("key", "value")


def host_for_table(table: str, known_hosts: Iterable[str] = ()) -> str:
    """The owning host of a dynamic table.

    milliScope names dynamic tables ``<monitor>_<hostname>``; the
    longest known-host suffix wins (hostnames may contain ``_``), then
    the last ``_``-separated token, then the table name itself.  The
    result only needs to be *consistent* per table — routing and
    federation agree as long as both use the same mapping.
    """
    for host in sorted(known_hosts, key=len, reverse=True):
        if table == host or table.endswith(f"_{host}"):
            return host
    if "_" in table:
        return table.rsplit("_", 1)[1]
    return table


def _window_bounds(
    window_index: int, window_us: int | None
) -> tuple[int | None, int | None]:
    if window_us is None or window_index == _MISC_WINDOW:
        return None, None
    return window_index * window_us, (window_index + 1) * window_us


class ShardInfo:
    """One shard database in the manifest."""

    __slots__ = (
        "host",
        "window_index",
        "start_us",
        "stop_us",
        "relpath",
        "alias",
        "tables",
    )

    def __init__(
        self,
        host: str,
        window_index: int,
        start_us: int | None,
        stop_us: int | None,
        relpath: str,
        tables: Iterable[str] = (),
    ) -> None:
        self.host = host
        self.window_index = window_index
        self.start_us = start_us
        self.stop_us = stop_us
        self.relpath = relpath
        self.alias: str | None = None
        self.tables: set[str] = set(tables)

    @property
    def key(self) -> tuple[str, int]:
        return (self.host, self.window_index)

    def overlaps(self, start: int | None, stop: int | None) -> bool:
        """Whether this shard may hold rows in ``[start, stop)``.

        Unbounded shards (host-only, or the misc window for rows with
        no routable timestamp) always overlap — pruning must never
        drop rows a monolithic query would return.
        """
        if self.start_us is None or self.stop_us is None:
            return True
        if start is not None and self.stop_us <= start:
            return False
        if stop is not None and self.start_us >= stop:
            return False
        return True

    def sort_key(self) -> tuple[int, int]:
        # Window order (misc last): branch order in federated views
        # must be deterministic and time-major.
        if self.window_index == _MISC_WINDOW:
            return (1, 0)
        return (0, self.window_index)


class ShardHostWriter:
    """One host's parallel shard writer.

    Owns every shard file of ``host`` under ``root``; routes inserted
    rows into per-window shard databases by their timestamp column
    (``timestamp_us``, else ``upstream_arrival_us``; rows with neither
    land in a catch-all shard that pruning never skips).  Safe to use
    from a worker process — it touches only its host's files, so N
    hosts ingest through N writers with no shared lock.

    The writer handles measurement *data* only; static-table metadata
    goes to the manifest (directly when driven in-process by
    :class:`ShardedMScopeDB`, buffered and replayed by the parent when
    driven from a transform worker — see :class:`WorkerShardDB`).
    """

    def __init__(
        self, root: Path | str, host: str, window_us: int | None = None
    ) -> None:
        self.root = Path(root)
        self.host = host
        self.window_us = window_us
        self.dir = self.root / _SHARD_DIR / host
        self.dir.mkdir(parents=True, exist_ok=True)
        #: window_index -> open connection
        self._conns: dict[int, sqlite3.Connection] = {}
        #: window_index -> tables materialized in that shard
        self._shard_tables: dict[int, set[str]] = {}
        #: table -> declared (column, type) pairs, creation order.  The
        #: DDL truth: shard tables are always created with *declared*
        #: types, never widened ones, so sqlite's column affinity
        #: matches the monolith's (which also never re-declares).
        self._declared: dict[str, list[tuple[str, str]]] = {}
        #: table -> {column: catalog type} (declared + widenings) —
        #: what table_schema() reports.
        self._catalog: dict[str, dict[str, str]] = {}
        #: index specs applied to each shard holding the table.
        self._index_specs: dict[str, list[tuple]] = {}
        self._bulk = False

    # -- shard files ---------------------------------------------------

    def _shard_name(self, window_index: int) -> str:
        if self.window_us is None:
            return "all.db"
        if window_index == _MISC_WINDOW:
            return "misc.db"
        return f"w{window_index}.db"

    def shard_path(self, window_index: int) -> Path:
        return self.dir / self._shard_name(window_index)

    def _conn(self, window_index: int) -> sqlite3.Connection:
        conn = self._conns.get(window_index)
        if conn is None:
            conn = sqlite3.connect(self.shard_path(window_index))
            # Same durability trade as the monolith's file-backed mode.
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
            self._conns[window_index] = conn
            self._shard_tables.setdefault(window_index, set())
        return conn

    def _window_of(self, value: Any) -> int:
        if self.window_us is None:
            return _WHOLE_WINDOW
        if not isinstance(value, (int, float)):
            return _MISC_WINDOW
        return int(value // self.window_us)

    def _materialize(self, window_index: int, table: str) -> None:
        """Create ``table`` (and its pending indexes) in one shard."""
        conn = self._conn(window_index)
        tables = self._shard_tables[window_index]
        if table in tables:
            return
        rendered = ", ".join(
            f"{quote_identifier(column)} {sql_type}"
            for column, sql_type in self._declared[table]
        )
        conn.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_identifier(table)} ({rendered})"
        )
        for spec in self._index_specs.get(table, []):
            self._apply_index(conn, table, spec)
        tables.add(table)

    @staticmethod
    def _apply_index(
        conn: sqlite3.Connection, table: str, spec: tuple
    ) -> None:
        kind = spec[0]
        if kind == "plain":
            column = spec[1]
            conn.execute(
                f"CREATE INDEX IF NOT EXISTS "
                f"{quote_identifier(f'idx_{table}_{column}')} "
                f"ON {quote_identifier(table)} ({quote_identifier(column)})"
            )
        elif kind == "response_time":
            conn.execute(
                f"CREATE INDEX IF NOT EXISTS "
                f"{quote_identifier(f'idx_{table}_response_time')} "
                f"ON {quote_identifier(table)} ({RESPONSE_TIME_SQL} DESC)"
            )
        else:  # covering
            _, columns, name = spec
            rendered = ", ".join(quote_identifier(c) for c in columns)
            conn.execute(
                f"CREATE INDEX IF NOT EXISTS "
                f"{quote_identifier(f'idx_{table}_{name}')} "
                f"ON {quote_identifier(table)} ({rendered})"
            )

    # -- schema --------------------------------------------------------

    def ensure_table(
        self, table: str, columns: Sequence[tuple[str, str]]
    ) -> None:
        """Register a dynamic table's declared schema (idempotent)."""
        if not columns:
            raise WarehouseError(f"table {table!r} needs at least one column")
        for column, sql_type in columns:
            if sql_type not in _ALLOWED_TYPES:
                raise WarehouseError(
                    f"column {column!r} has unsupported type {sql_type!r}"
                )
        if table in self._declared:
            return
        self._declared[table] = list(columns)
        self._catalog[table] = dict(columns)

    def add_column(self, table: str, column: str, sql_type: str) -> None:
        """Add a column (NULL backfill) to every shard holding it."""
        if sql_type not in _ALLOWED_TYPES:
            raise WarehouseError(f"unsupported type {sql_type!r}")
        self._declared[table].append((column, sql_type))
        self._catalog[table][column] = sql_type
        for window_index, tables in self._shard_tables.items():
            if table in tables:
                self._conns[window_index].execute(
                    f"ALTER TABLE {quote_identifier(table)} "
                    f"ADD COLUMN {quote_identifier(column)} {sql_type}"
                )

    def record_column_type(
        self, table: str, column: str, sql_type: str
    ) -> None:
        """Record a catalog-level type widening (no DDL — matching the
        monolith, where sqlite affinity absorbs wider values)."""
        if sql_type not in _ALLOWED_TYPES:
            raise WarehouseError(f"unsupported type {sql_type!r}")
        self._catalog[table][column] = sql_type

    def table_schema(self, table: str) -> list[tuple[str, str]]:
        declared = self._declared.get(table)
        if declared is None:
            raise QueryError(f"no such table {table!r}")
        catalog = self._catalog[table]
        return [(column, catalog[column]) for column, _ in declared]

    def tables(self) -> list[str]:
        return sorted(self._declared)

    # -- indexes -------------------------------------------------------

    def _add_index_spec(self, table: str, spec: tuple) -> None:
        specs = self._index_specs.setdefault(table, [])
        if spec in specs:
            return
        specs.append(spec)
        for window_index, tables in self._shard_tables.items():
            if table in tables:
                self._apply_index(self._conns[window_index], table, spec)

    def create_index(self, table: str, column: str) -> None:
        self._add_index_spec(table, ("plain", column))

    def create_response_time_index(self, table: str) -> None:
        self._add_index_spec(table, ("response_time",))

    def create_covering_index(
        self, table: str, columns: Sequence[str], name: str
    ) -> None:
        self._add_index_spec(table, ("covering", tuple(columns), name))

    # -- rows ----------------------------------------------------------

    def insert_rows(
        self,
        table: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]],
    ) -> int:
        """Route rows into window shards; returns the inserted count.

        Rows are routed per-row on the timestamp column, preserving
        input order within each shard — so a shard's rowid order is
        the monolith's insert order restricted to its window.
        """
        if table not in self._declared:
            raise QueryError(f"no such table {table!r}")
        time_index: int | None = None
        if self.window_us is not None:
            for candidate in _TIME_COLUMNS:
                if candidate in columns:
                    time_index = list(columns).index(candidate)
                    break
        column_sql = ", ".join(quote_identifier(c) for c in columns)
        placeholders = ", ".join("?" for _ in columns)
        sql = (
            f"INSERT INTO {quote_identifier(table)} ({column_sql}) "
            f"VALUES ({placeholders})"
        )
        inserted = 0
        iterator = iter(rows)
        while True:
            batch = list(itertools.islice(iterator, _INSERT_BATCH_SIZE))
            if not batch:
                break
            if time_index is None and self.window_us is None:
                groups: dict[int, list] = {_WHOLE_WINDOW: batch}
            elif time_index is None:
                groups = {_MISC_WINDOW: batch}
            else:
                groups = {}
                for row in batch:
                    groups.setdefault(
                        self._window_of(row[time_index]), []
                    ).append(row)
            for window_index in sorted(groups):
                self._materialize(window_index, table)
                cursor = self._conns[window_index].executemany(
                    sql, groups[window_index]
                )
                inserted += cursor.rowcount
        if not self._bulk:
            self.commit()
        return inserted

    # -- transactions & lifecycle --------------------------------------

    def begin_bulk(self) -> None:
        self._bulk = True

    def end_bulk(self, *, rollback: bool = False) -> None:
        self._bulk = False
        if rollback:
            for conn in self._conns.values():
                conn.rollback()
        else:
            self.commit()

    def commit(self) -> None:
        for conn in self._conns.values():
            conn.commit()

    def records(self) -> list[ShardInfo]:
        """Manifest records for every shard this writer touched."""
        out = []
        for window_index, tables in sorted(self._shard_tables.items()):
            start_us, stop_us = _window_bounds(window_index, self.window_us)
            relpath = str(
                Path(_SHARD_DIR) / self.host / self._shard_name(window_index)
            )
            out.append(
                ShardInfo(
                    self.host, window_index, start_us, stop_us, relpath,
                    tables,
                )
            )
        return out

    def close(self) -> list[ShardInfo]:
        """Commit and close every shard; returns the manifest records."""
        records = self.records()
        for conn in self._conns.values():
            conn.commit()
            conn.close()
        self._conns.clear()
        return records


class WorkerShardDB:
    """The importer-facing facade a transform worker writes through.

    Implements the slice of the :class:`MScopeDB` API that
    :class:`~repro.transformer.importer.MScopeDataImporter` touches:
    measurement DDL/DML goes straight to the worker-owned
    :class:`ShardHostWriter`; static-table metadata (schema catalog,
    load catalog, monitor registry) is *buffered* as ``(op, args)``
    tuples the parent replays into the manifest in deterministic drain
    order — the exact split that removes the single-writer drain for
    row data while keeping metadata writes serialized.
    """

    def __init__(self, writer: ShardHostWriter) -> None:
        self.writer = writer
        self.meta_ops: list[tuple] = []

    @contextlib.contextmanager
    def bulk_load(self) -> Iterator["WorkerShardDB"]:
        self.writer.begin_bulk()
        try:
            yield self
        except BaseException:
            self.writer.end_bulk(rollback=True)
            raise
        else:
            self.writer.end_bulk()

    def create_table(
        self, name: str, columns: Sequence[tuple[str, str]]
    ) -> None:
        if name in STATIC_TABLES:
            raise WarehouseError(f"{name!r} is a reserved static table")
        self.writer.ensure_table(name, columns)
        self.meta_ops.append(
            ("create_table_meta", name, tuple(columns), self.writer.host)
        )

    def add_column(self, table: str, column: str, sql_type: str) -> None:
        self.writer.add_column(table, column, sql_type)
        self.meta_ops.append(("add_column_meta", table, column, sql_type))

    def record_column_type(
        self, table: str, column: str, sql_type: str
    ) -> None:
        self.writer.record_column_type(table, column, sql_type)
        self.meta_ops.append(("record_column_type", table, column, sql_type))

    def insert_rows(
        self,
        table: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]],
    ) -> int:
        return self.writer.insert_rows(table, columns, rows)

    def create_index(self, table: str, column: str) -> None:
        self.writer.create_index(table, column)

    def create_response_time_index(self, table: str) -> None:
        self.writer.create_response_time_index(table)

    def create_covering_index(
        self, table: str, columns: Sequence[str], name: str
    ) -> None:
        self.writer.create_covering_index(table, columns, name)

    def record_load(
        self, table_name: str, source_path: str, rows: int, columns: int
    ) -> None:
        self.meta_ops.append(
            ("record_load", table_name, source_path, rows, columns)
        )

    def record_sampling(
        self,
        table_name: str,
        source_path: str,
        policy: str,
        rows_seen: int,
        rows_kept: int,
        bytes_seen: int,
        bytes_kept: int,
    ) -> None:
        self.meta_ops.append(
            (
                "record_sampling",
                table_name,
                source_path,
                policy,
                rows_seen,
                rows_kept,
                bytes_seen,
                bytes_kept,
            )
        )

    def register_monitor(
        self,
        monitor: str,
        hostname: str,
        source_path: str,
        parser: str,
        table_name: str,
    ) -> None:
        self.meta_ops.append(
            (
                "register_monitor",
                monitor,
                hostname,
                source_path,
                parser,
                table_name,
            )
        )

    def dynamic_tables(self) -> list[str]:
        return self.writer.tables()

    def table_schema(self, table: str) -> list[tuple[str, str]]:
        return self.writer.table_schema(table)

    def drain_meta_ops(self) -> tuple[tuple, ...]:
        ops = tuple(self.meta_ops)
        self.meta_ops.clear()
        return ops


class ShardedMScopeDB:
    """A host/time-partitioned warehouse behind the ``MScopeDB`` API.

    Parameters
    ----------
    root:
        The warehouse directory (created if missing).  Holds
        ``manifest.db`` plus one subdirectory of shard databases per
        host.
    window_us:
        Time-partition width in microseconds.  ``None`` (the default)
        shards by host only — one shard per host, rows in pure insert
        order, which keeps per-table row order identical to the
        monolith's.  A previously created warehouse remembers its
        width; passing a conflicting value raises.

    Reads and writes go through the same methods as
    :class:`~repro.warehouse.db.MScopeDB`; see the module docstring
    for how they route.  :attr:`shard_opens` / :attr:`shard_open_log`
    count every shard database actually opened (attached or scanned),
    which is what the partition-pruning benchmark asserts on.
    """

    #: Duck-typing marker (e.g. the transformer picks the parallel
    #: shard-writer path on this).
    is_sharded = True

    def __init__(
        self,
        root: Path | str,
        window_us: int | None = None,
        threadsafe: bool = False,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = str(self.root)
        self.threadsafe = threadsafe
        self._manifest = MScopeDB(self.root / MANIFEST_FILE, threadsafe=threadsafe)
        self._create_shard_tables()
        self.window_us = self._resolve_window(window_us)
        #: logical dynamic table -> declared (column, type) order
        self._registry: dict[str, list[tuple[str, str]]] = {}
        self._table_host: dict[str, str] = {}
        self._shards: dict[tuple[str, int], ShardInfo] = {}
        self._writers: dict[str, ShardHostWriter] = {}
        #: table -> ("view"|"mat", signature) of the current TEMP object
        self._views: dict[str, tuple] = {}
        self._attached: dict[tuple[str, int], str] = {}
        self._alias_counter = 0
        self._write_gen = 0
        self._bulk_depth = 0
        self._prune_hint: tuple[int | None, int | None] | None = None
        self.attach_budget = _DEFAULT_ATTACH_BUDGET
        #: Shard databases opened for reading (ATTACH or direct scan).
        self.shard_opens = 0
        self.shard_open_log: list[str] = []
        self._columnar = self._get_config("columnar") == "1"
        self._load_manifest()

    # ------------------------------------------------------------------
    # lifecycle

    def close(self) -> None:
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        self._manifest.close()

    def __enter__(self) -> "ShardedMScopeDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _create_shard_tables(self) -> None:
        conn = self._manifest._require_conn()
        conn.executescript(
            """
            CREATE TABLE IF NOT EXISTS shard_manifest (
                host TEXT NOT NULL,
                window_index INTEGER NOT NULL,
                start_us INTEGER,
                stop_us INTEGER,
                path TEXT NOT NULL,
                PRIMARY KEY (host, window_index)
            );
            CREATE TABLE IF NOT EXISTS shard_tables (
                host TEXT NOT NULL,
                window_index INTEGER NOT NULL,
                table_name TEXT NOT NULL,
                PRIMARY KEY (host, window_index, table_name)
            );
            CREATE TABLE IF NOT EXISTS shard_schema (
                table_name TEXT NOT NULL,
                position INTEGER NOT NULL,
                column_name TEXT NOT NULL,
                declared_type TEXT NOT NULL,
                PRIMARY KEY (table_name, position)
            );
            CREATE TABLE IF NOT EXISTS shard_config (
                key TEXT PRIMARY KEY,
                value TEXT NOT NULL
            );
            """
        )
        conn.commit()

    def _get_config(self, key: str) -> str | None:
        row = self._manifest._require_conn().execute(
            "SELECT value FROM shard_config WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else None

    def _set_config(self, key: str, value: str) -> None:
        conn = self._manifest._require_conn()
        conn.execute(
            "INSERT OR REPLACE INTO shard_config VALUES (?, ?)", (key, value)
        )
        self._manifest._commit()

    def _resolve_window(self, window_us: int | None) -> int | None:
        recorded = self._get_config("window_us")
        if recorded is None:
            # Fresh warehouse: the creation-time choice is permanent.
            self._set_config(
                "window_us", "" if window_us is None else str(window_us)
            )
            return window_us
        existing = None if recorded == "" else int(recorded)
        if window_us is not None and window_us != existing:
            raise WarehouseError(
                f"warehouse {self.path} was created with window_us="
                f"{existing}; cannot reopen with window_us={window_us}"
            )
        return existing

    def _load_manifest(self) -> None:
        conn = self._manifest._require_conn()
        for host, window_index, start_us, stop_us, relpath in conn.execute(
            "SELECT host, window_index, start_us, stop_us, path "
            "FROM shard_manifest"
        ):
            self._shards[(host, window_index)] = ShardInfo(
                host, window_index, start_us, stop_us, relpath
            )
        for host, window_index, table in conn.execute(
            "SELECT host, window_index, table_name FROM shard_tables"
        ):
            info = self._shards.get((host, window_index))
            if info is not None:
                info.tables.add(table)
                self._table_host.setdefault(table, host)
        for table, column, declared in conn.execute(
            "SELECT table_name, column_name, declared_type FROM shard_schema "
            "ORDER BY table_name, position"
        ):
            self._registry.setdefault(table, []).append((column, declared))

    # ------------------------------------------------------------------
    # metadata delegation (static tables live in the manifest)

    def set_experiment_meta(self, key: str, value: str) -> None:
        self._manifest.set_experiment_meta(key, value)

    def get_experiment_meta(self, key: str) -> str | None:
        return self._manifest.get_experiment_meta(key)

    def register_host(
        self, hostname: str, tier: str, cores: int, disk_bandwidth: int
    ) -> None:
        self._manifest.register_host(hostname, tier, cores, disk_bandwidth)

    def register_monitor(self, *args, **kwargs) -> None:
        self._manifest.register_monitor(*args, **kwargs)

    def record_load(self, *args, **kwargs) -> None:
        self._manifest.record_load(*args, **kwargs)

    def record_ingest_error(self, *args, **kwargs) -> None:
        self._manifest.record_ingest_error(*args, **kwargs)

    def record_sampling(self, *args, **kwargs) -> None:
        self._manifest.record_sampling(*args, **kwargs)

    def record_conflated(self, *args, **kwargs) -> None:
        self._manifest.record_conflated(*args, **kwargs)

    def sampling_ledger(self) -> list[tuple]:
        return self._manifest.sampling_ledger()

    def sampling_summary(self) -> dict | None:
        return self._manifest.sampling_summary()

    def conflated_requests(self) -> list[tuple]:
        return self._manifest.conflated_requests()

    def ingest_errors(self, source_path: str | None = None) -> list[tuple]:
        return self._manifest.ingest_errors(source_path)

    def ingest_error_count(self) -> int:
        return self._manifest.ingest_error_count()

    def replace_pipeline_metrics(self, rows: Iterable[Sequence[Any]]) -> int:
        return self._manifest.replace_pipeline_metrics(rows)

    def append_pipeline_metrics(
        self,
        rows: Iterable[Sequence[Any]],
        replace_prefix: str | None = None,
    ) -> int:
        return self._manifest.append_pipeline_metrics(rows, replace_prefix)

    def replace_pipeline_workers(self, rows: Iterable[Sequence[Any]]) -> int:
        return self._manifest.replace_pipeline_workers(rows)

    def has_pipeline_metrics(self) -> bool:
        return self._manifest.has_pipeline_metrics()

    def pipeline_metrics(self) -> list[tuple]:
        return self._manifest.pipeline_metrics()

    def pipeline_workers(self) -> list[tuple]:
        return self._manifest.pipeline_workers()

    # ------------------------------------------------------------------
    # write routing

    def _known_hosts(self) -> set[str]:
        hosts = {info.host for info in self._shards.values()}
        hosts.update(self._writers)
        hosts.update(
            row[0]
            for row in self._manifest.query("SELECT hostname FROM host_config")
        )
        return hosts

    def writer(self, host: str) -> ShardHostWriter:
        """The (lazily created) shard writer owning ``host``."""
        writer = self._writers.get(host)
        if writer is None:
            writer = ShardHostWriter(self.root, host, self.window_us)
            # Late-joining writers must see schemas created earlier
            # (e.g. a warehouse reopened for further loads).
            for table, columns in self._registry.items():
                if self._table_host.get(table) == host:
                    writer.ensure_table(table, columns)
            if self._bulk_depth > 0:
                writer.begin_bulk()
            self._writers[host] = writer
        return writer

    def _writer_for_table(self, table: str) -> ShardHostWriter:
        host = self._table_host.get(table)
        if host is None:
            raise QueryError(f"no such table {table!r}")
        return self.writer(host)

    @contextlib.contextmanager
    def bulk_load(self) -> Iterator["ShardedMScopeDB"]:
        """Defer commits across manifest and every shard writer."""
        self._bulk_depth += 1
        if self._bulk_depth == 1:
            for writer in self._writers.values():
                writer.begin_bulk()
        try:
            with self._manifest.bulk_load():
                yield self
        except BaseException:
            self._bulk_depth -= 1
            if self._bulk_depth == 0:
                for writer in self._writers.values():
                    writer.end_bulk(rollback=True)
            raise
        else:
            self._bulk_depth -= 1
            if self._bulk_depth == 0:
                for writer in self._writers.values():
                    writer.end_bulk()

    def apply_meta_op(self, op: tuple) -> None:
        """Replay one buffered metadata op (see :class:`WorkerShardDB`)."""
        name, args = op[0], op[1:]
        if name == "create_table_meta":
            table, columns, host = args
            self._register_table_meta(table, list(columns), host)
        elif name == "add_column_meta":
            self._register_column_meta(*args)
        elif name == "record_column_type":
            self._record_column_type_meta(*args)
        elif name == "record_load":
            self._manifest.record_load(*args)
        elif name == "record_sampling":
            self._manifest.record_sampling(*args)
        elif name == "register_monitor":
            self._manifest.register_monitor(*args)
        else:
            raise WarehouseError(f"unknown metadata op {name!r}")

    def _register_table_meta(
        self, table: str, columns: list[tuple[str, str]], host: str
    ) -> None:
        if table in self._registry:
            return
        self._registry[table] = list(columns)
        self._table_host[table] = host
        conn = self._manifest._require_conn()
        conn.executemany(
            "INSERT OR REPLACE INTO schema_catalog VALUES (?, ?, ?)",
            [(table, column, sql_type) for column, sql_type in columns],
        )
        conn.executemany(
            "INSERT OR REPLACE INTO shard_schema VALUES (?, ?, ?, ?)",
            [
                (table, position, column, sql_type)
                for position, (column, sql_type) in enumerate(columns)
            ],
        )
        self._manifest._commit()
        self._invalidate(table)

    def _register_column_meta(
        self, table: str, column: str, sql_type: str
    ) -> None:
        self._registry[table].append((column, sql_type))
        conn = self._manifest._require_conn()
        conn.execute(
            "INSERT OR REPLACE INTO schema_catalog VALUES (?, ?, ?)",
            (table, column, sql_type),
        )
        conn.execute(
            "INSERT OR REPLACE INTO shard_schema VALUES (?, ?, ?, ?)",
            (table, len(self._registry[table]) - 1, column, sql_type),
        )
        self._manifest._commit()
        self._invalidate(table)

    def _record_column_type_meta(
        self, table: str, column: str, sql_type: str
    ) -> None:
        conn = self._manifest._require_conn()
        conn.execute(
            "INSERT OR REPLACE INTO schema_catalog VALUES (?, ?, ?)",
            (table, column, sql_type),
        )
        self._manifest._commit()

    def register_shards(self, records: Iterable[ShardInfo]) -> None:
        """Adopt shard records (from a writer, possibly in a worker)."""
        conn = self._manifest._require_conn()
        for record in records:
            existing = self._shards.get(record.key)
            if existing is None:
                self._shards[record.key] = existing = ShardInfo(
                    record.host,
                    record.window_index,
                    record.start_us,
                    record.stop_us,
                    record.relpath,
                )
                conn.execute(
                    "INSERT OR REPLACE INTO shard_manifest VALUES "
                    "(?, ?, ?, ?, ?)",
                    (
                        record.host,
                        record.window_index,
                        record.start_us,
                        record.stop_us,
                        record.relpath,
                    ),
                )
            new_tables = record.tables - existing.tables
            if new_tables:
                existing.tables.update(new_tables)
                conn.executemany(
                    "INSERT OR REPLACE INTO shard_tables VALUES (?, ?, ?)",
                    [
                        (record.host, record.window_index, table)
                        for table in sorted(new_tables)
                    ],
                )
                for table in new_tables:
                    self._table_host.setdefault(table, record.host)
                    self._invalidate(table)
        self._manifest._commit()

    def _touch_write(self, host: str) -> None:
        self._write_gen += 1
        self._columnar_invalidate()
        writer = self._writers.get(host)
        if writer is not None:
            self.register_shards(writer.records())

    # -- MScopeDB-compatible write API ---------------------------------

    def create_table(
        self, name: str, columns: Sequence[tuple[str, str]]
    ) -> None:
        if name in STATIC_TABLES:
            raise WarehouseError(f"{name!r} is a reserved static table")
        if name in self._registry:
            return
        host = host_for_table(name, self._known_hosts())
        self.writer(host).ensure_table(name, columns)
        self._register_table_meta(name, list(columns), host)

    def add_column(self, table: str, column: str, sql_type: str) -> None:
        writer = self._writer_for_table(table)
        writer.add_column(table, column, sql_type)
        self._register_column_meta(table, column, sql_type)
        self._touch_write(writer.host)

    def record_column_type(
        self, table: str, column: str, sql_type: str
    ) -> None:
        if table in self._registry:
            self._writer_for_table(table).record_column_type(
                table, column, sql_type
            )
        self._record_column_type_meta(table, column, sql_type)

    def insert_rows(
        self,
        table: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]],
    ) -> int:
        writer = self._writer_for_table(table)
        inserted = writer.insert_rows(table, columns, rows)
        self._touch_write(writer.host)
        return inserted

    def create_index(self, table: str, column: str) -> None:
        self._writer_for_table(table).create_index(table, column)

    def create_response_time_index(self, table: str) -> None:
        self._writer_for_table(table).create_response_time_index(table)

    def create_covering_index(
        self, table: str, columns: Sequence[str], name: str
    ) -> None:
        self._writer_for_table(table).create_covering_index(
            table, columns, name
        )

    def indexes(self, table: str) -> list[str]:
        """Index names on ``table`` (union across its shards)."""
        names: set[str] = set()
        for info in self._shards_for(table, pruned=False):
            conn, direct = self._read_conn(info)
            try:
                names.update(
                    row[0]
                    for row in conn.execute(
                        "SELECT name FROM sqlite_master WHERE type='index' "
                        "AND tbl_name = ?",
                        (table,),
                    )
                )
            finally:
                if direct:
                    conn.close()
        return sorted(names)

    # ------------------------------------------------------------------
    # read federation

    def flush(self) -> None:
        """Commit every writer so attached readers see the data."""
        for writer in self._writers.values():
            if self._bulk_depth == 0:
                writer.commit()

    @contextlib.contextmanager
    def pruned(
        self, start: int | None = None, stop: int | None = None
    ) -> Iterator["ShardedMScopeDB"]:
        """Scope reads to shards overlapping ``[start, stop)``.

        Bounds are warehouse timestamps.  Queries inside the context
        build federated views over only the overlapping shards (plus
        any unbounded catch-all shard); shards wholly outside the
        window are never opened.  Correctness note: the *rows* are not
        filtered — callers still apply their own WHERE bounds; the
        hint only prunes which partitions back the view.
        """
        previous = self._prune_hint
        self._prune_hint = (start, stop)
        try:
            yield self
        finally:
            self._prune_hint = previous

    def _shards_for(self, table: str, pruned: bool = True) -> list[ShardInfo]:
        host = self._table_host.get(table)
        if host is None:
            return []
        hint = self._prune_hint if pruned else None
        infos = [
            info
            for info in self._shards.values()
            if info.host == host and table in info.tables
        ]
        if hint is not None:
            infos = [info for info in infos if info.overlaps(*hint)]
        infos.sort(key=ShardInfo.sort_key)
        return infos

    def _shard_abspath(self, info: ShardInfo) -> Path:
        return self.root / info.relpath

    def _count_open(self, info: ShardInfo) -> None:
        self.shard_opens += 1
        self.shard_open_log.append(info.relpath)

    def _read_conn(
        self, info: ShardInfo
    ) -> tuple[sqlite3.Connection, bool]:
        """A connection that can read one shard: the writer's own (not
        counted as a shard open) or a fresh direct one (counted)."""
        writer = self._writers.get(info.host)
        if writer is not None:
            conn = writer._conns.get(info.window_index)
            if conn is not None:
                if self._bulk_depth == 0:
                    conn.commit()
                return conn, False
        self._count_open(info)
        return (
            sqlite3.connect(
                self._shard_abspath(info),
                check_same_thread=not self.threadsafe,
            ),
            True,
        )

    def _drop_views(self) -> None:
        conn = self._manifest._require_conn()
        for table, (kind, *_rest) in list(self._views.items()):
            if kind == "view":
                conn.execute(
                    f"DROP VIEW IF EXISTS temp.{quote_identifier(table)}"
                )
                del self._views[table]

    def _detach(self, key: tuple[str, int]) -> None:
        alias = self._attached.pop(key, None)
        if alias is None:
            return
        info = self._shards.get(key)
        if info is not None:
            info.alias = None
        self._manifest._require_conn().execute(f"DETACH {alias}")

    def _attach(
        self, info: ShardInfo, pinned: set[tuple[str, int]]
    ) -> str | None:
        """Attach one shard, evicting cold attachments as needed.

        Returns the alias, or ``None`` when the attach budget cannot
        accommodate it (caller falls back to materializing).
        """
        if info.alias is not None:
            # Move-to-back: dict preserves insertion order, so popping
            # and re-adding keeps eviction LRU-ish.
            alias = self._attached.pop(info.key)
            self._attached[info.key] = alias
            return alias
        conn = self._manifest._require_conn()
        while len(self._attached) >= self.attach_budget:
            victim = next(
                (key for key in self._attached if key not in pinned), None
            )
            if victim is None:
                return None
            # Views may reference the victim's alias; rebuild lazily.
            self._drop_views()
            self._detach(victim)
        self.flush()
        alias = f"sh{self._alias_counter}"
        self._alias_counter += 1
        try:
            conn.execute(
                f"ATTACH ? AS {alias}", (str(self._shard_abspath(info)),)
            )
        except sqlite3.Error:
            self._drop_views()
            while self._attached:
                victim = next(
                    (key for key in self._attached if key not in pinned),
                    None,
                )
                if victim is None:
                    return None
                self._detach(victim)
                try:
                    conn.execute(
                        f"ATTACH ? AS {alias}",
                        (str(self._shard_abspath(info)),),
                    )
                    break
                except sqlite3.Error:
                    continue
            else:
                return None
        info.alias = alias
        self._attached[info.key] = alias
        self._count_open(info)
        return alias

    def _ensure_view(self, table: str) -> None:
        infos = self._shards_for(table)
        signature = tuple(info.key for info in infos)
        current = self._views.get(table)
        if current is not None:
            kind = current[0]
            if kind == "view" and current[1] == signature:
                return
            if (
                kind == "mat"
                and current[1] == signature
                and current[2] == self._write_gen
            ):
                return
        conn = self._manifest._require_conn()
        conn.execute(f"DROP VIEW IF EXISTS temp.{quote_identifier(table)}")
        conn.execute(f"DROP TABLE IF EXISTS temp.{quote_identifier(table)}")
        self._views.pop(table, None)
        columns = [column for column, _ in self._registry[table]]
        column_sql = ", ".join(quote_identifier(c) for c in columns)
        if not infos:
            nulls = ", ".join(
                f"NULL AS {quote_identifier(c)}" for c in columns
            )
            conn.execute(
                f"CREATE TEMP VIEW {quote_identifier(table)} AS "
                f"SELECT {nulls}, NULL AS rowid WHERE 0"
            )
            self._views[table] = ("view", signature)
            return
        if len(infos) > self.attach_budget:
            self._materialize_view(table, infos, signature)
            return
        branches = []
        for branch, info in enumerate(infos):
            alias = self._attach(info, pinned={i.key for i in infos})
            if alias is None:
                self._materialize_view(table, infos, signature)
                return
            offset = branch << _ROWID_SHIFT
            branches.append(
                f"SELECT {column_sql}, rowid + {offset} AS rowid "
                f"FROM {alias}.{quote_identifier(table)}"
            )
        conn.execute(
            f"CREATE TEMP VIEW {quote_identifier(table)} AS "
            + " UNION ALL ".join(branches)
        )
        self._views[table] = ("view", signature)

    def _materialize_view(
        self, table: str, infos: list[ShardInfo], signature: tuple
    ) -> None:
        """Over-budget fallback: copy the shards into one TEMP table.

        Correct for every query shape (GROUP BY, aggregates, ORDER BY
        rowid) where chunked query execution would not be; costs one
        pass over the participating shards.
        """
        conn = self._manifest._require_conn()
        columns = self._registry[table]
        column_sql = ", ".join(quote_identifier(c) for c, _ in columns)
        rendered = ", ".join(
            f"{quote_identifier(c)} {t}" for c, t in columns
        )
        conn.execute(
            f"CREATE TEMP TABLE {quote_identifier(table)} "
            f"({rendered}, rowid INTEGER)"
        )
        insert_sql = (
            f"INSERT INTO temp.{quote_identifier(table)} VALUES "
            f"({', '.join('?' for _ in range(len(columns) + 1))})"
        )
        for branch, info in enumerate(infos):
            offset = branch << _ROWID_SHIFT
            reader, direct = self._read_conn(info)
            try:
                rows = reader.execute(
                    f"SELECT {column_sql}, rowid + {offset} "
                    f"FROM {quote_identifier(table)}"
                )
                while True:
                    batch = rows.fetchmany(_INSERT_BATCH_SIZE)
                    if not batch:
                        break
                    conn.executemany(insert_sql, batch)
            finally:
                if direct:
                    reader.close()
        conn.commit()
        self._views[table] = ("mat", signature, self._write_gen)

    def _invalidate(self, table: str) -> None:
        current = self._views.get(table)
        if current is None:
            return
        conn = self._manifest._require_conn()
        if current[0] == "view":
            conn.execute(f"DROP VIEW IF EXISTS temp.{quote_identifier(table)}")
        else:
            conn.execute(
                f"DROP TABLE IF EXISTS temp.{quote_identifier(table)}"
            )
        del self._views[table]

    def _prepare_sql(self, sql: str) -> None:
        for table in self._referenced_tables(sql):
            self._ensure_view(table)

    def _referenced_tables(self, sql: str) -> list[str]:
        # Word-boundary containment is enough: dynamic table names are
        # valid identifiers, and a false positive only builds a view
        # that goes unused.
        found = []
        for table in self._registry:
            index = sql.find(table)
            while index != -1:
                before = sql[index - 1] if index > 0 else " "
                after_index = index + len(table)
                after = sql[after_index] if after_index < len(sql) else " "
                if not (before.isalnum() or before == "_") and not (
                    after.isalnum() or after == "_"
                ):
                    found.append(table)
                    break
                index = sql.find(table, index + 1)
        return found

    # ------------------------------------------------------------------
    # MScopeDB-compatible read API

    def tables(self) -> list[str]:
        names = set(self._manifest.tables()) - _INTERNAL_TABLES
        names.update(self._registry)
        return sorted(names)

    def dynamic_tables(self) -> list[str]:
        return sorted(self._registry)

    def table_schema(self, table: str) -> list[tuple[str, str]]:
        declared = self._registry.get(table)
        if declared is None:
            return self._manifest.table_schema(table)
        overrides = dict(
            self._manifest.query(
                "SELECT column_name, sql_type FROM schema_catalog "
                "WHERE table_name = ?",
                (table,),
            )
        )
        return [
            (column, overrides.get(column, sql_type))
            for column, sql_type in declared
        ]

    def row_count(self, table: str) -> int:
        if table in self._registry:
            total = 0
            for info in self._shards_for(table, pruned=False):
                conn, direct = self._read_conn(info)
                try:
                    total += conn.execute(
                        f"SELECT COUNT(*) FROM {quote_identifier(table)}"
                    ).fetchone()[0]
                finally:
                    if direct:
                        conn.close()
            return total
        return self._manifest.row_count(table)

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[tuple]:
        self.flush()
        self._prepare_sql(sql)
        return self._manifest.query(sql, params)

    def max_variables(self) -> int:
        return self._manifest.max_variables()

    def in_chunk_size(self) -> int:
        return self._manifest.in_chunk_size()

    def query_in_chunks(
        self,
        sql: str,
        values: Sequence[Any],
        chunk_size: int | None = None,
    ) -> list[tuple]:
        if chunk_size is None:
            chunk_size = self.in_chunk_size()
        if chunk_size <= 0:
            raise QueryError(f"chunk size must be positive: {chunk_size}")
        rows: list[tuple] = []
        for start in range(0, len(values), chunk_size):
            chunk = values[start : start + chunk_size]
            placeholders = ", ".join("?" for _ in chunk)
            rows.extend(
                self.query(sql.format(placeholders=placeholders), chunk)
            )
        return rows

    def query_plan(self, sql: str, params: Sequence[Any] = ()) -> list[str]:
        self.flush()
        self._prepare_sql(sql)
        return self._manifest.query_plan(sql, params)

    def fetch_series(
        self,
        table: str,
        time_column: str,
        value_column: str,
        start: int | None = None,
        stop: int | None = None,
    ) -> list[tuple[int, float]]:
        """A windowed series read — pruned to overlapping shards."""
        sql = (
            f"SELECT {quote_identifier(time_column)}, "
            f"{quote_identifier(value_column)} FROM {quote_identifier(table)}"
        )
        conditions = []
        params: list[Any] = []
        if start is not None:
            conditions.append(f"{quote_identifier(time_column)} >= ?")
            params.append(start)
        if stop is not None:
            conditions.append(f"{quote_identifier(time_column)} < ?")
            params.append(stop)
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        sql += f" ORDER BY {quote_identifier(time_column)}"
        with self.pruned(start, stop):
            return self.query(sql, params)

    # ------------------------------------------------------------------
    # dumps

    def iterdump(self) -> Iterator[str]:
        """Alias of :meth:`iterdump_content`.

        A partitioned warehouse has no meaningful *physical* SQL dump
        — the canonical content lines are its dump.
        """
        return self.iterdump_content()

    def iterdump_content(self) -> Iterator[str]:
        """Canonical content lines, comparable to the monolith's.

        Same table order (sorted), same schema rendering, same
        canonical row order — so a sharded warehouse loaded from the
        same logs as a monolithic one yields identical lines (the
        ``warehouse-sharded`` conformance pair).  Streams one table at
        a time; memory is bounded by the largest table.
        """
        self.flush()
        for table in self.tables():
            schema = self.table_schema(table)
            if table in self._registry:
                rows = self._logical_rows(table, schema)
            else:
                columns = ", ".join(quote_identifier(c) for c, _ in schema)
                rows = iter(
                    self._manifest.query(
                        f"SELECT {columns} FROM {quote_identifier(table)}"
                    )
                )
            yield from table_content_lines(table, schema, rows)

    def _logical_rows(
        self, table: str, schema: Sequence[tuple[str, str]]
    ) -> Iterator[tuple]:
        columns = ", ".join(quote_identifier(c) for c, _ in schema)
        for info in self._shards_for(table, pruned=False):
            conn, direct = self._read_conn(info)
            try:
                yield from conn.execute(
                    f"SELECT {columns} FROM {quote_identifier(table)} "
                    f"ORDER BY rowid"
                )
            finally:
                if direct:
                    conn.close()

    # ------------------------------------------------------------------
    # shard management: manifest, retention, compaction

    def shard_manifest(self) -> list[ShardInfo]:
        """Every shard, ordered by (host, window)."""
        return sorted(
            self._shards.values(), key=lambda i: (i.host, i.sort_key())
        )

    def _remove_shard(self, info: ShardInfo) -> None:
        self._drop_views()
        self._detach(info.key)
        writer = self._writers.get(info.host)
        if writer is not None:
            conn = writer._conns.pop(info.window_index, None)
            if conn is not None:
                conn.close()
            writer._shard_tables.pop(info.window_index, None)
        path = self._shard_abspath(info)
        for suffix in ("", "-wal", "-shm"):
            Path(f"{path}{suffix}").unlink(missing_ok=True)
        shutil.rmtree(f"{path}.cols", ignore_errors=True)
        conn = self._manifest._require_conn()
        conn.execute(
            "DELETE FROM shard_manifest WHERE host = ? AND window_index = ?",
            info.key,
        )
        conn.execute(
            "DELETE FROM shard_tables WHERE host = ? AND window_index = ?",
            info.key,
        )
        self._manifest._commit()
        del self._shards[info.key]

    def drop_shards_before(self, cutoff_us: int) -> int:
        """Retention: delete every shard wholly before ``cutoff_us``.

        Only bounded (time-windowed) shards qualify — the catch-all
        and host-only shards have no upper bound and are never cold.
        Returns the number of shards dropped.
        """
        victims = [
            info
            for info in list(self._shards.values())
            if info.stop_us is not None and info.stop_us <= cutoff_us
        ]
        for info in victims:
            self._remove_shard(info)
        if victims:
            self._write_gen += 1
            self._columnar_invalidate()
        return len(victims)

    def compact_shards_before(self, cutoff_us: int) -> int:
        """Roll every host's cold windows up into one shard apiece.

        Shards wholly before ``cutoff_us`` merge (in window order, so
        row order is preserved) into a single ``roll<first>-<last>.db``
        per host.  Content is unchanged — only the partition count
        drops, keeping the attach budget comfortable as a long run
        accumulates history.  Returns the number of shards merged away.
        """
        by_host: dict[str, list[ShardInfo]] = {}
        for info in self._shards.values():
            if info.stop_us is not None and info.stop_us <= cutoff_us:
                by_host.setdefault(info.host, []).append(info)
        merged = 0
        for host, infos in sorted(by_host.items()):
            if len(infos) < 2:
                continue
            infos.sort(key=ShardInfo.sort_key)
            merged += self._compact_host(host, infos)
        if merged:
            self._write_gen += 1
            self._columnar_invalidate()
        return merged

    def _compact_host(self, host: str, infos: list[ShardInfo]) -> int:
        first, last = infos[0], infos[-1]
        name = f"roll{first.window_index}-{last.window_index}.db"
        relpath = str(Path(_SHARD_DIR) / host / name)
        target_path = self.root / relpath
        target_path.unlink(missing_ok=True)
        target = sqlite3.connect(target_path)
        target.execute("PRAGMA journal_mode = WAL")
        tables: set[str] = set()
        for info in infos:
            tables.update(info.tables)
        for table in sorted(tables):
            declared = self._registry[table]
            rendered = ", ".join(
                f"{quote_identifier(c)} {t}" for c, t in declared
            )
            target.execute(
                f"CREATE TABLE {quote_identifier(table)} ({rendered})"
            )
            column_sql = ", ".join(quote_identifier(c) for c, _ in declared)
            insert_sql = (
                f"INSERT INTO {quote_identifier(table)} ({column_sql}) "
                f"VALUES ({', '.join('?' for _ in declared)})"
            )
            for info in infos:
                if table not in info.tables:
                    continue
                source, direct = self._read_conn(info)
                try:
                    # The source shard may predate later add_column
                    # calls; select only the columns it has.
                    have = {
                        row[1]
                        for row in source.execute(
                            f"PRAGMA table_info({quote_identifier(table)})"
                        )
                    }
                    selects = ", ".join(
                        quote_identifier(c) if c in have else "NULL"
                        for c, _ in declared
                    )
                    rows = source.execute(
                        f"SELECT {selects} FROM {quote_identifier(table)} "
                        f"ORDER BY rowid"
                    )
                    while True:
                        batch = rows.fetchmany(_INSERT_BATCH_SIZE)
                        if not batch:
                            break
                        target.executemany(insert_sql, batch)
                finally:
                    if direct:
                        source.close()
        target.commit()
        target.close()
        for info in infos:
            self._remove_shard(info)
        record = ShardInfo(
            host,
            first.window_index,
            first.start_us,
            last.stop_us,
            relpath,
            tables,
        )
        self.register_shards([record])
        return len(infos)

    # ------------------------------------------------------------------
    # columnar sidecars (the bulk-analysis fast path)

    def _columnar_invalidate(self) -> None:
        if self._columnar:
            self._columnar = False
            self._set_config("columnar", "0")

    def build_columnar(self) -> int:
        """Materialize numeric columns as ``.npy`` sidecars per shard.

        For each shard and table, every INTEGER/REAL column is dumped
        (in rowid order, NULL → NaN) into ``<shard>.cols/<table>.<col>
        .npy``.  :meth:`columnar_series` / :meth:`columnar_spans` then
        serve the bulk-analysis full scans from memory-mapped arrays
        instead of SQL.  Any subsequent write invalidates the sidecars
        (they are rebuilt on demand).  Returns the number of arrays
        written.
        """
        import numpy as np

        self.flush()
        written = 0
        for info in self.shard_manifest():
            cols_dir = Path(f"{self._shard_abspath(info)}.cols")
            shutil.rmtree(cols_dir, ignore_errors=True)
            if not info.tables:
                continue
            cols_dir.mkdir(parents=True)
            conn, direct = self._read_conn(info)
            try:
                for table in sorted(info.tables):
                    numeric = [
                        column
                        for column, sql_type in self.table_schema(table)
                        if sql_type in ("INTEGER", "REAL")
                    ]
                    have = {
                        row[1]
                        for row in conn.execute(
                            f"PRAGMA table_info({quote_identifier(table)})"
                        )
                    }
                    for column in numeric:
                        if column not in have:
                            continue
                        values = [
                            row[0]
                            for row in conn.execute(
                                f"SELECT {quote_identifier(column)} "
                                f"FROM {quote_identifier(table)} "
                                f"ORDER BY rowid"
                            )
                        ]
                        array = np.array(
                            [
                                float("nan") if v is None else float(v)
                                for v in values
                            ],
                            dtype=np.float64,
                        )
                        np.save(cols_dir / f"{table}.{column}.npy", array)
                        written += 1
            finally:
                if direct:
                    conn.close()
        self._columnar = True
        self._set_config("columnar", "1")
        return written

    def _columnar_arrays(
        self,
        table: str,
        columns: Sequence[str],
        time_column: str,
        start: int | None,
        stop: int | None,
    ):
        import numpy as np

        if not self._columnar or table not in self._registry:
            return None
        times_parts = []
        value_parts: list[list] = [[] for _ in columns]
        with self.pruned(start, stop):
            infos = self._shards_for(table)
        for info in infos:
            cols_dir = Path(f"{self._shard_abspath(info)}.cols")
            time_file = cols_dir / f"{table}.{time_column}.npy"
            if not time_file.exists():
                return None
            times = np.load(time_file)
            loaded = []
            for column in columns:
                col_file = cols_dir / f"{table}.{column}.npy"
                if not col_file.exists():
                    return None
                loaded.append(np.load(col_file))
            self.shard_open_log.append(f"{info.relpath}.cols")
            times_parts.append(times)
            for part, array in zip(value_parts, loaded):
                part.append(array)
        if not times_parts:
            empty = np.array([], dtype=np.float64)
            return empty, [np.array([], dtype=np.float64) for _ in columns]
        times = np.concatenate(times_parts)
        values = [np.concatenate(part) for part in value_parts]
        return times, values

    def columnar_series(
        self,
        table: str,
        columns: Sequence[str],
        start: int | None = None,
        stop: int | None = None,
    ):
        """``(times, summed_values)`` arrays for a metric table, or
        ``None`` when sidecars are absent/stale (caller falls back to
        SQL).  Matches ``metric_series`` semantics: values are the
        NULL-as-zero sum of ``columns``, rows with a NULL timestamp are
        dropped, output is sorted by time; ``start``/``stop`` are
        warehouse timestamps.
        """
        import numpy as np

        arrays = self._columnar_arrays(
            table, columns, "timestamp_us", start, stop
        )
        if arrays is None:
            return None
        times, value_arrays = arrays
        summed = np.zeros_like(times)
        for array in value_arrays:
            summed = summed + np.nan_to_num(array, nan=0.0)
        mask = ~np.isnan(times)
        if start is not None:
            mask &= times >= start
        if stop is not None:
            mask &= times < stop
        times, summed = times[mask], summed[mask]
        order = np.argsort(times, kind="stable")
        return times[order].astype(np.int64), summed[order]

    def columnar_spans(
        self,
        table: str,
        start: int | None = None,
        stop: int | None = None,
    ):
        """Sorted ``(arrivals, departures)`` arrays for an event table
        (completed rows only, optionally bounded on arrival), or
        ``None`` when sidecars are absent/stale."""
        import numpy as np

        arrays = self._columnar_arrays(
            table,
            ("upstream_departure_us",),
            "upstream_arrival_us",
            start,
            stop,
        )
        if arrays is None:
            return None
        arrivals, (departures,) = arrays
        mask = ~np.isnan(departures) & ~np.isnan(arrivals)
        if start is not None:
            mask &= arrivals >= start
        if stop is not None:
            mask &= arrivals < stop
        arrivals, departures = arrivals[mask], departures[mask]
        return (
            np.sort(arrivals).astype(np.int64),
            np.sort(departures).astype(np.int64),
        )


def open_warehouse(
    path: Path | str, threadsafe: bool = False
) -> MScopeDB | ShardedMScopeDB:
    """Open a warehouse by path, monolithic or sharded.

    A directory containing ``manifest.db`` is a sharded warehouse;
    anything else is treated as a monolithic sqlite file.  Every
    read-side consumer (CLI subcommands, diagnosis workers, the serve
    daemon) goes through this, so both layouts are interchangeable
    downstream.  ``threadsafe`` opens every underlying connection with
    ``check_same_thread=False`` for single-owner, multi-thread use.
    """
    path = Path(path)
    if path.is_dir() and (path / MANIFEST_FILE).exists():
        return ShardedMScopeDB(path, threadsafe=threadsafe)
    return MScopeDB(path, threadsafe=threadsafe)
