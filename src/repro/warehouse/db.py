"""mScopeDB — the dynamic data warehouse.

A sqlite-backed store with the paper's structure (Section III-C): four
*static* tables hold load-time metadata (experiment configuration, host
configuration, the monitor registry, and the load catalog), while the
measurement tables are created *dynamically* by the mScope Data
Importer as logs arrive — their schemas inferred bottom-up from the
data, never declared in advance.
"""

from __future__ import annotations

import re
import sqlite3
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.common.errors import QueryError, WarehouseError

__all__ = ["MScopeDB", "STATIC_TABLES", "quote_identifier"]

#: The four static metadata tables (Section III-C).
STATIC_TABLES = (
    "experiment_meta",
    "host_config",
    "monitor_registry",
    "load_catalog",
)

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

_ALLOWED_TYPES = {"INTEGER", "REAL", "TEXT"}


def quote_identifier(name: str) -> str:
    """Validate and quote a SQL identifier derived from log data."""
    if not _IDENTIFIER_RE.match(name):
        raise WarehouseError(f"invalid SQL identifier {name!r}")
    return f'"{name}"'


class MScopeDB:
    """The milliScope dynamic data warehouse.

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` (the default) for an
        in-memory warehouse.

    Examples
    --------
    >>> db = MScopeDB()
    >>> db.create_table("collectl_web1", [("timestamp_us", "INTEGER"),
    ...                                   ("cpu_user_pct", "REAL")])
    >>> db.insert_rows("collectl_web1", ["timestamp_us", "cpu_user_pct"],
    ...                [(1000, 12.5)])
    1
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.execute("PRAGMA journal_mode = MEMORY")
        self._create_static_tables()

    # ------------------------------------------------------------------
    # lifecycle

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None  # type: ignore[assignment]

    def __enter__(self) -> "MScopeDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_conn(self) -> sqlite3.Connection:
        if self._conn is None:
            raise WarehouseError("warehouse is closed")
        return self._conn

    # ------------------------------------------------------------------
    # static tables

    def _create_static_tables(self) -> None:
        conn = self._require_conn()
        conn.executescript(
            """
            CREATE TABLE IF NOT EXISTS experiment_meta (
                key TEXT PRIMARY KEY,
                value TEXT NOT NULL
            );
            CREATE TABLE IF NOT EXISTS host_config (
                hostname TEXT PRIMARY KEY,
                tier TEXT,
                cores INTEGER,
                disk_bandwidth_bytes_per_sec INTEGER
            );
            CREATE TABLE IF NOT EXISTS monitor_registry (
                monitor TEXT NOT NULL,
                hostname TEXT NOT NULL,
                source_path TEXT NOT NULL,
                parser TEXT NOT NULL,
                table_name TEXT NOT NULL,
                PRIMARY KEY (monitor, hostname, source_path)
            );
            CREATE TABLE IF NOT EXISTS load_catalog (
                table_name TEXT NOT NULL,
                source_path TEXT NOT NULL,
                rows_loaded INTEGER NOT NULL,
                columns INTEGER NOT NULL,
                PRIMARY KEY (table_name, source_path)
            );
            """
        )
        conn.commit()

    def set_experiment_meta(self, key: str, value: str) -> None:
        """Record one experiment metadata entry."""
        conn = self._require_conn()
        conn.execute(
            "INSERT OR REPLACE INTO experiment_meta (key, value) VALUES (?, ?)",
            (key, str(value)),
        )
        conn.commit()

    def get_experiment_meta(self, key: str) -> str | None:
        """Read one experiment metadata entry."""
        row = self._require_conn().execute(
            "SELECT value FROM experiment_meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else None

    def register_host(
        self,
        hostname: str,
        tier: str,
        cores: int,
        disk_bandwidth: int,
    ) -> None:
        """Record one host's configuration."""
        conn = self._require_conn()
        conn.execute(
            "INSERT OR REPLACE INTO host_config VALUES (?, ?, ?, ?)",
            (hostname, tier, cores, disk_bandwidth),
        )
        conn.commit()

    def register_monitor(
        self,
        monitor: str,
        hostname: str,
        source_path: str,
        parser: str,
        table_name: str,
    ) -> None:
        """Record the provenance of one loaded monitor log."""
        conn = self._require_conn()
        conn.execute(
            "INSERT OR REPLACE INTO monitor_registry VALUES (?, ?, ?, ?, ?)",
            (monitor, hostname, source_path, parser, table_name),
        )
        conn.commit()

    def record_load(
        self, table_name: str, source_path: str, rows: int, columns: int
    ) -> None:
        """Record one load into the catalog."""
        conn = self._require_conn()
        conn.execute(
            "INSERT OR REPLACE INTO load_catalog VALUES (?, ?, ?, ?)",
            (table_name, source_path, rows, columns),
        )
        conn.commit()

    # ------------------------------------------------------------------
    # dynamic tables

    def create_table(
        self, name: str, columns: Sequence[tuple[str, str]]
    ) -> None:
        """Create a dynamic table with the given ``(name, type)`` columns."""
        if not columns:
            raise WarehouseError(f"table {name!r} needs at least one column")
        if name in STATIC_TABLES:
            raise WarehouseError(f"{name!r} is a reserved static table")
        rendered = []
        for column, sql_type in columns:
            if sql_type not in _ALLOWED_TYPES:
                raise WarehouseError(
                    f"column {column!r} has unsupported type {sql_type!r}"
                )
            rendered.append(f"{quote_identifier(column)} {sql_type}")
        conn = self._require_conn()
        conn.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_identifier(name)} "
            f"({', '.join(rendered)})"
        )
        conn.commit()

    def create_index(self, table: str, column: str) -> None:
        """Create (if absent) a single-column index on a dynamic table.

        The importer indexes ``request_id`` and ``timestamp_us`` so the
        cross-tier ID joins (Figure 5) and windowed metric scans stay
        fast as the warehouse grows.
        """
        index_name = f"idx_{table}_{column}"
        conn = self._require_conn()
        conn.execute(
            f"CREATE INDEX IF NOT EXISTS {quote_identifier(index_name)} "
            f"ON {quote_identifier(table)} ({quote_identifier(column)})"
        )
        conn.commit()

    def indexes(self, table: str) -> list[str]:
        """Names of the indexes on ``table``."""
        rows = self._require_conn().execute(
            "SELECT name FROM sqlite_master WHERE type = 'index' "
            "AND tbl_name = ? ORDER BY name",
            (table,),
        ).fetchall()
        return [r[0] for r in rows]

    def add_column(self, table: str, column: str, sql_type: str) -> None:
        """Add a column to an existing dynamic table (NULL backfill)."""
        if sql_type not in _ALLOWED_TYPES:
            raise WarehouseError(f"unsupported type {sql_type!r}")
        conn = self._require_conn()
        conn.execute(
            f"ALTER TABLE {quote_identifier(table)} "
            f"ADD COLUMN {quote_identifier(column)} {sql_type}"
        )
        conn.commit()

    def insert_rows(
        self,
        table: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]],
    ) -> int:
        """Bulk-insert rows; returns the number inserted."""
        column_sql = ", ".join(quote_identifier(c) for c in columns)
        placeholders = ", ".join("?" for _ in columns)
        conn = self._require_conn()
        cursor = conn.executemany(
            f"INSERT INTO {quote_identifier(table)} ({column_sql}) "
            f"VALUES ({placeholders})",
            rows,
        )
        conn.commit()
        return cursor.rowcount

    # ------------------------------------------------------------------
    # introspection & querying

    def tables(self) -> list[str]:
        """All table names, static and dynamic."""
        rows = self._require_conn().execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name"
        ).fetchall()
        return [r[0] for r in rows]

    def dynamic_tables(self) -> list[str]:
        """Only the dynamically created measurement tables."""
        return [t for t in self.tables() if t not in STATIC_TABLES]

    def table_schema(self, table: str) -> list[tuple[str, str]]:
        """``(column, type)`` pairs of one table."""
        rows = self._require_conn().execute(
            f"PRAGMA table_info({quote_identifier(table)})"
        ).fetchall()
        if not rows:
            raise QueryError(f"no such table {table!r}")
        return [(r[1], r[2]) for r in rows]

    def row_count(self, table: str) -> int:
        """Number of rows in ``table``."""
        if table not in self.tables():
            raise QueryError(f"no such table {table!r}")
        return self._require_conn().execute(
            f"SELECT COUNT(*) FROM {quote_identifier(table)}"
        ).fetchone()[0]

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[tuple]:
        """Run an arbitrary read query."""
        try:
            return self._require_conn().execute(sql, params).fetchall()
        except sqlite3.Error as exc:
            raise QueryError(f"query failed: {exc}") from exc

    def fetch_series(
        self,
        table: str,
        time_column: str,
        value_column: str,
        start: int | None = None,
        stop: int | None = None,
    ) -> list[tuple[int, float]]:
        """A ``(time, value)`` series from one table, optionally windowed."""
        sql = (
            f"SELECT {quote_identifier(time_column)}, "
            f"{quote_identifier(value_column)} FROM {quote_identifier(table)}"
        )
        conditions = []
        params: list[Any] = []
        if start is not None:
            conditions.append(f"{quote_identifier(time_column)} >= ?")
            params.append(start)
        if stop is not None:
            conditions.append(f"{quote_identifier(time_column)} < ?")
            params.append(stop)
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        sql += f" ORDER BY {quote_identifier(time_column)}"
        return self.query(sql, params)
