"""mScopeDB — the dynamic data warehouse.

A sqlite-backed store with the paper's structure (Section III-C): four
*static* tables hold load-time metadata (experiment configuration, host
configuration, the monitor registry, and the load catalog), while the
measurement tables are created *dynamically* by the mScope Data
Importer as logs arrive — their schemas inferred bottom-up from the
data, never declared in advance.  A fifth internal static table, the
schema catalog, records each dynamic column's declared type so later
type widenings (a REAL value landing in an INTEGER column) stay
visible through :meth:`MScopeDB.table_schema`.

Bulk loading: :meth:`MScopeDB.bulk_load` defers commits across any
number of loads (one transaction per context), and file-backed
databases run in WAL journal mode so readers never block the loader.
"""

from __future__ import annotations

import contextlib
import itertools
import re
import sqlite3
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.common.errors import QueryError, WarehouseError

__all__ = [
    "MScopeDB",
    "RESPONSE_TIME_SQL",
    "STATIC_TABLES",
    "quote_identifier",
    "table_content_lines",
]

#: The four static metadata tables (Section III-C), plus the internal
#: schema catalog backing dynamic-column type widening, the ingest
#: error ledger populated by lenient error policies, and the pipeline
#: telemetry tables (created lazily — only a telemetry-enabled
#: transform materializes them, so telemetry-off warehouses stay
#: byte-identical to pre-telemetry ones).
STATIC_TABLES = (
    "experiment_meta",
    "host_config",
    "monitor_registry",
    "load_catalog",
    "schema_catalog",
    "ingest_errors",
    "pipeline_metrics",
    "pipeline_workers",
    "sampling_ledger",
    "conflated_requests",
)

#: Rows per ``executemany`` batch during bulk inserts.
_INSERT_BATCH_SIZE = 5000

#: Bound variables held back from :meth:`MScopeDB.max_variables` when
#: deriving the ``query_in_chunks`` chunk size, leaving room for the
#: query's own non-chunk parameters (epoch offsets, window bounds).
_IN_CHUNK_HEADROOM = 32

#: The variable limit assumed when the connection cannot report one
#: (``sqlite3.Connection.getlimit`` arrived in Python 3.11): sqlite's
#: historical SQLITE_MAX_VARIABLE_NUMBER compile-time default.
_FALLBACK_MAX_VARIABLES = 999

#: The expression the explorer's response-time queries sort and
#: aggregate on; :meth:`MScopeDB.create_response_time_index` indexes
#: exactly this expression so those queries never fall back to a full
#: scan (sqlite matches expression indexes structurally).
RESPONSE_TIME_SQL = "upstream_departure_us - upstream_arrival_us"

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

_ALLOWED_TYPES = {"INTEGER", "REAL", "TEXT"}


def quote_identifier(name: str) -> str:
    """Validate and quote a SQL identifier derived from log data."""
    if not _IDENTIFIER_RE.match(name):
        raise WarehouseError(f"invalid SQL identifier {name!r}")
    return f'"{name}"'


def _content_sort_key(row: Sequence[Any]) -> list[tuple]:
    """A total, storage-independent sort key for one table row.

    Ranks NULL < numeric < text < other (matching sqlite collation
    between storage classes), compares numerics as floats so an
    INTEGER-affinity ``2`` and a REAL ``2.0`` land adjacently, and
    breaks every remaining tie on ``repr`` so the order never depends
    on which warehouse layout produced the rows.
    """
    key = []
    for value in row:
        if value is None:
            key.append((0, 0.0, "", ""))
        elif isinstance(value, (int, float)):
            key.append((1, float(value), "", repr(value)))
        elif isinstance(value, str):
            key.append((2, 0.0, value, repr(value)))
        else:
            key.append((3, 0.0, "", repr(value)))
    return key


def table_content_lines(
    table: str,
    schema: Sequence[tuple[str, str]],
    rows: Iterable[Sequence[Any]],
) -> Iterator[str]:
    """Canonical content lines for one table: schema, then sorted rows.

    The layout-independent counterpart of a raw SQL dump — row order is
    canonicalized (see :func:`_content_sort_key`), so a partitioned
    warehouse and a monolithic one holding the same data render the
    same lines.  Conformance's shard≡monolith pair streams these
    line-by-line; memory stays bounded by one table's rows.
    """
    rendered = ", ".join(f"{column} {sql_type}" for column, sql_type in schema)
    yield f"TABLE {table} ({rendered})"
    for row in sorted(rows, key=_content_sort_key):
        yield repr(tuple(row))


class MScopeDB:
    """The milliScope dynamic data warehouse.

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` (the default) for an
        in-memory warehouse.
    threadsafe:
        Open the connection with ``check_same_thread=False`` so a
        long-lived owner (the ``mscope serve`` daemon) can use it from
        executor threads.  Python's sqlite3 serializes access at the
        connection level; the *caller* still must not interleave
        transactions from concurrent threads.

    Examples
    --------
    >>> db = MScopeDB()
    >>> db.create_table("collectl_web1", [("timestamp_us", "INTEGER"),
    ...                                   ("cpu_user_pct", "REAL")])
    >>> db.insert_rows("collectl_web1", ["timestamp_us", "cpu_user_pct"],
    ...                [(1000, 12.5)])
    1
    """

    def __init__(
        self, path: str | Path = ":memory:", threadsafe: bool = False
    ) -> None:
        self.path = str(path)
        self.threadsafe = threadsafe
        self._conn = sqlite3.connect(
            self.path, check_same_thread=not threadsafe
        )
        self._bulk_depth = 0
        #: table → resolved (column, type) pairs; every DDL path and
        #: catalog widening invalidates its table's entry, so a cached
        #: schema is always what :meth:`table_schema` would recompute.
        self._schema_cache: dict[str, list[tuple[str, str]]] = {}
        if self.path == ":memory:":
            self._conn.execute("PRAGMA journal_mode = MEMORY")
        else:
            # WAL lets concurrent readers proceed while a bulk load
            # holds the write lock, and NORMAL sync is safe under WAL.
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute("PRAGMA synchronous = NORMAL")
        self._create_static_tables()

    # ------------------------------------------------------------------
    # lifecycle

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None  # type: ignore[assignment]

    def __enter__(self) -> "MScopeDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_conn(self) -> sqlite3.Connection:
        if self._conn is None:
            raise WarehouseError("warehouse is closed")
        return self._conn

    def _commit(self) -> None:
        """Commit now, unless a :meth:`bulk_load` context defers it."""
        if self._bulk_depth == 0:
            self._require_conn().commit()

    @contextlib.contextmanager
    def bulk_load(self) -> Iterator["MScopeDB"]:
        """Defer commits for the duration of the context.

        Every write inside the context joins one transaction that
        commits when the outermost context exits cleanly (contexts
        nest; inner exits are no-ops).  On an exception the
        transaction rolls back, so a load is all-or-nothing at the
        granularity of the outermost context.
        """
        conn = self._require_conn()
        self._bulk_depth += 1
        try:
            yield self
        except BaseException:
            self._bulk_depth -= 1
            if self._bulk_depth == 0:
                conn.rollback()
            raise
        else:
            self._bulk_depth -= 1
            if self._bulk_depth == 0:
                self._commit()

    def iterdump(self) -> Iterator[str]:
        """The SQL dump of the whole warehouse (schema + rows).

        Deterministic for a given sequence of DDL/DML statements, so
        two warehouses loaded identically dump identically — the
        parallel/serial equivalence tests compare exactly this.  A
        *generator*: conformance diffs two dumps line-by-line without
        ever holding either one whole in memory (wrap in ``list`` to
        materialize).
        """
        yield from self._require_conn().iterdump()

    def iterdump_content(self) -> Iterator[str]:
        """Canonical *content* lines: every table's schema plus its
        rows in a storage-independent order.

        Unlike :meth:`iterdump` this ignores physical layout (rowids,
        insert order, page structure), so it is the dump a partitioned
        warehouse can be compared against — see
        :meth:`repro.warehouse.sharded.ShardedMScopeDB.iterdump_content`.
        """
        conn = self._require_conn()
        for table in self.tables():
            schema = self.table_schema(table)
            columns = ", ".join(quote_identifier(c) for c, _ in schema)
            rows = conn.execute(
                f"SELECT {columns} FROM {quote_identifier(table)}"
            )
            yield from table_content_lines(table, schema, rows)

    # ------------------------------------------------------------------
    # static tables

    def _create_static_tables(self) -> None:
        conn = self._require_conn()
        conn.executescript(
            """
            CREATE TABLE IF NOT EXISTS experiment_meta (
                key TEXT PRIMARY KEY,
                value TEXT NOT NULL
            );
            CREATE TABLE IF NOT EXISTS host_config (
                hostname TEXT PRIMARY KEY,
                tier TEXT,
                cores INTEGER,
                disk_bandwidth_bytes_per_sec INTEGER
            );
            CREATE TABLE IF NOT EXISTS monitor_registry (
                monitor TEXT NOT NULL,
                hostname TEXT NOT NULL,
                source_path TEXT NOT NULL,
                parser TEXT NOT NULL,
                table_name TEXT NOT NULL,
                PRIMARY KEY (monitor, hostname, source_path)
            );
            CREATE TABLE IF NOT EXISTS load_catalog (
                table_name TEXT NOT NULL,
                source_path TEXT NOT NULL,
                rows_loaded INTEGER NOT NULL,
                columns INTEGER NOT NULL,
                PRIMARY KEY (table_name, source_path)
            );
            CREATE TABLE IF NOT EXISTS schema_catalog (
                table_name TEXT NOT NULL,
                column_name TEXT NOT NULL,
                sql_type TEXT NOT NULL,
                PRIMARY KEY (table_name, column_name)
            );
            CREATE TABLE IF NOT EXISTS ingest_errors (
                source_path TEXT NOT NULL,
                line_number INTEGER NOT NULL,
                parser TEXT NOT NULL,
                reason TEXT NOT NULL,
                excerpt TEXT NOT NULL DEFAULT '',
                PRIMARY KEY (source_path, line_number)
            );
            """
        )
        self._commit()

    def set_experiment_meta(self, key: str, value: str) -> None:
        """Record one experiment metadata entry."""
        conn = self._require_conn()
        conn.execute(
            "INSERT OR REPLACE INTO experiment_meta (key, value) VALUES (?, ?)",
            (key, str(value)),
        )
        self._commit()

    def get_experiment_meta(self, key: str) -> str | None:
        """Read one experiment metadata entry."""
        row = self._require_conn().execute(
            "SELECT value FROM experiment_meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else None

    def register_host(
        self,
        hostname: str,
        tier: str,
        cores: int,
        disk_bandwidth: int,
    ) -> None:
        """Record one host's configuration."""
        conn = self._require_conn()
        conn.execute(
            "INSERT OR REPLACE INTO host_config VALUES (?, ?, ?, ?)",
            (hostname, tier, cores, disk_bandwidth),
        )
        self._commit()

    def register_monitor(
        self,
        monitor: str,
        hostname: str,
        source_path: str,
        parser: str,
        table_name: str,
    ) -> None:
        """Record the provenance of one loaded monitor log."""
        conn = self._require_conn()
        conn.execute(
            "INSERT OR REPLACE INTO monitor_registry VALUES (?, ?, ?, ?, ?)",
            (monitor, hostname, source_path, parser, table_name),
        )
        self._commit()

    def record_load(
        self, table_name: str, source_path: str, rows: int, columns: int
    ) -> None:
        """Record one load into the catalog."""
        conn = self._require_conn()
        conn.execute(
            "INSERT OR REPLACE INTO load_catalog VALUES (?, ?, ?, ?)",
            (table_name, source_path, rows, columns),
        )
        self._commit()

    def record_ingest_error(
        self,
        source_path: str,
        line_number: int,
        parser: str,
        reason: str,
        excerpt: str = "",
    ) -> None:
        """Record one damaged line/record/file in the error ledger.

        ``line_number`` is 1-based; ``0`` marks a file-level failure.
        Keyed on ``(source_path, line_number)`` so re-recording the
        same damage (e.g. every :class:`LiveTransformer` refresh
        re-reads the file) is idempotent.
        """
        conn = self._require_conn()
        conn.execute(
            "INSERT OR REPLACE INTO ingest_errors VALUES (?, ?, ?, ?, ?)",
            (source_path, line_number, parser, reason, excerpt),
        )
        self._commit()

    def ingest_errors(self, source_path: str | None = None) -> list[tuple]:
        """``(source_path, line_number, parser, reason, excerpt)`` rows.

        Ordered by file then line; optionally filtered to one file.
        """
        sql = (
            "SELECT source_path, line_number, parser, reason, excerpt "
            "FROM ingest_errors"
        )
        params: tuple = ()
        if source_path is not None:
            sql += " WHERE source_path = ?"
            params = (source_path,)
        sql += " ORDER BY source_path, line_number"
        return self._require_conn().execute(sql, params).fetchall()

    def ingest_error_count(self) -> int:
        """Number of recorded ingest errors."""
        return self._require_conn().execute(
            "SELECT COUNT(*) FROM ingest_errors"
        ).fetchone()[0]

    # ------------------------------------------------------------------
    # sampling ledger

    def _ensure_sampling_tables(self) -> None:
        """Create the sampling tables on first use (lazily).

        Like the telemetry tables, deliberately *not* part of
        :meth:`_create_static_tables`: an unsampled warehouse must dump
        byte-identically to one from before the sampling layer existed.
        """
        conn = self._require_conn()
        conn.executescript(
            """
            CREATE TABLE IF NOT EXISTS sampling_ledger (
                table_name TEXT NOT NULL,
                source_path TEXT NOT NULL,
                policy TEXT NOT NULL,
                rows_seen INTEGER NOT NULL,
                rows_kept INTEGER NOT NULL,
                bytes_seen INTEGER NOT NULL,
                bytes_kept INTEGER NOT NULL,
                PRIMARY KEY (table_name, source_path)
            );
            CREATE TABLE IF NOT EXISTS conflated_requests (
                table_name TEXT NOT NULL,
                interaction TEXT NOT NULL,
                requests INTEGER NOT NULL,
                records INTEGER NOT NULL,
                latency_sum_us INTEGER NOT NULL,
                latency_min_us INTEGER NOT NULL,
                latency_max_us INTEGER NOT NULL,
                PRIMARY KEY (table_name, interaction)
            );
            """
        )

    def record_sampling(
        self,
        table_name: str,
        source_path: str,
        policy: str,
        rows_seen: int,
        rows_kept: int,
        bytes_seen: int,
        bytes_kept: int,
    ) -> None:
        """Record one stream's cumulative sampling counts in the ledger.

        Keyed on ``(table_name, source_path)`` with *cumulative* counts
        so a live transformer re-recording after every refresh is
        idempotent and converges on the batch transform's ledger (the
        ``load_catalog`` precedent).
        """
        self._ensure_sampling_tables()
        conn = self._require_conn()
        conn.execute(
            "INSERT OR REPLACE INTO sampling_ledger "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                table_name, source_path, policy,
                rows_seen, rows_kept, bytes_seen, bytes_kept,
            ),
        )
        self._commit()

    def record_conflated(
        self,
        table_name: str,
        interaction: str,
        requests: int,
        records: int,
        latency_sum_us: int,
        latency_min_us: int,
        latency_max_us: int,
    ) -> None:
        """Record one request class's cumulative conflation aggregate."""
        self._ensure_sampling_tables()
        conn = self._require_conn()
        conn.execute(
            "INSERT OR REPLACE INTO conflated_requests "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                table_name, interaction, requests, records,
                latency_sum_us, latency_min_us, latency_max_us,
            ),
        )
        self._commit()

    def sampling_ledger(self) -> list[tuple]:
        """``(table_name, source_path, policy, rows_seen, rows_kept,
        bytes_seen, bytes_kept)`` rows, ordered by table then source."""
        if "sampling_ledger" not in self.tables():
            return []
        return self._require_conn().execute(
            "SELECT table_name, source_path, policy, rows_seen, "
            "rows_kept, bytes_seen, bytes_kept FROM sampling_ledger "
            "ORDER BY table_name, source_path"
        ).fetchall()

    def sampling_summary(self) -> dict | None:
        """Warehouse-wide sampling totals, or None when never sampled.

        The reduction factors are *measured* over the ledger (every
        policy counts what it drops), not estimated from the configured
        rate.
        """
        rows = self.sampling_ledger()
        if not rows:
            return None
        rows_seen = sum(r[3] for r in rows)
        rows_kept = sum(r[4] for r in rows)
        bytes_seen = sum(r[5] for r in rows)
        bytes_kept = sum(r[6] for r in rows)
        return {
            "policies": sorted({r[2] for r in rows}),
            "rows_seen": rows_seen,
            "rows_kept": rows_kept,
            "bytes_seen": bytes_seen,
            "bytes_kept": bytes_kept,
            "row_reduction": (
                rows_seen / rows_kept if rows_kept else float(rows_seen)
            ),
            "byte_reduction": (
                bytes_seen / bytes_kept if bytes_kept else float(bytes_seen)
            ),
        }

    def conflated_requests(self) -> list[tuple]:
        """``(table_name, interaction, requests, records, latency_sum_us,
        latency_min_us, latency_max_us)`` rows, ordered by table, class."""
        if "conflated_requests" not in self.tables():
            return []
        return self._require_conn().execute(
            "SELECT table_name, interaction, requests, records, "
            "latency_sum_us, latency_min_us, latency_max_us "
            "FROM conflated_requests ORDER BY table_name, interaction"
        ).fetchall()

    # ------------------------------------------------------------------
    # pipeline telemetry

    def _ensure_telemetry_tables(self) -> None:
        """Create the telemetry tables on first use (lazily).

        Deliberately *not* part of :meth:`_create_static_tables`: a
        warehouse loaded with telemetry off must dump byte-identically
        to one from before the telemetry layer existed.
        """
        conn = self._require_conn()
        conn.executescript(
            """
            CREATE TABLE IF NOT EXISTS pipeline_metrics (
                seq INTEGER PRIMARY KEY,
                stage TEXT NOT NULL,
                hostname TEXT NOT NULL,
                source_path TEXT NOT NULL,
                records INTEGER NOT NULL,
                bytes INTEGER NOT NULL,
                errors INTEGER NOT NULL,
                duration_us INTEGER NOT NULL
            );
            CREATE TABLE IF NOT EXISTS pipeline_workers (
                worker TEXT PRIMARY KEY,
                spans INTEGER NOT NULL,
                busy_us INTEGER NOT NULL,
                utilization REAL NOT NULL
            );
            """
        )

    def replace_pipeline_metrics(
        self, rows: Iterable[Sequence[Any]]
    ) -> int:
        """Replace the persisted span rows with one run's telemetry.

        ``rows`` are ``(stage, hostname, source_path, records, bytes,
        errors, duration_us)`` tuples **in single-writer drain order**
        — the sequence number is assigned here, so row order in the
        warehouse always mirrors ingest order.  Returns the row count.
        """
        self._ensure_telemetry_tables()
        conn = self._require_conn()
        conn.execute("DELETE FROM pipeline_metrics")
        numbered = [(seq, *row) for seq, row in enumerate(rows)]
        conn.executemany(
            "INSERT INTO pipeline_metrics VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            numbered,
        )
        self._commit()
        return len(numbered)

    def append_pipeline_metrics(
        self,
        rows: Iterable[Sequence[Any]],
        replace_prefix: str | None = None,
    ) -> int:
        """Append span rows after the persisted pipeline telemetry.

        The analysis engine's spans land *next to* the ingest stages —
        appending (rather than :meth:`replace_pipeline_metrics`, which
        wipes the table) keeps a transform's telemetry intact while
        ``mscope stats`` gains the analysis rows.  ``replace_prefix``
        first deletes rows whose stage starts with the prefix, so
        re-running a diagnosis replaces its own spans idempotently.
        Returns the appended row count.
        """
        self._ensure_telemetry_tables()
        conn = self._require_conn()
        if replace_prefix is not None:
            conn.execute(
                "DELETE FROM pipeline_metrics WHERE stage LIKE ? || '%'",
                (replace_prefix,),
            )
        next_seq = conn.execute(
            "SELECT COALESCE(MAX(seq), -1) + 1 FROM pipeline_metrics"
        ).fetchone()[0]
        numbered = [(next_seq + i, *row) for i, row in enumerate(rows)]
        conn.executemany(
            "INSERT INTO pipeline_metrics VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            numbered,
        )
        self._commit()
        return len(numbered)

    def replace_pipeline_workers(
        self, rows: Iterable[Sequence[Any]]
    ) -> int:
        """Replace the per-worker rollup: ``(worker, spans, busy_us,
        utilization)`` rows."""
        self._ensure_telemetry_tables()
        conn = self._require_conn()
        conn.execute("DELETE FROM pipeline_workers")
        cursor = conn.executemany(
            "INSERT INTO pipeline_workers VALUES (?, ?, ?, ?)", rows
        )
        inserted = cursor.rowcount
        self._commit()
        return inserted

    def has_pipeline_metrics(self) -> bool:
        """Whether this warehouse holds persisted pipeline telemetry."""
        return "pipeline_metrics" in self.tables()

    def pipeline_metrics(self) -> list[tuple]:
        """``(stage, hostname, source_path, records, bytes, errors,
        duration_us)`` rows in drain order (empty when telemetry was
        off)."""
        if not self.has_pipeline_metrics():
            return []
        return self._require_conn().execute(
            "SELECT stage, hostname, source_path, records, bytes, errors, "
            "duration_us FROM pipeline_metrics ORDER BY seq"
        ).fetchall()

    def pipeline_workers(self) -> list[tuple]:
        """``(worker, spans, busy_us, utilization)`` rollup rows."""
        if "pipeline_workers" not in self.tables():
            return []
        return self._require_conn().execute(
            "SELECT worker, spans, busy_us, utilization "
            "FROM pipeline_workers ORDER BY worker"
        ).fetchall()

    # ------------------------------------------------------------------
    # dynamic tables

    def create_table(
        self, name: str, columns: Sequence[tuple[str, str]]
    ) -> None:
        """Create a dynamic table with the given ``(name, type)`` columns."""
        if not columns:
            raise WarehouseError(f"table {name!r} needs at least one column")
        if name in STATIC_TABLES:
            raise WarehouseError(f"{name!r} is a reserved static table")
        rendered = []
        for column, sql_type in columns:
            if sql_type not in _ALLOWED_TYPES:
                raise WarehouseError(
                    f"column {column!r} has unsupported type {sql_type!r}"
                )
            rendered.append(f"{quote_identifier(column)} {sql_type}")
        conn = self._require_conn()
        conn.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_identifier(name)} "
            f"({', '.join(rendered)})"
        )
        conn.executemany(
            "INSERT OR REPLACE INTO schema_catalog VALUES (?, ?, ?)",
            [(name, column, sql_type) for column, sql_type in columns],
        )
        self._schema_cache.pop(name, None)
        self._commit()

    def record_column_type(self, table: str, column: str, sql_type: str) -> None:
        """Record (or widen) a dynamic column's type in the catalog.

        sqlite's type affinity stores wider values in a narrower
        column without rewriting the table, so a widening is purely a
        catalog update — :meth:`table_schema` then reports the
        recorded type instead of the column's original declaration.
        """
        if sql_type not in _ALLOWED_TYPES:
            raise WarehouseError(f"unsupported type {sql_type!r}")
        conn = self._require_conn()
        conn.execute(
            "INSERT OR REPLACE INTO schema_catalog VALUES (?, ?, ?)",
            (table, column, sql_type),
        )
        self._schema_cache.pop(table, None)
        self._commit()

    def create_index(self, table: str, column: str) -> None:
        """Create (if absent) a single-column index on a dynamic table.

        The importer indexes ``request_id`` and ``timestamp_us`` so the
        cross-tier ID joins (Figure 5) and windowed metric scans stay
        fast as the warehouse grows.
        """
        index_name = f"idx_{table}_{column}"
        conn = self._require_conn()
        conn.execute(
            f"CREATE INDEX IF NOT EXISTS {quote_identifier(index_name)} "
            f"ON {quote_identifier(table)} ({quote_identifier(column)})"
        )
        self._commit()

    def create_response_time_index(self, table: str) -> None:
        """Index an event table's response-time expression, descending.

        The explorer's ``slowest_requests`` sorts on
        :data:`RESPONSE_TIME_SQL`; indexing the identical expression
        lets sqlite satisfy the ``ORDER BY ... DESC LIMIT n`` straight
        off the index instead of sorting the whole table.
        """
        index_name = f"idx_{table}_response_time"
        conn = self._require_conn()
        conn.execute(
            f"CREATE INDEX IF NOT EXISTS {quote_identifier(index_name)} "
            f"ON {quote_identifier(table)} ({RESPONSE_TIME_SQL} DESC)"
        )
        self._commit()

    def create_covering_index(
        self, table: str, columns: Sequence[str], name: str
    ) -> None:
        """Create a multi-column (covering) index on a dynamic table.

        A query reading only the indexed columns scans the index and
        never touches the table — the shape ``interaction_stats``'s
        GROUP BY needs.
        """
        index_name = f"idx_{table}_{name}"
        rendered = ", ".join(quote_identifier(c) for c in columns)
        conn = self._require_conn()
        conn.execute(
            f"CREATE INDEX IF NOT EXISTS {quote_identifier(index_name)} "
            f"ON {quote_identifier(table)} ({rendered})"
        )
        self._commit()

    def indexes(self, table: str) -> list[str]:
        """Names of the indexes on ``table``."""
        rows = self._require_conn().execute(
            "SELECT name FROM sqlite_master WHERE type = 'index' "
            "AND tbl_name = ? ORDER BY name",
            (table,),
        ).fetchall()
        return [r[0] for r in rows]

    def add_column(self, table: str, column: str, sql_type: str) -> None:
        """Add a column to an existing dynamic table (NULL backfill)."""
        if sql_type not in _ALLOWED_TYPES:
            raise WarehouseError(f"unsupported type {sql_type!r}")
        conn = self._require_conn()
        conn.execute(
            f"ALTER TABLE {quote_identifier(table)} "
            f"ADD COLUMN {quote_identifier(column)} {sql_type}"
        )
        conn.execute(
            "INSERT OR REPLACE INTO schema_catalog VALUES (?, ?, ?)",
            (table, column, sql_type),
        )
        self._schema_cache.pop(table, None)
        self._commit()

    def insert_rows(
        self,
        table: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]],
    ) -> int:
        """Bulk-insert rows in ``executemany`` batches; returns the count.

        ``rows`` may be any iterable (a generator streams through in
        bounded memory); batching keeps each ``executemany`` call's
        argument list at :data:`_INSERT_BATCH_SIZE` rows.
        """
        column_sql = ", ".join(quote_identifier(c) for c in columns)
        placeholders = ", ".join("?" for _ in columns)
        sql = (
            f"INSERT INTO {quote_identifier(table)} ({column_sql}) "
            f"VALUES ({placeholders})"
        )
        conn = self._require_conn()
        inserted = 0
        iterator = iter(rows)
        while True:
            batch = list(itertools.islice(iterator, _INSERT_BATCH_SIZE))
            if not batch:
                break
            cursor = conn.executemany(sql, batch)
            inserted += cursor.rowcount
        self._commit()
        return inserted

    # ------------------------------------------------------------------
    # introspection & querying

    def tables(self) -> list[str]:
        """All table names, static and dynamic."""
        rows = self._require_conn().execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name"
        ).fetchall()
        return [r[0] for r in rows]

    def dynamic_tables(self) -> list[str]:
        """Only the dynamically created measurement tables."""
        return [t for t in self.tables() if t not in STATIC_TABLES]

    def table_schema(self, table: str) -> list[tuple[str, str]]:
        """``(column, type)`` pairs of one table.

        Types recorded in the schema catalog (including widenings
        applied after load) override the column's original DDL
        declaration.  Results are cached per table; every DDL path
        (:meth:`create_table`, :meth:`add_column`) and catalog update
        (:meth:`record_column_type`) invalidates its table's entry, so
        per-request callers such as the causal-path joins never repay
        the two catalog queries.
        """
        cached = self._schema_cache.get(table)
        if cached is not None:
            return list(cached)
        conn = self._require_conn()
        rows = conn.execute(
            f"PRAGMA table_info({quote_identifier(table)})"
        ).fetchall()
        if not rows:
            raise QueryError(f"no such table {table!r}")
        overrides = dict(
            conn.execute(
                "SELECT column_name, sql_type FROM schema_catalog "
                "WHERE table_name = ?",
                (table,),
            ).fetchall()
        )
        schema = [(r[1], overrides.get(r[1], r[2])) for r in rows]
        self._schema_cache[table] = schema
        return list(schema)

    def row_count(self, table: str) -> int:
        """Number of rows in ``table``."""
        if table not in self.tables():
            raise QueryError(f"no such table {table!r}")
        return self._require_conn().execute(
            f"SELECT COUNT(*) FROM {quote_identifier(table)}"
        ).fetchone()[0]

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[tuple]:
        """Run an arbitrary read query."""
        try:
            return self._require_conn().execute(sql, params).fetchall()
        except sqlite3.Error as exc:
            raise QueryError(f"query failed: {exc}") from exc

    def max_variables(self) -> int:
        """The connection's actual bound-variable limit.

        Read from ``SQLITE_LIMIT_VARIABLE_NUMBER`` where the runtime
        exposes it (Python 3.11+); otherwise sqlite's historical
        compile-time default of 999.  Modern builds allow 250k
        variables, so chunked ``IN (...)`` queries sized from this run
        orders of magnitude fewer statements than the old hardcoded
        900-id chunks.
        """
        conn = self._require_conn()
        getlimit = getattr(conn, "getlimit", None)
        if getlimit is None:
            return _FALLBACK_MAX_VARIABLES
        return int(getlimit(sqlite3.SQLITE_LIMIT_VARIABLE_NUMBER))

    def in_chunk_size(self) -> int:
        """Ids per :meth:`query_in_chunks` statement, derived from the
        connection's variable limit (with headroom for the query's own
        non-chunk parameters)."""
        return max(1, self.max_variables() - _IN_CHUNK_HEADROOM)

    def query_in_chunks(
        self,
        sql: str,
        values: Sequence[Any],
        chunk_size: int | None = None,
    ) -> list[tuple]:
        """Run an ``IN (...)``-style query over ``values`` in chunks.

        ``sql`` must contain one ``{placeholders}`` slot that expands
        to the chunk's ``?`` list; chunking keeps each statement under
        the connection's bound-variable limit (:meth:`max_variables`,
        queried rather than assumed — the default chunk size follows
        the build's actual SQLITE_MAX_VARIABLE_NUMBER).  Results are
        concatenated in chunk order, so per-value row groups keep their
        within-chunk ``ORDER BY`` (each value lands in exactly one
        chunk).
        """
        if chunk_size is None:
            chunk_size = self.in_chunk_size()
        if chunk_size <= 0:
            raise QueryError(f"chunk size must be positive: {chunk_size}")
        rows: list[tuple] = []
        for start in range(0, len(values), chunk_size):
            chunk = values[start : start + chunk_size]
            placeholders = ", ".join("?" for _ in chunk)
            rows.extend(self.query(sql.format(placeholders=placeholders), chunk))
        return rows

    @contextlib.contextmanager
    def pruned(
        self, start: int | None = None, stop: int | None = None
    ) -> Iterator["MScopeDB"]:
        """Partition-pruning hint for reads inside the context.

        The monolithic warehouse has no partitions, so this is a no-op
        — it exists so windowed analysis code can hint its time bounds
        uniformly; ``ShardedMScopeDB`` overrides it to open only the
        shards overlapping ``[start, stop)`` (warehouse timestamps).
        """
        yield self

    def query_plan(self, sql: str, params: Sequence[Any] = ()) -> list[str]:
        """The ``EXPLAIN QUERY PLAN`` detail lines for a query.

        The index-regression tests assert these lines mention an index
        (``USING [COVERING] INDEX``) rather than a bare table scan.
        """
        return [
            row[-1] for row in self.query(f"EXPLAIN QUERY PLAN {sql}", params)
        ]

    def fetch_series(
        self,
        table: str,
        time_column: str,
        value_column: str,
        start: int | None = None,
        stop: int | None = None,
    ) -> list[tuple[int, float]]:
        """A ``(time, value)`` series from one table, optionally windowed."""
        sql = (
            f"SELECT {quote_identifier(time_column)}, "
            f"{quote_identifier(value_column)} FROM {quote_identifier(table)}"
        )
        conditions = []
        params: list[Any] = []
        if start is not None:
            conditions.append(f"{quote_identifier(time_column)} >= ?")
            params.append(start)
        if stop is not None:
            conditions.append(f"{quote_identifier(time_column)} < ?")
            params.append(stop)
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        sql += f" ORDER BY {quote_identifier(time_column)}"
        return self.query(sql, params)
