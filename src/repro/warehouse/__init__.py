"""mScopeDB: the dynamic data warehouse and its exploration API."""

from repro.warehouse.db import MScopeDB, STATIC_TABLES, quote_identifier
from repro.warehouse.explorer import (
    IngestErrorSummary,
    InteractionStats,
    SlowRequest,
    WarehouseExplorer,
)
from repro.warehouse.sharded import (
    ShardedMScopeDB,
    ShardHostWriter,
    open_warehouse,
)

__all__ = [
    "IngestErrorSummary",
    "InteractionStats",
    "MScopeDB",
    "STATIC_TABLES",
    "ShardHostWriter",
    "ShardedMScopeDB",
    "SlowRequest",
    "WarehouseExplorer",
    "open_warehouse",
    "quote_identifier",
]
