"""mScopeDB: the dynamic data warehouse and its exploration API."""

from repro.warehouse.db import MScopeDB, STATIC_TABLES, quote_identifier
from repro.warehouse.explorer import (
    InteractionStats,
    SlowRequest,
    WarehouseExplorer,
)

__all__ = [
    "InteractionStats",
    "MScopeDB",
    "STATIC_TABLES",
    "SlowRequest",
    "WarehouseExplorer",
    "quote_identifier",
]
