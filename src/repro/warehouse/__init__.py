"""mScopeDB: the dynamic data warehouse and its exploration API."""

from repro.warehouse.db import MScopeDB, STATIC_TABLES, quote_identifier
from repro.warehouse.explorer import (
    IngestErrorSummary,
    InteractionStats,
    SlowRequest,
    WarehouseExplorer,
)

__all__ = [
    "IngestErrorSummary",
    "InteractionStats",
    "MScopeDB",
    "STATIC_TABLES",
    "SlowRequest",
    "WarehouseExplorer",
    "quote_identifier",
]
