"""milliScope reproduction: fine-grained monitoring for n-tier web services.

This package reproduces the system described in "milliScope: A
Fine-Grained Monitoring Framework for Performance Debugging of n-Tier
Web Services" (ICDCS 2017):

* a discrete-event n-tier testbed (:mod:`repro.ntier`) driven by the
  RUBBoS benchmark workload (:mod:`repro.rubbos`);
* the milliScope monitoring framework — event and resource
  mScopeMonitors (:mod:`repro.monitors`), the multi-stage
  mScopeDataTransformer (:mod:`repro.transformer`), and the mScopeDB
  dynamic warehouse (:mod:`repro.warehouse`);
* the analysis layer that diagnoses very short bottlenecks
  (:mod:`repro.analysis`);
* baselines (:mod:`repro.baselines`) and the paper's experiments
  (:mod:`repro.experiments`).

Quickstart::

    from repro import scenario_a, figure_02
    run = scenario_a()
    print(figure_02(run).to_text())
"""

from repro.analysis import (
    Diagnoser,
    DiagnosisReport,
    build_markdown_report,
    reconstruct_path,
    write_markdown_report,
)
from repro.baselines import CoarseAveragingMonitor, SamplingTracer, SysVizTracer
from repro.common import (
    Micros,
    RequestIdGenerator,
    RequestTrace,
    RngStreams,
    WallClock,
    ms,
    seconds,
)
from repro.experiments import (
    baseline_run,
    saturation_sweep,
    figure_02,
    figure_04,
    figure_05,
    figure_06,
    figure_07,
    figure_08,
    figure_09,
    figure_10,
    figure_11,
    load_warehouse,
    scenario_a,
    scenario_b,
)
from repro.monitors import EventMonitorSuite, ResourceMonitorSuite
from repro.ntier import (
    DBLogFlushFault,
    DirtyPageFlushFault,
    NTierSystem,
    SystemConfig,
    TierConfig,
)
from repro.rubbos import WorkloadSpec, default_interactions
from repro.transformer import (
    LiveTransformer,
    MScopeDataTransformer,
    default_declaration,
)
from repro.warehouse import MScopeDB, WarehouseExplorer

__version__ = "1.0.0"

__all__ = [
    "CoarseAveragingMonitor",
    "DBLogFlushFault",
    "Diagnoser",
    "DiagnosisReport",
    "DirtyPageFlushFault",
    "EventMonitorSuite",
    "LiveTransformer",
    "MScopeDB",
    "MScopeDataTransformer",
    "Micros",
    "NTierSystem",
    "RequestIdGenerator",
    "RequestTrace",
    "ResourceMonitorSuite",
    "RngStreams",
    "SamplingTracer",
    "SysVizTracer",
    "SystemConfig",
    "TierConfig",
    "WallClock",
    "WarehouseExplorer",
    "WorkloadSpec",
    "baseline_run",
    "build_markdown_report",
    "default_declaration",
    "default_interactions",
    "figure_02",
    "figure_04",
    "figure_05",
    "figure_06",
    "figure_07",
    "figure_08",
    "figure_09",
    "figure_10",
    "figure_11",
    "load_warehouse",
    "ms",
    "reconstruct_path",
    "saturation_sweep",
    "scenario_a",
    "scenario_b",
    "seconds",
    "write_markdown_report",
]
