"""Parsing of ``START:STOP`` simulation-time windows.

One grammar, two consumers: ``mscope diagnose --window`` and the serve
API's ``?window=`` query parameter both accept a colon-separated pair
of simulation-time seconds, either side optional (open-ended).  The
parser rejects malformed, negative, and reversed ranges with a message
naming the offending part — previously a reversed window silently fell
through to an empty diagnosis report.
"""

from __future__ import annotations

from repro.common.timebase import Micros, seconds

__all__ = ["WindowParseError", "parse_window", "format_window"]


class WindowParseError(ValueError):
    """A ``START:STOP`` window string that cannot mean anything."""


def parse_window(text: str) -> tuple[Micros | None, Micros | None]:
    """Parse ``START:STOP`` seconds into a ``(start_us, stop_us)`` pair.

    Either side may be empty for an open end (``120:``, ``:180``), but
    not both; values must be non-negative numbers and the range must
    run forward (``start < stop``).  Raises :class:`WindowParseError`
    with a self-explanatory message otherwise.
    """
    if ":" not in text:
        raise WindowParseError(
            f"bad window {text!r}: expected START:STOP seconds, "
            f"e.g. 120:180 or 120: (open-ended)"
        )
    raw_start, raw_stop = text.split(":", 1)
    if not raw_start and not raw_stop:
        raise WindowParseError(
            f"bad window {text!r}: at least one side must be given"
        )
    start = _parse_side(text, "start", raw_start)
    stop = _parse_side(text, "stop", raw_stop)
    if start is not None and stop is not None and start >= stop:
        raise WindowParseError(
            f"bad window {text!r}: start must be before stop "
            f"(a reversed or empty range selects nothing)"
        )
    return start, stop


def _parse_side(text: str, side: str, raw: str) -> Micros | None:
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise WindowParseError(
            f"bad window {text!r}: {side} {raw!r} is not a number"
        ) from None
    if value < 0:
        raise WindowParseError(
            f"bad window {text!r}: {side} must be >= 0 seconds"
        )
    return seconds(value)


def format_window(start_us: Micros | None, stop_us: Micros | None) -> str:
    """Render a window back into the ``START:STOP`` seconds grammar."""
    left = f"{start_us / 1_000_000:g}" if start_us is not None else ""
    right = f"{stop_us / 1_000_000:g}" if stop_us is not None else ""
    return f"{left}:{right}"
