"""Record types shared across the simulator, monitors, and analysis.

The central concept is the paper's *event of interest* (Section IV-B):
for every request, on every component server it touches, exactly four
timestamps describe the request's execution boundary on that server:

* **upstream arrival** — the request arrives from the upstream tier;
* **downstream sending** — the request is forwarded to a downstream tier;
* **downstream receiving** — the downstream reply comes back;
* **upstream departure** — the reply is returned upstream.

A server that never calls downstream (the last tier) has no downstream
pair.  A tier may be visited several times by one request (Tomcat
issuing three SQL queries produces three C-JDBC and three MySQL
visits); each visit is its own :class:`BoundaryRecord`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.common.timebase import Micros, to_ms

__all__ = [
    "DownstreamCall",
    "BoundaryRecord",
    "RequestTrace",
    "ResourceSample",
]


@dataclasses.dataclass(frozen=True, slots=True)
class DownstreamCall:
    """One downstream round trip issued while serving a request."""

    target_tier: str
    sending: Micros
    receiving: Micros

    def latency(self) -> Micros:
        """Round-trip time of this downstream call."""
        return self.receiving - self.sending


@dataclasses.dataclass(slots=True)
class BoundaryRecord:
    """The four execution-boundary timestamps of one tier visit.

    ``downstream_sending`` / ``downstream_receiving`` are ``None`` for
    visits that issued no downstream call.
    """

    request_id: str
    tier: str
    node: str
    upstream_arrival: Micros
    upstream_departure: Micros | None = None
    downstream_sending: Micros | None = None
    downstream_receiving: Micros | None = None
    downstream_calls: list[DownstreamCall] = dataclasses.field(default_factory=list)

    def record_call(self, call: DownstreamCall) -> None:
        """Fold one downstream round trip into the boundary record."""
        self.downstream_calls.append(call)
        if self.downstream_sending is None or call.sending < self.downstream_sending:
            self.downstream_sending = call.sending
        if (
            self.downstream_receiving is None
            or call.receiving > self.downstream_receiving
        ):
            self.downstream_receiving = call.receiving

    def server_time(self) -> Micros:
        """Total time the request spent on this tier visit."""
        if self.upstream_departure is None:
            raise ValueError(
                f"request {self.request_id} never departed tier {self.tier}"
            )
        return self.upstream_departure - self.upstream_arrival

    def local_time(self) -> Micros:
        """Time attributable to this tier alone (server time minus downstream)."""
        total = self.server_time()
        downstream = sum(call.latency() for call in self.downstream_calls)
        return total - downstream

    def is_complete(self) -> bool:
        """Whether the visit both arrived and departed."""
        return self.upstream_departure is not None


@dataclasses.dataclass(slots=True)
class RequestTrace:
    """End-to-end trace of one request across every tier visit."""

    request_id: str
    interaction: str
    client_send: Micros
    client_receive: Micros | None = None
    visits: list[BoundaryRecord] = dataclasses.field(default_factory=list)

    def add_visit(self, visit: BoundaryRecord) -> None:
        """Append one tier visit to the trace."""
        self.visits.append(visit)

    def response_time(self) -> Micros:
        """Client-observed response time."""
        if self.client_receive is None:
            raise ValueError(f"request {self.request_id} never completed")
        return self.client_receive - self.client_send

    def response_time_ms(self) -> float:
        """Client-observed response time in milliseconds."""
        return to_ms(self.response_time())

    def is_complete(self) -> bool:
        """Whether the client received the response."""
        return self.client_receive is not None

    def tiers(self) -> list[str]:
        """Distinct tiers touched, ordered by first arrival."""
        seen: dict[str, Micros] = {}
        for visit in self.visits:
            if visit.tier not in seen or visit.upstream_arrival < seen[visit.tier]:
                seen[visit.tier] = visit.upstream_arrival
        return sorted(seen, key=seen.__getitem__)

    def visits_for(self, tier: str) -> list[BoundaryRecord]:
        """All visits to ``tier``, ordered by arrival."""
        matching = [v for v in self.visits if v.tier == tier]
        matching.sort(key=lambda v: v.upstream_arrival)
        return matching

    def tier_time(self, tier: str) -> Micros:
        """Total time spent across every visit to ``tier``."""
        return sum(v.server_time() for v in self.visits_for(tier))


@dataclasses.dataclass(frozen=True, slots=True)
class ResourceSample:
    """One sample emitted by a resource mScopeMonitor.

    ``metrics`` maps metric names (e.g. ``"cpu_user_pct"``) to values
    observed over the window ``(timestamp - interval, timestamp]``.
    """

    node: str
    monitor: str
    timestamp: Micros
    interval: Micros
    metrics: dict[str, float]


def merge_visit_spans(
    visits: Iterable[BoundaryRecord],
) -> list[tuple[Micros, Micros]]:
    """Return the ``(arrival, departure)`` spans of completed visits."""
    return [
        (v.upstream_arrival, v.upstream_departure)
        for v in visits
        if v.upstream_departure is not None
    ]
