"""Shared foundations: time base, IDs, RNG streams, records, errors."""

from repro.common.errors import (
    AnalysisError,
    ConfigError,
    DataImportError,
    DeclarationError,
    LogFormatError,
    MilliScopeError,
    MonitorError,
    ParseError,
    QueryError,
    SchemaInferenceError,
    SimulationError,
    WarehouseError,
)
from repro.common.ids import REQUEST_ID_WIDTH, RequestIdGenerator
from repro.common.records import (
    BoundaryRecord,
    DownstreamCall,
    RequestTrace,
    ResourceSample,
)
from repro.common.rng import RngStreams
from repro.common.timebase import (
    DEFAULT_EPOCH,
    Micros,
    US_PER_MS,
    US_PER_SEC,
    WallClock,
    minutes,
    ms,
    seconds,
    to_ms,
    to_seconds,
)

__all__ = [
    "AnalysisError",
    "BoundaryRecord",
    "ConfigError",
    "DataImportError",
    "DeclarationError",
    "DEFAULT_EPOCH",
    "DownstreamCall",
    "LogFormatError",
    "Micros",
    "MilliScopeError",
    "MonitorError",
    "ParseError",
    "QueryError",
    "REQUEST_ID_WIDTH",
    "RequestIdGenerator",
    "RequestTrace",
    "ResourceSample",
    "RngStreams",
    "SchemaInferenceError",
    "SimulationError",
    "US_PER_MS",
    "US_PER_SEC",
    "WallClock",
    "WarehouseError",
    "minutes",
    "ms",
    "seconds",
    "to_ms",
    "to_seconds",
]
