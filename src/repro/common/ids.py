"""Request identifier generation.

The paper's Apache mScopeMonitor inserts a *static, fixed-width* request
ID into the URL of every incoming request (Appendix A); the ID then
propagates to downstream tiers as a URL parameter and as a SQL comment.
Fixed width matters: it lets the specialized logging code reserve a
constant-size buffer and keeps the instrumented log lines aligned.

:class:`RequestIdGenerator` reproduces this scheme: IDs are zero-padded
decimal counters with a per-experiment prefix, e.g. ``R0A000000042``.
"""

from __future__ import annotations

from repro.common.errors import ConfigError

__all__ = ["RequestIdGenerator", "REQUEST_ID_WIDTH"]

#: Total width of a generated request ID, prefix included.
REQUEST_ID_WIDTH = 12


class RequestIdGenerator:
    """Generates unique, fixed-width request identifiers.

    Parameters
    ----------
    experiment_tag:
        Two-character alphanumeric tag distinguishing experiments whose
        logs may later be loaded into the same warehouse.

    Examples
    --------
    >>> gen = RequestIdGenerator("0A")
    >>> gen.next_id()
    'R0A000000000'
    >>> gen.next_id()
    'R0A000000001'
    """

    def __init__(self, experiment_tag: str = "0A") -> None:
        if len(experiment_tag) != 2 or not experiment_tag.isalnum():
            raise ConfigError(
                f"experiment_tag must be 2 alphanumeric chars, got {experiment_tag!r}"
            )
        self._prefix = "R" + experiment_tag
        self._issued = 0
        self._digits = REQUEST_ID_WIDTH - len(self._prefix)
        self._limit = 10**self._digits

    def next_id(self) -> str:
        """Return the next unique request ID (always ``REQUEST_ID_WIDTH`` chars)."""
        if self._issued >= self._limit:
            raise ConfigError("request counter overflowed fixed ID width")
        rendered = f"{self._prefix}{self._issued:0{self._digits}d}"
        self._issued += 1
        return rendered

    @property
    def issued(self) -> int:
        """Number of IDs handed out so far."""
        return self._issued
