"""Simulation time base.

All simulator-internal timestamps are integer **microseconds** since the
start of the simulation (type alias :data:`Micros`).  Integer time keeps
event ordering exact and log output byte-reproducible; floats appear only
at presentation boundaries (milliseconds in analysis output, seconds on
plot axes).

Native log files carry wall-clock timestamps.  Experiments anchor the
simulation at a fixed epoch (:data:`DEFAULT_EPOCH`) so that identical
seeds produce byte-identical logs.
"""

from __future__ import annotations

import datetime as _dt
from typing import Final

__all__ = [
    "Micros",
    "US_PER_MS",
    "US_PER_SEC",
    "MS_PER_SEC",
    "DEFAULT_EPOCH",
    "ms",
    "seconds",
    "minutes",
    "to_ms",
    "to_seconds",
    "WallClock",
]

#: Integer microseconds since simulation start.
Micros = int

US_PER_MS: Final[int] = 1_000
US_PER_SEC: Final[int] = 1_000_000
MS_PER_SEC: Final[int] = 1_000

#: Wall-clock anchor used when experiments do not specify one.  The value
#: is arbitrary but fixed: reproducibility requires that log timestamps
#: never depend on the real current time.
DEFAULT_EPOCH: Final[_dt.datetime] = _dt.datetime(
    2017, 3, 1, 10, 0, 0, tzinfo=_dt.timezone.utc
)


def ms(value: float) -> Micros:
    """Convert milliseconds to integer microseconds."""
    return round(value * US_PER_MS)


def seconds(value: float) -> Micros:
    """Convert seconds to integer microseconds."""
    return round(value * US_PER_SEC)


def minutes(value: float) -> Micros:
    """Convert minutes to integer microseconds."""
    return round(value * 60 * US_PER_SEC)


def to_ms(value: Micros) -> float:
    """Convert integer microseconds to float milliseconds."""
    return value / US_PER_MS


def to_seconds(value: Micros) -> float:
    """Convert integer microseconds to float seconds."""
    return value / US_PER_SEC


class WallClock:
    """Maps simulation time to wall-clock timestamps for native logs.

    Parameters
    ----------
    epoch:
        The wall-clock datetime corresponding to simulation time zero.
        Must be timezone-aware; defaults to :data:`DEFAULT_EPOCH`.
    """

    __slots__ = ("_epoch",)

    def __init__(self, epoch: _dt.datetime | None = None) -> None:
        if epoch is None:
            epoch = DEFAULT_EPOCH
        if epoch.tzinfo is None:
            raise ValueError("WallClock epoch must be timezone-aware")
        self._epoch = epoch

    @property
    def epoch(self) -> _dt.datetime:
        """The wall-clock datetime corresponding to simulation time zero."""
        return self._epoch

    def at(self, sim_time: Micros) -> _dt.datetime:
        """Return the wall-clock datetime at ``sim_time``."""
        return self._epoch + _dt.timedelta(microseconds=sim_time)

    def epoch_micros(self, sim_time: Micros) -> int:
        """Return microseconds since the Unix epoch at ``sim_time``."""
        return int(self._epoch.timestamp() * US_PER_SEC) + sim_time

    def apache_clf(self, sim_time: Micros) -> str:
        """Format ``sim_time`` as an Apache common-log-format timestamp.

        Example: ``01/Mar/2017:10:00:00 +0000``.
        """
        dt = self.at(sim_time)
        offset = dt.strftime("%z")
        return dt.strftime("%d/%b/%Y:%H:%M:%S ") + offset

    def hms(self, sim_time: Micros) -> str:
        """Format as ``HH:MM:SS`` (the granularity SAR prints by default)."""
        return self.at(sim_time).strftime("%H:%M:%S")

    def hms_ms(self, sim_time: Micros) -> str:
        """Format as ``HH:MM:SS.mmm`` (millisecond granularity)."""
        dt = self.at(sim_time)
        return dt.strftime("%H:%M:%S.") + f"{dt.microsecond // 1000:03d}"

    def iso(self, sim_time: Micros) -> str:
        """Format as an ISO-8601 timestamp with microseconds."""
        return self.at(sim_time).isoformat()

    def date(self, sim_time: Micros) -> str:
        """Format as ``YYYY-MM-DD``."""
        return self.at(sim_time).strftime("%Y-%m-%d")
