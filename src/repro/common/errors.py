"""Exception hierarchy for the milliScope reproduction.

Every error raised by this package derives from :class:`MilliScopeError`
so callers can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations

__all__ = [
    "MilliScopeError",
    "ConfigError",
    "SimulationError",
    "MonitorError",
    "LogFormatError",
    "ParseError",
    "DeclarationError",
    "SchemaInferenceError",
    "DataImportError",
    "WarehouseError",
    "QueryError",
    "AnalysisError",
]


class MilliScopeError(Exception):
    """Base class for all errors raised by the milliScope reproduction."""


class ConfigError(MilliScopeError):
    """An experiment or component configuration is invalid."""


class SimulationError(MilliScopeError):
    """The discrete-event simulation reached an inconsistent state."""


class MonitorError(MilliScopeError):
    """An mScopeMonitor failed to attach, sample, or log."""


class LogFormatError(MilliScopeError):
    """A native log emitter was asked to format an invalid record."""


class ParseError(MilliScopeError):
    """An mScopeParser could not enrich a log line or file.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    path:
        The log file being parsed, if known.
    line_number:
        The 1-based line number at which parsing failed, if known.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        line_number: int | None = None,
    ) -> None:
        location = ""
        if path is not None:
            location = f" [{path}"
            if line_number is not None:
                location += f":{line_number}"
            location += "]"
        super().__init__(message + location)
        self.path = path
        self.line_number = line_number


class DeclarationError(MilliScopeError):
    """A parsing declaration is malformed or references an unknown parser."""


class SchemaInferenceError(MilliScopeError):
    """The XML-to-CSV converter could not infer a relational schema."""


class DataImportError(MilliScopeError):
    """The mScope Data Importer failed to create or load a table."""


class WarehouseError(MilliScopeError):
    """mScopeDB could not complete a storage operation."""


class QueryError(WarehouseError):
    """A warehouse query was malformed or referenced a missing table."""


class AnalysisError(MilliScopeError):
    """An analysis routine received inconsistent or insufficient data."""
