"""Deterministic random-number streams.

Every source of randomness in the simulator draws from a named substream
of a single experiment seed.  Substreams are derived with a stable hash
of the stream name, so adding a new consumer never perturbs existing
streams and identical seeds reproduce identical runs byte for byte.
"""

from __future__ import annotations

import random
import zlib

__all__ = ["RngStreams"]


class RngStreams:
    """A family of named, independently seeded random streams.

    Parameters
    ----------
    seed:
        The experiment master seed.

    Examples
    --------
    >>> streams = RngStreams(7)
    >>> a = streams.stream("client.think")
    >>> b = streams.stream("client.think")
    >>> a is b
    True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this family was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        derived = (self._seed << 32) ^ zlib.crc32(name.encode("utf-8"))
        stream = random.Random(derived)
        self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngStreams":
        """Return a child family rooted at a derived seed.

        Useful when a subsystem wants to manage its own namespace of
        streams without risking collisions with the parent's names.
        """
        derived = (self._seed << 32) ^ zlib.crc32(name.encode("utf-8"))
        return RngStreams(derived & 0x7FFF_FFFF_FFFF_FFFF)
