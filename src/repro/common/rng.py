"""Deterministic random-number streams.

Every source of randomness in the simulator draws from a named substream
of a single experiment seed.  Substreams are derived with a stable hash
of the stream name, so adding a new consumer never perturbs existing
streams and identical seeds reproduce identical runs byte for byte.
"""

from __future__ import annotations

import random
import zlib

__all__ = ["RngStreams", "derive_stream_seed"]


def derive_stream_seed(seed: int, name: str) -> int:
    """The substream seed for ``name`` under master ``seed``.

    One derivation shared by the scalar :class:`random.Random` streams
    and the vector kernel's numpy block generators, so both kernels
    agree on what "the ``client.think`` stream of seed 7" means.
    """
    return (int(seed) << 32) ^ zlib.crc32(name.encode("utf-8"))


class RngStreams:
    """A family of named, independently seeded random streams.

    Parameters
    ----------
    seed:
        The experiment master seed.

    Examples
    --------
    >>> streams = RngStreams(7)
    >>> a = streams.stream("client.think")
    >>> b = streams.stream("client.think")
    >>> a is b
    True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this family was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        stream = random.Random(derive_stream_seed(self._seed, name))
        self._streams[name] = stream
        return stream

    def block_generator(self, name: str):
        """A numpy ``Generator`` on the same named substream namespace.

        Block generators power the vector kernel's batched draws
        (thousands of service times or think times per call).  They are
        seeded from the *same* ``(seed, name)`` derivation as
        :meth:`stream`, so a vector run is a deterministic function of
        the experiment seed — but they advance a PCG64 state, not the
        Mersenne Twister behind :class:`random.Random`: a block draw is
        reproducible run-to-run, not element-identical to the scalar
        stream of the same name.  Paths that promise scalar dump
        identity must keep drawing from :meth:`stream`.
        """
        import numpy as np

        return np.random.Generator(
            np.random.PCG64(derive_stream_seed(self._seed, name) & (2**63 - 1))
        )

    def spawn(self, name: str) -> "RngStreams":
        """Return a child family rooted at a derived seed.

        Useful when a subsystem wants to manage its own namespace of
        streams without risking collisions with the parent's names.
        """
        derived = derive_stream_seed(self._seed, name)
        return RngStreams(derived & 0x7FFF_FFFF_FFFF_FFFF)
