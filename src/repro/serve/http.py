"""The serve daemon's HTTP/1.1 + SSE front end (stdlib asyncio only).

A deliberately small hand-rolled server — the API is GET-only, every
response is either a complete body with ``Content-Length`` or a
``text/event-stream`` held open until shutdown, and each connection
closes after one request.  Endpoints:

``GET /healthz``
    Liveness + the full serve-state counter block (JSON).
``GET /stats?format=text|json|prom``
    Pipeline telemetry through the batch formatters plus the serve
    section (ingest mode, queue gauges, event counters).
``GET /reports`` / ``GET /reports?window=START:STOP``
    Cached per-window diagnosis verdicts (window filter uses the same
    ``START:STOP`` grammar as ``mscope diagnose --window``; a bad
    range is a 400, not a silent empty list).
``GET /reports/<window>``
    One verdict by its window key, e.g. ``/reports/10:20``.
``GET /paths/<request_id>[,<request_id>...]``
    Bulk causal-path reconstruction straight from the live warehouse.
``GET /events[?replay=1]``
    The SSE stream — heartbeats, ingest errors, degrade/recover,
    floor breaches, and a final shutdown event.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from typing import TYPE_CHECKING, Any

from repro.common.windows import WindowParseError, parse_window
from repro.serve import events as ev
from repro.serve.render import render_stats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.daemon import MScopeServeDaemon

__all__ = ["HttpServer"]

_STATS_FORMATS = ("text", "json", "prom")
_MAX_REQUEST_IDS = 256
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    """An error response the request handler should render."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class HttpServer:
    """One daemon's HTTP front end."""

    def __init__(self, daemon: "MScopeServeDaemon") -> None:
        self.daemon = daemon
        self._server: asyncio.AbstractServer | None = None
        self._streams: set[asyncio.Task] = set()

    async def start(self) -> asyncio.AbstractServer:
        """Bind and start serving; records the bound port."""
        config = self.daemon.config
        server = await asyncio.start_server(
            self._handle, host=config.host, port=config.port
        )
        self._server = server
        sockets = server.sockets or []
        if sockets:
            self.daemon.bound_port = sockets[0].getsockname()[1]
        return server

    async def wait_idle(self) -> None:
        """Let open SSE streams observe the shutdown event and finish."""
        if self._streams:
            await asyncio.wait(self._streams, timeout=5.0)
        for task in self._streams:
            task.cancel()

    # -- connection handling -------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(
                self._read_request(reader), timeout=10.0
            )
        except (asyncio.TimeoutError, ValueError, ConnectionError):
            writer.close()
            return
        if request is None:
            writer.close()
            return
        method, path, query = request
        try:
            if method != "GET":
                raise _HttpError(405, f"method {method} not supported")
            if path == "/events":
                await self._serve_events(writer, query)
                return
            status, body, content_type = await self._dispatch(path, query)
        except _HttpError as exc:
            status = exc.status
            body = json.dumps({"error": exc.message}) + "\n"
            content_type = "application/json"
        except Exception as exc:  # noqa: BLE001 - render, don't crash
            status = 500
            body = json.dumps({"error": f"{type(exc).__name__}: {exc}"}) + "\n"
            content_type = "application/json"
        await self._respond(writer, status, body, content_type)

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, dict[str, str]] | None:
        line = await reader.readline()
        if not line.strip():
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise ValueError("malformed request line")
        method, target, _version = parts
        while True:  # drain headers; the API never needs them
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
        parsed = urllib.parse.urlsplit(target)
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(parsed.query).items()
        }
        return method, urllib.parse.unquote(parsed.path), query

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        content_type: str,
    ) -> None:
        payload = body.encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode() + payload)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    # -- routing --------------------------------------------------------

    async def _dispatch(
        self, path: str, query: dict[str, str]
    ) -> tuple[int, str, str]:
        daemon = self.daemon
        if path == "/healthz":
            return 200, _json(daemon.health()), "application/json"
        if path == "/stats":
            fmt = query.get("format", "text")
            if fmt not in _STATS_FORMATS:
                raise _HttpError(
                    400,
                    f"unknown format {fmt!r}; expected one of "
                    f"{', '.join(_STATS_FORMATS)}",
                )
            telemetry = await asyncio.to_thread(daemon.telemetry_snapshot)
            body, content_type = render_stats(
                fmt, telemetry, daemon.state, daemon.queue,
                daemon.broker.counts,
            )
            return 200, body, content_type
        if path == "/reports":
            window = None
            if "window" in query:
                try:
                    window = parse_window(query["window"])
                except WindowParseError as exc:
                    raise _HttpError(400, str(exc)) from exc
            verdicts = daemon.verdicts(window)
            return 200, _json({
                "windows": [verdict.to_dict() for verdict in verdicts],
                "count": len(verdicts),
            }), "application/json"
        if path.startswith("/reports/"):
            key = path[len("/reports/"):]
            verdict = daemon.verdict(key)
            if verdict is None:
                raise _HttpError(
                    404, f"no cached verdict for window {key!r}"
                )
            return 200, _json(verdict.to_dict()), "application/json"
        if path.startswith("/paths/"):
            raw = path[len("/paths/"):]
            request_ids = [part for part in raw.split(",") if part]
            if not request_ids:
                raise _HttpError(400, "no request ids given")
            if len(request_ids) > _MAX_REQUEST_IDS:
                raise _HttpError(
                    400,
                    f"at most {_MAX_REQUEST_IDS} request ids per call "
                    f"(got {len(request_ids)})",
                )
            paths = await asyncio.to_thread(daemon.causal_paths, request_ids)
            if not paths:
                raise _HttpError(
                    404, f"no events found for request ids {raw!r}"
                )
            return 200, _json({
                "paths": paths, "count": len(paths),
            }), "application/json"
        raise _HttpError(404, f"no such endpoint {path!r}")

    # -- SSE ------------------------------------------------------------

    async def _serve_events(
        self, writer: asyncio.StreamWriter, query: dict[str, str]
    ) -> None:
        replay = query.get("replay", "0") not in ("0", "", "false")
        task = asyncio.current_task()
        if task is not None:
            self._streams.add(task)
            task.add_done_callback(self._streams.discard)
        queue = self.daemon.broker.subscribe(replay=replay)
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n\r\n"
            )
            await writer.drain()
            while True:
                event = await queue.get()
                writer.write(event.to_sse())
                await writer.drain()
                if event.kind == ev.SHUTDOWN:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.daemon.broker.unsubscribe(queue)
            writer.close()


def _json(document: Any) -> str:
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
