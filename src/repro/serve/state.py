"""Backpressure and observable state for the serve daemon.

Two pieces, both synchronous and loop-agnostic so the daemon's cycle
logic stays unit-testable without asyncio:

* :class:`BackpressureQueue` — the bounded ingest work queue.  The
  scanner offers ``(host, path)`` work items; crossing the high-water
  mark downshifts the daemon into :data:`IngestMode.SAMPLED` ingest
  (only the head of the queue is imported per cycle, the tail is
  deferred — files keep their data, so nothing is lost, only delayed),
  and draining back under the low-water mark restores
  :data:`IngestMode.LIVE`.
* :class:`ServeState` — every counter and gauge the HTTP layer
  renders: ingest mode, queue depth, rows/files/errors, per-cycle lag,
  diagnosis progress.  ``to_dict`` is the JSON shape shared by
  ``/healthz`` and ``/stats``.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
from typing import Generic, Hashable, TypeVar

__all__ = ["BackpressureQueue", "IngestMode", "ServeState"]

T = TypeVar("T", bound=Hashable)


class IngestMode(str, enum.Enum):
    """How much of the pending work each cycle imports."""

    #: Every pending work item is ingested every cycle.
    LIVE = "live"
    #: Only the head sample of the queue is ingested; the rest defers.
    SAMPLED = "sampled"


class BackpressureQueue(Generic[T]):
    """A bounded, deduplicating work queue with water marks.

    Work items are hashable (the daemon uses ``(host, path)`` pairs);
    an item already queued is not queued twice — re-offering a file
    that is still pending carries no new information, so dedup keeps
    the depth an honest measure of distinct backlog.

    ``offer`` never blocks: when the queue is full the item is counted
    as dropped and the caller re-offers it on a later scan (log files
    retain their unread tail, so a drop defers work, it never loses
    data).
    """

    def __init__(
        self,
        capacity: int,
        high_water: int | None = None,
        low_water: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: Depth at/above which the daemon downshifts to sampled ingest.
        self.high_water = high_water if high_water is not None else capacity
        #: Depth at/below which full ingest is restored.
        self.low_water = (
            low_water if low_water is not None else max(0, capacity // 4)
        )
        if not 0 <= self.low_water < self.high_water <= capacity:
            raise ValueError(
                f"water marks must satisfy 0 <= low ({self.low_water}) < "
                f"high ({self.high_water}) <= capacity ({capacity})"
            )
        self._items: collections.deque[T] = collections.deque()
        self._queued: set[T] = set()
        #: Offers refused because the queue was full.
        self.dropped = 0
        #: Offers absorbed as no-ops because the item was already queued.
        self.duplicates = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    def offer(self, item: T) -> bool:
        """Enqueue ``item``; False when full (counted as a drop)."""
        if item in self._queued:
            self.duplicates += 1
            return True
        if len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(item)
        self._queued.add(item)
        return True

    def take(self, limit: int | None = None) -> list[T]:
        """Dequeue up to ``limit`` items from the head (all if None)."""
        if limit is None:
            limit = len(self._items)
        taken: list[T] = []
        while self._items and len(taken) < limit:
            item = self._items.popleft()
            self._queued.discard(item)
            taken.append(item)
        return taken

    @property
    def above_high_water(self) -> bool:
        return self.depth >= self.high_water

    @property
    def below_low_water(self) -> bool:
        return self.depth <= self.low_water


@dataclasses.dataclass(slots=True)
class ServeState:
    """Everything the HTTP layer observes about the daemon."""

    mode: IngestMode = IngestMode.LIVE
    #: Ingest cycles completed.
    cycles: int = 0
    #: Rows delta-imported since startup.
    rows: int = 0
    #: File refreshes that imported at least one row.
    refreshed_files: int = 0
    #: Files skipped this far (unparsable mid-write, retried later).
    skipped_files: int = 0
    #: Ingest errors recorded by the lenient policy.
    ingest_errors: int = 0
    #: Work items deferred by sampled-mode head sampling.
    deferred: int = 0
    #: Mode downshifts (degrade events) since startup.
    degrades: int = 0
    #: Mode upshifts (recover events) since startup.
    recoveries: int = 0
    #: Seconds the most recent ingest cycle took.
    last_cycle_s: float = 0.0
    #: Diagnosis cycles completed.
    diagnose_cycles: int = 0
    #: Diagnosis windows currently cached.
    cached_windows: int = 0
    #: Anomaly windows that breached the VLRT floor.
    floor_breaches: int = 0
    #: Rows seen by the log-volume-reduction policy (0 = no policy).
    sampled_rows: int = 0
    #: Rows that policy kept (committed or deferred-then-committed).
    kept_rows: int = 0
    #: True once SIGTERM/shutdown drain has begun.
    draining: bool = False

    def sampled(self) -> bool:
        return self.mode is IngestMode.SAMPLED

    def to_dict(self) -> dict:
        """The JSON shape served by ``/healthz`` and ``/stats``."""
        return {
            "mode": self.mode.value,
            "cycles": self.cycles,
            "rows": self.rows,
            "refreshed_files": self.refreshed_files,
            "skipped_files": self.skipped_files,
            "ingest_errors": self.ingest_errors,
            "deferred": self.deferred,
            "degrades": self.degrades,
            "recoveries": self.recoveries,
            "last_cycle_s": round(self.last_cycle_s, 6),
            "diagnose_cycles": self.diagnose_cycles,
            "cached_windows": self.cached_windows,
            "floor_breaches": self.floor_breaches,
            "sampled_rows": self.sampled_rows,
            "kept_rows": self.kept_rows,
            "draining": self.draining,
        }
