"""JSON/text/Prometheus rendering for the serve API.

The daemon reuses the batch formatters in
:mod:`repro.telemetry.export` for the pipeline telemetry and appends a
``serve`` section (ingest mode, queue gauges, event counters) so one
``/stats`` scrape tells the whole story.  Diagnosis reports serialize
through :func:`report_to_dict` — structured fields plus the same
``to_text`` rendering ``mscope diagnose`` prints.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.analysis.diagnosis import DiagnosisReport
from repro.serve.state import BackpressureQueue, ServeState
from repro.telemetry.aggregate import RunTelemetry
from repro.telemetry.export import render_prometheus, render_text

__all__ = [
    "report_to_dict",
    "render_stats",
    "serve_prometheus_lines",
]

_SERVE_PREFIX = "mscope_serve"


def report_to_dict(report: DiagnosisReport) -> dict[str, Any]:
    """One diagnosis report as a JSON-ready dict."""
    return {
        "window": {
            "start_s": report.window.start / 1e6,
            "stop_s": report.window.stop / 1e6,
            "vlrt_count": report.window.vlrt_count,
            "peak_response_ms": report.window.peak_response_ms,
        },
        "pushback_tiers": list(report.pushback_tiers),
        "queues": [
            {
                "tier": finding.tier,
                "peak": finding.peak_queue,
                "baseline": finding.baseline_queue,
                "amplification": round(finding.amplification, 2),
            }
            for finding in report.queue_findings
        ],
        "causes": [
            {
                "hostname": cause.hostname,
                "kind": cause.kind,
                "label": cause.label,
                "peak_value": cause.peak_value,
                "correlation": cause.correlation,
                "score": round(cause.score, 4),
                "explanation": cause.explanation,
                "lead_lag_us": cause.lead_lag_us,
            }
            for cause in report.causes
        ],
        "affected_interactions": {
            name: {"vlrt_count": count, "traffic_share": round(share, 4)}
            for name, (count, share) in report.affected_interactions.items()
        },
        "sampling": report.sampling,
        "text": report.to_text(),
    }


def serve_prometheus_lines(
    state: ServeState,
    queue: BackpressureQueue,
    event_counts: Mapping[str, int],
) -> list[str]:
    """The daemon's own gauges/counters in exposition format."""
    lines: list[str] = []

    def metric(name: str, kind: str, help_text: str, value: Any) -> None:
        lines.append(f"# HELP {_SERVE_PREFIX}_{name} {help_text}")
        lines.append(f"# TYPE {_SERVE_PREFIX}_{name} {kind}")
        lines.append(f"{_SERVE_PREFIX}_{name} {value}")

    metric(
        "sampled_ingest", "gauge",
        "1 while backpressure holds the daemon in sampled ingest",
        1 if state.sampled() else 0,
    )
    metric(
        "ingest_queue_depth", "gauge",
        "Pending work items in the bounded ingest queue", queue.depth,
    )
    metric(
        "ingest_queue_dropped_total", "counter",
        "Work offers refused because the ingest queue was full",
        queue.dropped,
    )
    metric(
        "ingest_deferred_total", "counter",
        "Work items deferred by sampled-mode head sampling",
        state.deferred,
    )
    metric(
        "ingest_cycles_total", "counter",
        "Ingest cycles completed", state.cycles,
    )
    metric(
        "rows_ingested_total", "counter",
        "Rows delta-imported since startup", state.rows,
    )
    metric(
        "ingest_errors_total", "counter",
        "Damaged lines recorded by the lenient ingest policy",
        state.ingest_errors,
    )
    metric(
        "degrades_total", "counter",
        "Downshifts into sampled ingest", state.degrades,
    )
    metric(
        "recoveries_total", "counter",
        "Recoveries back to full ingest", state.recoveries,
    )
    metric(
        "diagnosis_windows", "gauge",
        "Diagnosis windows currently cached", state.cached_windows,
    )
    metric(
        "floor_breaches_total", "counter",
        "Anomaly windows that breached the VLRT floor",
        state.floor_breaches,
    )
    metric(
        "sampled_total", "counter",
        "Rows seen by the log-volume-reduction policy",
        state.sampled_rows,
    )
    metric(
        "kept_total", "counter",
        "Rows the log-volume-reduction policy kept",
        state.kept_rows,
    )
    name = f"{_SERVE_PREFIX}_events_total"
    lines.append(f"# HELP {name} Events published on the SSE stream")
    lines.append(f"# TYPE {name} counter")
    for kind in sorted(event_counts):
        lines.append(f'{name}{{kind="{kind}"}} {event_counts[kind]}')
    return lines


def render_stats(
    fmt: str,
    telemetry: RunTelemetry,
    state: ServeState,
    queue: BackpressureQueue,
    event_counts: Mapping[str, int],
) -> tuple[str, str]:
    """``/stats`` body and content type for one of text/json/prom."""
    if fmt == "json":
        document = telemetry.to_json_dict()
        document["serve"] = dict(state.to_dict(), queue_depth=queue.depth,
                                 queue_dropped=queue.dropped)
        return json.dumps(document, indent=2) + "\n", "application/json"
    if fmt == "prom":
        body = render_prometheus(telemetry)
        body += "\n".join(
            serve_prometheus_lines(state, queue, event_counts)
        ) + "\n"
        return body, "text/plain; version=0.0.4"
    body = render_text(telemetry)
    body += (
        f"\nserve: mode={state.mode.value} cycles={state.cycles} "
        f"rows={state.rows} queue={queue.depth}/{queue.capacity} "
        f"dropped={queue.dropped} deferred={state.deferred} "
        f"windows={state.cached_windows} breaches={state.floor_breaches}\n"
    )
    return body, "text/plain"
