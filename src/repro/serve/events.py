"""The serve daemon's event stream.

One :class:`EventBroker` fans daemon events out to any number of SSE
subscribers.  Events are plain data (:class:`ServeEvent`), rendered to
the ``text/event-stream`` wire format by :func:`ServeEvent.to_sse`;
the broker also keeps a bounded history ring so tests (and late
subscribers asking ``/events?replay=1``) can observe events emitted
before they attached.

Event types (the SSE ``event:`` field):

* ``heartbeat``     — one per ingest cycle: rows, files, lag, queue.
* ``ingest-error``  — a damaged line or an unparsable file.
* ``floor-breach``  — a diagnosis window exceeded the VLRT floor.
* ``degrade``       — backpressure downshifted to sampled ingest.
* ``recover``       — the queue drained; full ingest restored.
* ``shutdown``      — the daemon is draining (final event).
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
import itertools
import json
from typing import Any

__all__ = ["EventBroker", "ServeEvent"]

HEARTBEAT = "heartbeat"
INGEST_ERROR = "ingest-error"
FLOOR_BREACH = "floor-breach"
DEGRADE = "degrade"
RECOVER = "recover"
SHUTDOWN = "shutdown"


@dataclasses.dataclass(frozen=True, slots=True)
class ServeEvent:
    """One daemon event: a type, a monotonically increasing id, and a
    JSON-serializable payload."""

    event_id: int
    kind: str
    data: dict[str, Any]

    def to_sse(self) -> bytes:
        """The ``text/event-stream`` rendering of this event."""
        payload = json.dumps(self.data, sort_keys=True)
        return (
            f"id: {self.event_id}\nevent: {self.kind}\n"
            f"data: {payload}\n\n"
        ).encode()


class EventBroker:
    """Publish/subscribe hub between the daemon loops and SSE clients.

    ``publish`` is safe to call from worker threads: it enqueues onto
    per-subscriber :class:`asyncio.Queue` objects via
    ``loop.call_soon_threadsafe`` when a loop is attached, and appends
    to the history ring either way.  A slow subscriber never blocks
    the daemon — its queue is unbounded but the connection is closed
    by the HTTP layer when the client goes away.
    """

    def __init__(self, history: int = 256) -> None:
        self._ids = itertools.count(1)
        self._subscribers: list[asyncio.Queue[ServeEvent]] = []
        self._history: collections.deque[ServeEvent] = collections.deque(
            maxlen=history
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        #: Per-kind emission counters (rendered into ``/stats``).
        self.counts: collections.Counter[str] = collections.Counter()

    def attach_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Bind the asyncio loop that owns the subscriber queues."""
        self._loop = loop

    def publish(self, kind: str, data: dict[str, Any]) -> ServeEvent:
        """Emit one event to history and every live subscriber."""
        event = ServeEvent(event_id=next(self._ids), kind=kind, data=data)
        self._history.append(event)
        self.counts[kind] += 1
        loop = self._loop
        for queue in list(self._subscribers):
            if loop is not None:
                loop.call_soon_threadsafe(queue.put_nowait, event)
            else:
                queue.put_nowait(event)
        return event

    def subscribe(self, replay: bool = False) -> asyncio.Queue[ServeEvent]:
        """A queue receiving every event from now on (history first
        when ``replay``)."""
        queue: asyncio.Queue[ServeEvent] = asyncio.Queue()
        if replay:
            for event in self._history:
                queue.put_nowait(event)
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue[ServeEvent]) -> None:
        """Detach a subscriber queue (idempotent)."""
        if queue in self._subscribers:
            self._subscribers.remove(queue)

    def history(self, kind: str | None = None) -> list[ServeEvent]:
        """Events still in the ring, optionally filtered by kind."""
        events = list(self._history)
        if kind is not None:
            events = [event for event in events if event.kind == kind]
        return events

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)
