"""The ``mscope serve`` daemon: continuous ingest + incremental diagnosis.

The cycle logic is synchronous and injectable-clock testable; the
asyncio layer (:meth:`MScopeServeDaemon.run`) only schedules cycles,
handles signals, and hosts the HTTP API.  Each cycle:

1. **Scan** — walk the log tree with the shared
   :meth:`~repro.transformer.live.LiveTransformer.declared_files`
   order and offer ``(host, file)`` work items for every file whose
   size changed since its last successful refresh.  The queue is
   bounded and deduplicating; a refused offer is a *deferral*, not a
   loss — the file keeps its unread tail.
2. **Backpressure** — crossing the queue's high-water mark downshifts
   to :data:`~repro.serve.state.IngestMode.SAMPLED`: only the head of
   the queue is imported per cycle until the depth falls back under
   the low-water mark.  Both transitions are published on the event
   stream and visible in ``/stats``.
3. **Ingest** — per-host :class:`LiveTransformer` instances
   delta-import each taken file (monolithic or sharded warehouse —
   both open ``threadsafe`` for the executor threads).
4. **Diagnose** — on its own interval, re-run the
   :class:`~repro.analysis.diagnosis.Diagnoser` over fixed
   simulation-time windows covering newly landed data and cache the
   per-window verdicts; the trailing window stays provisional and is
   re-diagnosed until data moves past it.

Shutdown (SIGTERM/SIGINT) drains: sampling is lifted, ingest cycles
repeat until a full scan imports nothing new, a final diagnosis runs,
and the warehouse closes import-consistent — iterdump-identical to a
batch transform of the same final tree (the serve-smoke CI job holds
this).  Pipeline telemetry is kept in memory for ``/stats`` and is
deliberately *not* persisted into the warehouse, so the batch
equivalence holds against ``mscope transform --no-stats``.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import signal
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.analysis.causal import CausalPath, reconstruct_paths_bulk
from repro.analysis.diagnosis import Diagnoser
from repro.common.errors import AnalysisError, DeclarationError, ParseError
from repro.sampling.policy import parse_policy
from repro.common.timebase import Micros, seconds
from repro.common.windows import format_window
from repro.serve import events as ev
from repro.serve.events import EventBroker
from repro.serve.render import report_to_dict
from repro.serve.state import BackpressureQueue, IngestMode, ServeState
from repro.telemetry.aggregate import RunTelemetry
from repro.telemetry.spans import TelemetryCollector
from repro.transformer.errorpolicy import ErrorPolicy
from repro.transformer.live import LiveTransformer
from repro.warehouse.db import MScopeDB
from repro.warehouse.sharded import ShardedMScopeDB, open_warehouse

__all__ = [
    "CycleOutcome",
    "MScopeServeDaemon",
    "ServeConfig",
    "WindowVerdict",
]

_META_FILE = "run_meta.json"
_META_KEYS = ("seed", "duration_us", "epoch_us", "workload_users")


@dataclasses.dataclass(slots=True)
class ServeConfig:
    """Everything ``mscope serve`` can be told on the command line."""

    #: Log tree root (host directories underneath, as for transform).
    logs: Path
    #: Warehouse path (file or shard root); ``None`` = in-memory.
    db: Path | None = None
    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (see ``bound_port``).
    port: int = 0
    #: Seconds between ingest cycles.
    refresh_interval_s: float = 0.5
    #: Seconds between diagnosis cycles.
    diagnose_interval_s: float = 2.0
    #: Bounded ingest queue capacity (work items = growing files).
    queue_capacity: int = 64
    #: Fraction of the queue imported per cycle while degraded.
    sample_fraction: float = 0.25
    #: Simulation-time width of one diagnosis window (seconds).
    diagnosis_window_s: float = 10.0
    #: VLRT count a window may carry before a floor-breach event.
    vlrt_floor: int = 0
    #: Front tier event table defining response times.
    front_table: str = "apache_events_web1"
    #: Damaged-line policy mode (fail-fast/skip; quarantine is batch-only).
    on_error: str = "fail-fast"
    #: Build a sharded warehouse with this time window (seconds).
    shard_window_s: float | None = None
    #: Epoch override; defaults to run_meta.json then 0.
    epoch_us: int | None = None
    #: Upper bound on drain rounds at shutdown.
    drain_rounds: int = 20
    #: In-memory telemetry span cap (rolling window for ``/stats``).
    telemetry_span_cap: int = 20_000
    #: Log-volume-reduction policy spec (e.g. ``tail:0.05:50``);
    #: ``None`` ingests everything.
    sampling: str | None = None


@dataclasses.dataclass(frozen=True, slots=True)
class CycleOutcome:
    """What one ingest cycle did."""

    new_rows: int
    refreshed_files: int
    skipped_files: int
    taken: int
    deferred: int
    dropped: int
    mode: IngestMode


@dataclasses.dataclass(slots=True)
class WindowVerdict:
    """The cached diagnosis of one fixed time window."""

    key: str
    start_us: Micros
    stop_us: Micros
    reports: list[dict[str, Any]]
    #: Times this window has been (re-)diagnosed.
    passes: int = 1
    #: True once data moved past the window (verdict will not change).
    final: bool = False
    #: Human-readable reason when the window could not be diagnosed.
    error: str | None = None

    @property
    def anomalies(self) -> int:
        return len(self.reports)

    def to_dict(self) -> dict[str, Any]:
        return {
            "window": self.key,
            "start_s": self.start_us / 1e6,
            "stop_s": self.stop_us / 1e6,
            "anomalies": self.anomalies,
            "passes": self.passes,
            "final": self.final,
            "error": self.error,
            "reports": self.reports,
        }


class MScopeServeDaemon:
    """The always-on milliScope service."""

    def __init__(
        self,
        config: ServeConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self.clock = clock
        self.state = ServeState()
        self.queue: BackpressureQueue[tuple[str, Path, int]] = BackpressureQueue(
            config.queue_capacity,
            high_water=config.queue_capacity,
            low_water=max(0, config.queue_capacity // 4),
        )
        self.broker = EventBroker()
        self.telemetry = TelemetryCollector()
        self.db = self._open_db()
        self.epoch_us = self._resolve_meta()
        self._policy = ErrorPolicy(mode=config.on_error)
        # One shared policy instance across every per-host transformer:
        # tail sampling's deferral buffer must see a request's records
        # from *all* tiers to commit them coherently at flush.
        self._sampling = parse_policy(config.sampling)
        self._transformers: dict[str, LiveTransformer] = {}
        self._scanner = self._make_transformer()
        #: file -> byte size at its last successful refresh.
        self._seen_bytes: dict[Path, int] = {}
        self._verdicts: dict[str, WindowVerdict] = {}
        self._breached: set[str] = set()
        self._next_window_index = 0
        self._started = clock()
        self._db_lock = threading.Lock()
        self._shutdown = asyncio.Event()
        #: Port actually bound by the HTTP server (after startup).
        self.bound_port: int | None = None

    # -- construction helpers ------------------------------------------

    def _open_db(self) -> MScopeDB:
        # ShardedMScopeDB is not an MScopeDB subclass — it duck-types
        # the full warehouse API (execute/tables/iterdump_content/...),
        # so the daemon treats both layouts through the MScopeDB shape.
        config = self.config
        if config.db is None:
            return MScopeDB(threadsafe=True)
        if config.shard_window_s is not None:
            return ShardedMScopeDB(  # type: ignore[return-value]
                config.db,
                window_us=seconds(config.shard_window_s),
                threadsafe=True,
            )
        return open_warehouse(config.db, threadsafe=True)  # type: ignore[return-value]

    def _resolve_meta(self) -> int:
        """Carry run metadata into the warehouse, exactly as the batch
        transform does, and resolve the epoch offset."""
        meta_path = Path(self.config.logs).parent / _META_FILE
        meta: dict[str, Any] = {}
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            for key in _META_KEYS:
                if key in meta:
                    self.db.set_experiment_meta(key, str(meta[key]))
        if self.config.epoch_us is not None:
            return self.config.epoch_us
        if "epoch_us" in meta:
            return int(meta["epoch_us"])
        recorded = self.db.get_experiment_meta("epoch_us")
        return int(recorded) if recorded is not None else 0

    def _make_transformer(self) -> LiveTransformer:
        return LiveTransformer(
            self.db,
            policy=self._policy,
            max_retries=0,
            telemetry=self.telemetry,
            on_ingest_error=self._on_ingest_error,
            sampling=self._sampling,
        )

    def _transformer(self, host: str) -> LiveTransformer:
        transformer = self._transformers.get(host)
        if transformer is None:
            transformer = self._transformers[host] = self._make_transformer()
        return transformer

    def _on_ingest_error(self, source_path: str, reason: str) -> None:
        self.state.ingest_errors += 1
        self.broker.publish(
            ev.INGEST_ERROR, {"file": source_path, "reason": reason}
        )

    # -- the ingest cycle ----------------------------------------------

    def _scan(self) -> tuple[int, int]:
        """Offer every grown declared file; returns (offered, dropped)."""
        try:
            pairs = self._scanner.declared_files(self.config.logs)
        except DeclarationError:
            # The log tree may not exist yet; serve an empty system.
            return 0, 0
        offered = dropped = 0
        for host, path in pairs:
            try:
                size = path.stat().st_size
            except OSError:
                continue  # rotated away between glob and stat
            if self._seen_bytes.get(path) == size:
                continue
            offered += 1
            if not self.queue.offer((host, path, size)):
                dropped += 1
        return offered, dropped

    def ingest_cycle(self) -> CycleOutcome:
        """One scan → backpressure check → bounded drain pass."""
        started = self.clock()
        _, dropped = self._scan()
        if not self.state.sampled() and self.queue.above_high_water:
            self.state.mode = IngestMode.SAMPLED
            self.state.degrades += 1
            self.broker.publish(
                ev.DEGRADE,
                {
                    "reason": "ingest queue reached its high-water mark",
                    "queue_depth": self.queue.depth,
                    "capacity": self.queue.capacity,
                },
            )
        if self.state.sampled() and not self.state.draining:
            head = max(
                1, int(self.queue.capacity * self.config.sample_fraction)
            )
            batch = self.queue.take(head)
        else:
            batch = self.queue.take()
        deferred = self.queue.depth
        new_rows = refreshed = skipped = 0
        for host, path, size in batch:
            transformer = self._transformer(host)
            try:
                rows = transformer.refresh_file(path, host)
            except ParseError as exc:
                # Usually a mid-write file; the next scan re-offers it
                # (its recorded size is left stale on purpose).
                skipped += 1
                self.broker.publish(
                    ev.INGEST_ERROR, {"file": str(path), "reason": str(exc)}
                )
                continue
            self._seen_bytes[path] = size
            if rows:
                refreshed += 1
                new_rows += rows
        if self.state.sampled() and self.queue.below_low_water:
            self.state.mode = IngestMode.LIVE
            self.state.recoveries += 1
            self.broker.publish(
                ev.RECOVER,
                {
                    "reason": (
                        "drain" if self.state.draining
                        else "ingest queue drained below its low-water mark"
                    ),
                    "queue_depth": self.queue.depth,
                },
            )
        self.state.cycles += 1
        self.state.rows += new_rows
        self._refresh_sampling_gauges()
        self.state.refreshed_files += refreshed
        self.state.skipped_files += skipped
        self.state.deferred += deferred
        self.state.last_cycle_s = max(0.0, self.clock() - started)
        self._trim_telemetry()
        outcome = CycleOutcome(
            new_rows=new_rows,
            refreshed_files=refreshed,
            skipped_files=skipped,
            taken=len(batch),
            deferred=deferred,
            dropped=dropped,
            mode=self.state.mode,
        )
        self.broker.publish(
            ev.HEARTBEAT,
            {
                "cycle": self.state.cycles,
                "new_rows": new_rows,
                "refreshed_files": refreshed,
                "skipped_files": skipped,
                "queue_depth": self.queue.depth,
                "deferred": deferred,
                "mode": self.state.mode.value,
                "lag_s": round(self.state.last_cycle_s, 6),
                "total_rows": self.state.rows,
            },
        )
        return outcome

    def _refresh_sampling_gauges(self) -> None:
        """Mirror the shared policy's cumulative totals into state."""
        if self._sampling is None:
            return
        seen, kept = self._scanner.sampling_totals()
        self.state.sampled_rows = seen
        self.state.kept_rows = kept

    def _trim_telemetry(self) -> None:
        """Bound the in-memory span list (a rolling ``/stats`` view)."""
        cap = self.config.telemetry_span_cap
        spans = self.telemetry.spans
        if len(spans) > cap:
            del spans[: len(spans) - cap]

    # -- the diagnosis cycle -------------------------------------------

    def _data_extent_us(self) -> Micros | None:
        """Latest front-tier departure in simulation time, or None."""
        front = self.config.front_table
        if front not in self.db.tables():
            return None
        rows = self.db.query(
            f"SELECT MAX(upstream_departure_us) FROM {front}"
        )
        if not rows or rows[0][0] is None:
            return None
        return int(rows[0][0]) - self.epoch_us

    def diagnose_cycle(self) -> list[WindowVerdict]:
        """(Re-)diagnose every window touched by newly landed data."""
        extent = self._data_extent_us()
        updated: list[WindowVerdict] = []
        if extent is not None:
            window_us = seconds(self.config.diagnosis_window_s)
            last = max(self._next_window_index, int(extent // window_us))
            for index in range(self._next_window_index, last + 1):
                verdict = self._diagnose_window(index, window_us)
                verdict.final = index < last
                self._verdicts[verdict.key] = verdict
                updated.append(verdict)
                self._check_floor(verdict)
            # The trailing window is provisional: re-diagnose it until
            # data moves past it.
            self._next_window_index = last
        self.state.diagnose_cycles += 1
        self.state.cached_windows = len(self._verdicts)
        return updated

    def _diagnose_window(
        self, index: int, window_us: Micros
    ) -> WindowVerdict:
        start, stop = index * window_us, (index + 1) * window_us
        key = format_window(start, stop)
        previous = self._verdicts.get(key)
        passes = previous.passes + 1 if previous is not None else 1
        try:
            reports = Diagnoser(
                self.db,
                front_table=self.config.front_table,
                epoch_us=self.epoch_us,
                window_us=(start, stop),
            ).diagnose()
        except AnalysisError as exc:
            return WindowVerdict(
                key=key, start_us=start, stop_us=stop, reports=[],
                passes=passes, error=str(exc),
            )
        return WindowVerdict(
            key=key,
            start_us=start,
            stop_us=stop,
            reports=[report_to_dict(report) for report in reports],
            passes=passes,
        )

    def _check_floor(self, verdict: WindowVerdict) -> None:
        worst = max(
            (r["window"]["vlrt_count"] for r in verdict.reports), default=0
        )
        if worst <= self.config.vlrt_floor or verdict.key in self._breached:
            return
        self._breached.add(verdict.key)
        self.state.floor_breaches += 1
        self.broker.publish(
            ev.FLOOR_BREACH,
            {
                "window": verdict.key,
                "vlrt_count": worst,
                "floor": self.config.vlrt_floor,
                "anomalies": verdict.anomalies,
                "primary_cause": (
                    verdict.reports[0]["causes"][0]["label"]
                    if verdict.reports and verdict.reports[0]["causes"]
                    else None
                ),
            },
        )

    # -- HTTP-facing accessors -----------------------------------------

    def verdicts(
        self, window: tuple[Micros | None, Micros | None] | None = None
    ) -> list[WindowVerdict]:
        """Cached verdicts, oldest first, optionally window-filtered."""
        verdicts = sorted(self._verdicts.values(), key=lambda v: v.start_us)
        if window is None:
            return verdicts
        start, stop = window
        return [
            v for v in verdicts
            if (stop is None or v.start_us < stop)
            and (start is None or v.stop_us > start)
        ]

    def verdict(self, key: str) -> WindowVerdict | None:
        return self._verdicts.get(key)

    def causal_paths(self, request_ids: list[str]) -> list[dict[str, Any]]:
        """Bulk causal-path reconstruction for the ``/paths`` endpoint."""
        from repro.analysis.causal import discover_tier_tables

        with self._db_lock:
            # A live warehouse may not have every tier loaded yet;
            # reconstruct over the tables that exist (Diagnoser does
            # the same), covering every replica the run deployed.
            tables = discover_tier_tables(self.db)
            if not tables:
                return []
            paths = list(
                reconstruct_paths_bulk(self.db, request_ids, tables)
            )
        return [self._path_to_dict(path) for path in paths]

    @staticmethod
    def _path_to_dict(path: CausalPath) -> dict[str, Any]:
        return {
            "request_id": path.request_id,
            "hops": [
                {
                    "tier": hop.tier,
                    "host": hop.host,
                    "upstream_arrival_us": hop.upstream_arrival_us,
                    "upstream_departure_us": hop.upstream_departure_us,
                    "downstream_sending_us": hop.downstream_sending_us,
                    "downstream_receiving_us": hop.downstream_receiving_us,
                    "local_ms": hop.local_time_ms(),
                }
                for hop in path.hops
            ],
        }

    def telemetry_snapshot(self) -> RunTelemetry:
        # The ingest thread appends/trims the span list; aggregate
        # under the same lock the cycles hold (callers use to_thread).
        with self._db_lock:
            return self.telemetry.run_telemetry()

    def health(self) -> dict[str, Any]:
        return dict(
            self.state.to_dict(),
            status="draining" if self.state.draining else "ok",
            uptime_s=round(max(0.0, self.clock() - self._started), 3),
            queue_depth=self.queue.depth,
            queue_capacity=self.queue.capacity,
            queue_dropped=self.queue.dropped,
            warehouse=self.db.path,
            epoch_us=self.epoch_us,
        )

    # -- lifecycle ------------------------------------------------------

    def request_shutdown(self) -> None:
        """Begin the SIGTERM drain (idempotent, thread-safe-ish: only
        ever called from the event loop via signal handlers or tests)."""
        self._shutdown.set()

    def _locked(self, cycle: Callable[[], Any]) -> Any:
        with self._db_lock:
            return cycle()

    def drain(self) -> None:
        """Catch the warehouse up completely, then close it.

        Sampling is lifted and ingest cycles repeat until a full scan
        consumes nothing new — *takes* no files, not merely imports no
        rows: under a tail-sampling policy a consumed file can defer
        every row and still mean progress — (bounded by
        ``drain_rounds`` in case a log writer never stops mid-record),
        then a final diagnosis pass runs.  After this the warehouse content equals a batch
        transform of the same final tree.
        """
        self.state.draining = True
        for _ in range(max(1, self.config.drain_rounds)):
            outcome = self.ingest_cycle()
            if (
                outcome.taken == 0
                and outcome.new_rows == 0
                and outcome.skipped_files == 0
                and self.queue.depth == 0
            ):
                break
        # A stateful sampling policy (tail deferral) may still withhold
        # records; commit them before the final diagnosis so deferred
        # VLRT evidence lands in the closing warehouse.
        flushed = self._scanner.flush_sampling()
        if flushed:
            self.state.rows += flushed
        self._refresh_sampling_gauges()
        self.diagnose_cycle()
        self.broker.publish(
            ev.SHUTDOWN,
            {
                "rows": self.state.rows,
                "cycles": self.state.cycles,
                "cached_windows": self.state.cached_windows,
            },
        )

    async def run(self, ready: asyncio.Event | None = None) -> None:
        """Serve until SIGTERM/SIGINT (or :meth:`request_shutdown`)."""
        from repro.serve.http import HttpServer

        loop = asyncio.get_running_loop()
        self.broker.attach_loop(loop)
        http = HttpServer(self)
        server = await http.start()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, self.request_shutdown)
        if ready is not None:
            ready.set()
        last_diagnose = float("-inf")
        try:
            while not self._shutdown.is_set():
                await asyncio.to_thread(self._locked, self.ingest_cycle)
                if (
                    self.clock() - last_diagnose
                    >= self.config.diagnose_interval_s
                ):
                    await asyncio.to_thread(self._locked, self.diagnose_cycle)
                    last_diagnose = self.clock()
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        self._shutdown.wait(),
                        timeout=self.config.refresh_interval_s,
                    )
        finally:
            await asyncio.to_thread(self._locked, self.drain)
            server.close()
            await server.wait_closed()
            await http.wait_idle()
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.remove_signal_handler(signum)
            self.db.close()
