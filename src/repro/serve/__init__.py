"""The always-on milliScope service (``mscope serve``).

The paper's mScopeMonitors → Transformer → Analyzers toolchain is
batch: collect logs, transform, diagnose.  This package promotes the
same machinery into a long-lived asyncio daemon:

* continuous multi-host tail-ingest — one
  :class:`~repro.transformer.live.LiveTransformer` per monitored host,
  delta-importing into a monolithic or sharded warehouse;
* an incremental diagnosis loop re-running the
  :class:`~repro.analysis.diagnosis.Diagnoser` over fixed time windows
  as data lands, caching per-window verdicts;
* an HTTP API (stdlib asyncio only): ``/healthz``, ``/stats``
  (text / JSON / Prometheus, reusing the telemetry formatters),
  ``/reports``, ``/paths/<request_id>``, and an ``/events`` SSE stream
  of heartbeats, ingest errors, and floor breaches;
* backpressure: a bounded ingest queue whose high-water mark drops the
  daemon to head-based sampled ingest — visible in ``/stats`` and on
  the event stream — with full recovery once the storm subsides, and a
  clean SIGTERM drain that leaves the warehouse import-consistent
  (iterdump-identical to a batch transform of the same final tree).
"""

from repro.serve.daemon import MScopeServeDaemon, ServeConfig
from repro.serve.events import EventBroker, ServeEvent
from repro.serve.state import BackpressureQueue, IngestMode, ServeState

__all__ = [
    "BackpressureQueue",
    "EventBroker",
    "IngestMode",
    "MScopeServeDaemon",
    "ServeConfig",
    "ServeEvent",
    "ServeState",
]
