"""Scoring diagnosis output against a labeled fault schedule.

Interval matching with slack: a diagnosed
:class:`~repro.analysis.anomaly.AnomalyWindow` *detects* a
:class:`~repro.validation.schedule.FaultLabel` when the two intervals
overlap within ``slack_us``.  Slack absorbs detection physics rather
than hiding misses — queues keep draining after the bottleneck lifts,
and the VLRT requests that reveal an episode complete up to a
queue-drain time after it ends, so diagnosed windows legitimately trail
injected intervals.

From the matching we report the four accuracy figures the harness
gates on:

* **recall** — labeled episodes detected / episodes injected;
* **precision** — diagnosed windows matching a label / windows
  reported (false alarms lower it);
* **detection latency** — how far the earliest matching window's start
  trails the episode's start (0 when the window starts first, which
  the clustering margin legitimately allows);
* **cause attribution** — of the detected episodes, how many were
  pinned on the right host *and* resource kind.  ``attributed`` counts
  the cause appearing anywhere in the ranked list; ``attributed_primary``
  demands rank 1.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.diagnosis import DiagnosisReport
from repro.common.timebase import Micros, ms
from repro.validation.schedule import FaultLabel, FaultSchedule

__all__ = [
    "EXPECTED_KINDS",
    "MatchedLabel",
    "ValidationScore",
    "score_reports",
]

#: fault cause → resource-metric kinds (``analysis.metrics`` vocabulary)
#: that count as a correct attribution.  Dirty-page recycling shows up
#: both as the CPU it saturates and as the dirty-level drop itself.
EXPECTED_KINDS: dict[str, tuple[str, ...]] = {
    "db_log_flush": ("disk_util",),
    "dirty_page_flush": ("cpu_busy", "dirty_pages"),
    "jvm_gc": ("cpu_busy",),
    "dvfs_slowdown": ("cpu_busy",),
    "vm_consolidation": ("cpu_steal",),
    "retry_storm": ("cpu_busy",),
    "pool_exhaustion": ("disk_util",),
    "lock_convoy": ("cpu_busy",),
    "cache_stampede": ("disk_util",),
    "net_jitter": ("cpu_steal",),
    "memory_leak": ("cpu_busy", "dirty_pages"),
}

#: Default matching slack.  Queue-drain after a 300–800 ms VSB lasts
#: up to ~1.5 s at the scenarios' workloads (measured on the seeded
#: runs; see docs/validation.md).
DEFAULT_SLACK_US: Micros = ms(1_500)


@dataclasses.dataclass(frozen=True, slots=True)
class MatchedLabel:
    """One ground-truth episode and how diagnosis did on it."""

    label: FaultLabel
    detected: bool
    #: Earliest matching window's span (µs); ``None`` when undetected.
    window_start_us: Micros | None
    window_stop_us: Micros | None
    #: ``max(0, window_start - label_start)`` for the earliest match.
    detection_latency_us: Micros | None
    #: Correct (kind, host) anywhere in a matching report's cause list.
    attributed: bool
    #: Correct (kind, host) ranked first in a matching report.
    attributed_primary: bool

    def to_dict(self) -> dict:
        return {
            "label": self.label.to_dict(),
            "detected": self.detected,
            "window_start_us": self.window_start_us,
            "window_stop_us": self.window_stop_us,
            "detection_latency_us": self.detection_latency_us,
            "attributed": self.attributed,
            "attributed_primary": self.attributed_primary,
        }


@dataclasses.dataclass(slots=True)
class ValidationScore:
    """Accuracy of one diagnosis run against one fault schedule."""

    matches: list[MatchedLabel]
    reports_total: int
    reports_matched: int
    slack_us: Micros

    # -- aggregate figures ---------------------------------------------

    @property
    def labels_total(self) -> int:
        return len(self.matches)

    @property
    def labels_detected(self) -> int:
        return sum(1 for m in self.matches if m.detected)

    @property
    def recall(self) -> float:
        if not self.matches:
            return 1.0
        return self.labels_detected / len(self.matches)

    @property
    def precision(self) -> float:
        """1.0 on a run with no reports: no alarms, no false alarms."""
        if not self.reports_total:
            return 1.0
        return self.reports_matched / self.reports_total

    @property
    def attribution_accuracy(self) -> float:
        """Correctly attributed / detected (undetected scored by recall)."""
        detected = self.labels_detected
        if not detected:
            return 0.0
        return sum(1 for m in self.matches if m.attributed) / detected

    @property
    def primary_attribution_accuracy(self) -> float:
        detected = self.labels_detected
        if not detected:
            return 0.0
        return sum(1 for m in self.matches if m.attributed_primary) / detected

    @property
    def mean_detection_latency_us(self) -> float | None:
        latencies = [
            m.detection_latency_us
            for m in self.matches
            if m.detection_latency_us is not None
        ]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

    # -- rendering -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-stable summary: no wall-clock, no filesystem paths."""
        return {
            "labels_total": self.labels_total,
            "labels_detected": self.labels_detected,
            "reports_total": self.reports_total,
            "reports_matched": self.reports_matched,
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "attribution_accuracy": round(self.attribution_accuracy, 4),
            "primary_attribution_accuracy": round(
                self.primary_attribution_accuracy, 4
            ),
            "mean_detection_latency_us": self.mean_detection_latency_us,
            "slack_us": self.slack_us,
            "matches": [m.to_dict() for m in self.matches],
        }


def _report_attributes(
    report: DiagnosisReport, label: FaultLabel
) -> tuple[bool, bool]:
    """(cause anywhere in the ranked list, cause ranked first)."""
    expected = EXPECTED_KINDS.get(label.cause, ())
    anywhere = any(
        cause.kind in expected and cause.hostname == label.hostname
        for cause in report.causes
    )
    primary = report.primary_cause()
    first = (
        primary is not None
        and primary.kind in expected
        and primary.hostname == label.hostname
    )
    return anywhere, first


def score_reports(
    schedule: FaultSchedule,
    reports: list[DiagnosisReport],
    slack_us: Micros = DEFAULT_SLACK_US,
) -> ValidationScore:
    """Match diagnosed windows against the labeled schedule."""
    matches: list[MatchedLabel] = []
    matched_reports: set[int] = set()
    for label in schedule:
        hits = [
            (index, report)
            for index, report in enumerate(reports)
            if label.overlaps(report.window.start, report.window.stop, slack_us)
        ]
        if not hits:
            matches.append(
                MatchedLabel(
                    label=label,
                    detected=False,
                    window_start_us=None,
                    window_stop_us=None,
                    detection_latency_us=None,
                    attributed=False,
                    attributed_primary=False,
                )
            )
            continue
        matched_reports.update(index for index, _ in hits)
        earliest = min(hits, key=lambda hit: hit[1].window.start)[1]
        attributed = attributed_primary = False
        for _, report in hits:
            anywhere, first = _report_attributes(report, label)
            attributed = attributed or anywhere
            attributed_primary = attributed_primary or first
        matches.append(
            MatchedLabel(
                label=label,
                detected=True,
                window_start_us=earliest.window.start,
                window_stop_us=earliest.window.stop,
                detection_latency_us=max(
                    0, earliest.window.start - label.start_us
                ),
                attributed=attributed,
                attributed_primary=attributed_primary,
            )
        )
    return ValidationScore(
        matches=matches,
        reports_total=len(reports),
        reports_matched=len(matched_reports),
        slack_us=slack_us,
    )
