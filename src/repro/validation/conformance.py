"""Differential conformance: every "these modes are identical" claim,
asserted in one place.

The pipeline makes several equivalence promises — parallel transform is
byte-identical to serial, a caught-up :class:`LiveTransformer` matches
a one-shot batch, bulk path reconstruction matches scalar, parallel
diagnosis matches serial, lenient error policies are no-ops on clean
input.  Historically each promise had its own ad-hoc pairwise test;
:data:`CONFORMANCE_PAIRS` is the single catalogue, and
:func:`run_conformance_pair` executes one entry and returns a
:class:`ConformanceResult` that names exactly what diverged (first
differing line of the warehouse dump, or the differing report).

Warehouse-comparing pairs run both sides from the *same* simulated
logs (the baseline side's log directory is reused), so any divergence
is the ingest path's fault, never the simulator's.
"""

from __future__ import annotations

import dataclasses
import itertools
from pathlib import Path
from typing import Iterable

from repro.validation.runner import ScenarioOutcome, ScenarioRunner

__all__ = [
    "ConformancePair",
    "ConformanceResult",
    "CONFORMANCE_PAIRS",
    "run_conformance_pair",
]


@dataclasses.dataclass(frozen=True, slots=True)
class ConformancePair:
    """One equivalence claim between two pipeline modes."""

    key: str
    baseline_mode: str
    variant_mode: str
    #: ``"warehouse"`` compares full SQL dumps; ``"content"`` compares
    #: the canonical content lines (layout-independent — how a sharded
    #: warehouse is held equal to a monolithic one); ``"report"``
    #: compares rendered diagnosis reports (modes that only change
    #: analysis fan-out leave the warehouse identical by construction).
    compare: str
    claim: str
    #: Simulator kernel the variant side runs on.  A cross-kernel pair
    #: simulates twice (two log directories), so its content lines are
    #: compared with each side's log-dir prefix normalized away —
    #: everything else must match byte for byte.
    variant_kernel: str = "scalar"


CONFORMANCE_PAIRS: tuple[ConformancePair, ...] = (
    ConformancePair(
        key="transform-parallel",
        baseline_mode="batch",
        variant_mode="transform-jobs2",
        compare="warehouse",
        claim="jobs=N transform is byte-identical to serial",
    ),
    ConformancePair(
        key="live-incremental",
        baseline_mode="batch",
        variant_mode="live",
        compare="warehouse",
        claim="a caught-up LiveTransformer matches one-shot batch",
    ),
    ConformancePair(
        key="diagnose-parallel",
        baseline_mode="batch",
        variant_mode="diagnose-jobs2",
        compare="report",
        claim="jobs=N diagnosis reports equal the serial run's",
    ),
    ConformancePair(
        key="policy-skip-clean",
        baseline_mode="batch",
        variant_mode="policy-skip",
        compare="warehouse",
        claim="the skip policy is a no-op on clean logs",
    ),
    ConformancePair(
        key="policy-quarantine-clean",
        baseline_mode="batch",
        variant_mode="policy-quarantine",
        compare="warehouse",
        claim="the quarantine policy is a no-op on clean logs",
    ),
    ConformancePair(
        key="causal-bulk",
        baseline_mode="batch",
        variant_mode="batch",
        compare="paths",
        claim="reconstruct_paths_bulk hop-for-hop equals scalar "
        "reconstruct_path",
    ),
    ConformancePair(
        key="warehouse-sharded",
        baseline_mode="batch",
        variant_mode="sharded",
        compare="content",
        claim="a host-partitioned sharded warehouse holds exactly the "
        "monolith's content",
    ),
    ConformancePair(
        key="sampled-sharded",
        baseline_mode="sampled",
        variant_mode="sampled-sharded",
        compare="content",
        claim="under coherent head sampling a sharded warehouse holds "
        "exactly the sampled monolith's content, sampling ledger "
        "included",
    ),
    ConformancePair(
        key="kernel-vector",
        baseline_mode="batch",
        variant_mode="batch",
        variant_kernel="vector",
        compare="content",
        claim="a vector-kernel simulation yields a warehouse holding "
        "exactly the scalar kernel's content (modulo the log "
        "directory the source paths point into)",
    ),
)


@dataclasses.dataclass(slots=True)
class ConformanceResult:
    """The verdict on one conformance pair for one scenario."""

    pair: ConformancePair
    scenario: str
    seed: int
    equal: bool
    #: Human-readable description of the first divergence (``None``
    #: when ``equal``).
    divergence: str | None

    def to_dict(self) -> dict:
        return {
            "pair": self.pair.key,
            "claim": self.pair.claim,
            "scenario": self.scenario,
            "seed": self.seed,
            "equal": self.equal,
            "divergence": self.divergence,
        }


_END = object()


def _first_dump_divergence(
    baseline: Iterable[str] | str, variant: Iterable[str] | str
) -> str | None:
    """First differing line between two dump line streams.

    Accepts any line iterables (e.g. the streaming
    :meth:`~repro.validation.runner.ScenarioOutcome.dump_lines`) and
    compares them lockstep, so diffing two multi-gigabyte warehouse
    dumps holds one *line* of each in memory, not two full dumps.
    Plain strings are accepted for convenience and split lazily.
    """
    if isinstance(baseline, str):
        baseline = iter(baseline.splitlines())
    if isinstance(variant, str):
        variant = iter(variant.splitlines())
    for index, (expected, got) in enumerate(
        itertools.zip_longest(baseline, variant, fillvalue=_END)
    ):
        if expected is _END or got is _END:
            side, length = (
                ("baseline", index) if expected is _END else ("variant", index)
            )
            return (
                f"warehouse dump length: {side} ends after {length} lines, "
                f"the other side continues"
            )
        if expected != got:
            return (
                f"warehouse dump line {index + 1}: "
                f"baseline {expected!r} != variant {got!r}"
            )
    return None


def _report_divergence(
    baseline: ScenarioOutcome, variant: ScenarioOutcome
) -> str | None:
    base_texts = baseline.report_texts
    var_texts = variant.report_texts
    if len(base_texts) != len(var_texts):
        return (
            f"report count: baseline {len(base_texts)}, "
            f"variant {len(var_texts)}"
        )
    for index, (expected, got) in enumerate(zip(base_texts, var_texts)):
        if expected != got:
            return f"report {index} differs:\n--- baseline\n{expected}\n--- variant\n{got}"
    return None


def _normalized_content_lines(outcome: ScenarioOutcome):
    """Content lines with the outcome's log-dir prefix masked.

    A cross-kernel pair necessarily simulates twice, so the registry
    tables record source paths under two different log directories.
    Masking each side's own prefix with ``<logs>`` leaves every other
    byte — timestamps, payloads, row order — under comparison.
    """
    prefix = str(outcome.log_dir) if outcome.log_dir is not None else None
    for line in outcome.content_lines():
        if prefix is not None and prefix in line:
            line = line.replace(prefix, "<logs>")
        yield line


def _paths_divergence(baseline: ScenarioOutcome) -> str | None:
    """Scalar vs bulk path reconstruction over the baseline warehouse."""
    from repro.analysis.causal import reconstruct_path, reconstruct_paths_bulk
    from repro.warehouse.db import MScopeDB

    with MScopeDB(baseline.db_path) as db:
        front = "apache_events_web1"
        ids = [
            row[0]
            for row in db.query(
                f"SELECT DISTINCT request_id FROM {front} "
                f"ORDER BY request_id"
            )
        ]
        bulk = list(reconstruct_paths_bulk(db, ids))
        if len(bulk) != len(ids):
            return f"bulk returned {len(bulk)} paths for {len(ids)} ids"
        for request_id, bulk_path in zip(ids, bulk):
            scalar_path = reconstruct_path(db, request_id)
            if scalar_path.hops != bulk_path.hops:
                return (
                    f"request {request_id}: scalar hops "
                    f"{scalar_path.hops!r} != bulk hops {bulk_path.hops!r}"
                )
    return None


def run_conformance_pair(
    pair: ConformancePair,
    scenario: str,
    seed: int,
    workdir: Path,
    baseline: ScenarioOutcome | None = None,
    runner: ScenarioRunner | None = None,
) -> ConformanceResult:
    """Execute one pair on one scenario and compare the sides.

    ``baseline`` lets a sweep run the baseline mode once and reuse it
    across every pair, and passing the sweep's ``runner`` reuses its
    cached simulation (the outcome of a given ``(scenario, seed)`` is
    deterministic, so sharing loses nothing).
    """
    if runner is None:
        runner = ScenarioRunner(workdir)
    if baseline is None or baseline.mode != pair.baseline_mode:
        # Sweeps hand every pair their shared batch baseline; pairs
        # anchored elsewhere (e.g. sampled-vs-sampled-sharded) run
        # their own — the runner's outcome cache dedups the build.
        baseline = runner.run(scenario, seed=seed, mode=pair.baseline_mode)
    if pair.compare == "paths":
        # Both "sides" read the same warehouse; no variant run needed.
        divergence = _paths_divergence(baseline)
        return ConformanceResult(
            pair=pair,
            scenario=scenario,
            seed=seed,
            equal=divergence is None,
            divergence=divergence,
        )
    variant = runner.run(
        scenario, seed=seed, mode=pair.variant_mode, kernel=pair.variant_kernel
    )
    cross_kernel = pair.variant_kernel != baseline.kernel
    if pair.compare in ("warehouse", "content"):
        if pair.compare == "warehouse":
            divergence = _first_dump_divergence(
                baseline.dump_lines(), variant.dump_lines()
            )
        elif cross_kernel:
            divergence = _first_dump_divergence(
                _normalized_content_lines(baseline),
                _normalized_content_lines(variant),
            )
        else:
            divergence = _first_dump_divergence(
                baseline.content_lines(), variant.content_lines()
            )
        # Equal warehouses must also diagnose equally; check both so a
        # pair failure always names the earliest layer that diverged.
        if divergence is None:
            divergence = _report_divergence(baseline, variant)
    else:
        divergence = _report_divergence(baseline, variant)
    return ConformanceResult(
        pair=pair,
        scenario=scenario,
        seed=seed,
        equal=divergence is None,
        divergence=divergence,
    )
