"""Ground-truth validation: labeled fault injection, accuracy scoring,
and differential conformance.

milliScope's claim is that millisecond-granularity monitoring lets the
:class:`~repro.analysis.diagnosis.Diagnoser` *correctly* attribute VLRT
requests to very short bottlenecks.  This package closes the loop that
claim requires:

* :mod:`repro.validation.schedule` — every injected VSB episode becomes
  a labeled interval (tier, resource, start/end µs, cause) captured
  straight from the fault injectors' recorded windows;
* :mod:`repro.validation.runner` — drives simulate → native logs →
  transform → warehouse → diagnose for a registry of seeded scenarios
  and scores the diagnosis against the labels;
* :mod:`repro.validation.scoring` — interval matching, precision /
  recall / detection latency / cause-attribution accuracy;
* :mod:`repro.validation.conformance` — one parametrized runner
  asserting warehouse-dump or report equality for every mode pair the
  pipeline claims equivalent.
"""

from repro.validation.conformance import (
    CONFORMANCE_PAIRS,
    ConformancePair,
    run_conformance_pair,
)
from repro.validation.runner import (
    SCENARIOS,
    ScenarioOutcome,
    ScenarioRunner,
    ScenarioSpec,
)
from repro.validation.schedule import FaultLabel, FaultSchedule
from repro.validation.scoring import MatchedLabel, ValidationScore, score_reports

__all__ = [
    "FaultLabel",
    "FaultSchedule",
    "MatchedLabel",
    "ValidationScore",
    "score_reports",
    "SCENARIOS",
    "ScenarioSpec",
    "ScenarioRunner",
    "ScenarioOutcome",
    "CONFORMANCE_PAIRS",
    "ConformancePair",
    "run_conformance_pair",
]
