"""Labeled ground-truth fault schedules.

The ``ntier`` fault injectors already record when each injected episode
ran — :class:`~repro.ntier.faults.DBLogFlushFault` its
``flush_windows``, :class:`~repro.ntier.faults.DirtyPageFlushFault` its
``burst_windows``, and so on.  This module turns those per-injector
window lists into a uniform, serializable schedule of
:class:`FaultLabel` intervals that scoring can match diagnosis output
against, and that can be written next to the simulator's native logs so
a warehouse and its ground truth travel together.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.common.errors import ConfigError
from repro.common.timebase import Micros

if TYPE_CHECKING:
    from repro.ntier.faults import Fault
    from repro.ntier.system import NTierSystem

__all__ = ["FaultLabel", "FaultSchedule"]

#: fault ``name`` → (window-list attribute, saturated resource).  Every
#: injector records completed episodes in one of these lists; the
#: resource names the hardware component the episode saturates, which
#: is what diagnosis should implicate.
_FAULT_WINDOWS: dict[str, tuple[str, str]] = {
    "db_log_flush": ("flush_windows", "disk"),
    "dirty_page_flush": ("burst_windows", "cpu"),
    "jvm_gc": ("pause_windows", "cpu"),
    "dvfs_slowdown": ("slow_windows", "cpu"),
    "vm_consolidation": ("steal_windows", "cpu"),
    "retry_storm": ("storm_windows", "cpu"),
    "pool_exhaustion": ("exhaustion_windows", "disk"),
    "lock_convoy": ("convoy_windows", "cpu"),
    "cache_stampede": ("stampede_windows", "disk"),
    "net_jitter": ("jitter_windows", "cpu"),
    "memory_leak": ("thrash_windows", "cpu"),
}


@dataclasses.dataclass(frozen=True, slots=True)
class FaultLabel:
    """One injected VSB episode, as ground truth for diagnosis.

    Times are simulation µs (epoch-rebased warehouse time), matching
    the :class:`~repro.analysis.anomaly.AnomalyWindow` timebase.
    """

    cause: str
    tier: str
    hostname: str
    resource: str
    start_us: Micros
    stop_us: Micros

    @property
    def duration_us(self) -> Micros:
        return self.stop_us - self.start_us

    def overlaps(self, start: Micros, stop: Micros, slack_us: Micros = 0) -> bool:
        """Whether ``[start, stop]`` intersects this episode ± slack.

        ``slack_us`` absorbs the detection physics: queues drain *after*
        the bottleneck lifts, so diagnosed windows legitimately trail
        the injected interval by the queue-drain time.
        """
        return start <= self.stop_us + slack_us and stop >= self.start_us - slack_us

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(slots=True)
class FaultSchedule:
    """Every labeled episode injected during one scenario run."""

    labels: list[FaultLabel]

    def __iter__(self):
        return iter(self.labels)

    def __len__(self) -> int:
        return len(self.labels)

    @classmethod
    def from_faults(
        cls, system: "NTierSystem", faults: "Iterable[Fault]"
    ) -> "FaultSchedule":
        """Extract the labels a finished run's injectors recorded.

        Must be called *after* ``system.run(...)`` — the window lists
        fill in as episodes complete.  An injector whose ``name`` is
        not in the catalogue is a programming error, not data to skip.
        """
        labels: list[FaultLabel] = []
        for fault in faults:
            try:
                window_attr, resource = _FAULT_WINDOWS[fault.name]
            except KeyError:
                raise ConfigError(
                    f"fault {fault.name!r} has no labeled-window mapping; "
                    f"add it to validation.schedule._FAULT_WINDOWS"
                ) from None
            tier = getattr(fault, "tier")
            hostname = system.node_for_tier(tier).name
            for start, stop in getattr(fault, window_attr):
                labels.append(
                    FaultLabel(
                        cause=fault.name,
                        tier=tier,
                        hostname=hostname,
                        resource=resource,
                        start_us=start,
                        stop_us=stop,
                    )
                )
        labels.sort(key=lambda label: (label.start_us, label.hostname))
        return cls(labels=labels)

    # -- persistence ---------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"labels": [label.to_dict() for label in self.labels]},
            indent=2,
            sort_keys=True,
        )

    def save(self, path: Path) -> None:
        """Write the schedule next to the run's native logs."""
        path.write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: Path) -> "FaultSchedule":
        payload = json.loads(path.read_text(encoding="utf-8"))
        return cls(
            labels=[FaultLabel(**entry) for entry in payload["labels"]]
        )
