"""End-to-end scenario execution and scoring.

:class:`ScenarioRunner` drives the full milliScope loop for one entry
of the :data:`SCENARIOS` registry:

1. simulate the scenario with its fault injectors, writing native
   mScopeMonitors logs (seeded — the whole run is a deterministic
   function of ``(scenario, seed)``);
2. capture the injectors' recorded episodes as a
   :class:`~repro.validation.schedule.FaultSchedule`, saved next to the
   logs;
3. build the warehouse through one of several *modes* (batch,
   parallel transform, live incremental, lenient error policies) — the
   pipeline claims them all equivalent, and the conformance runner
   holds it to that;
4. diagnose (serially or with ``jobs``) and score the reports against
   the schedule.

The resulting :class:`ScenarioOutcome` renders to a JSON document that
contains no wall-clock times or filesystem paths, so two runs with the
same ``(scenario, seed, mode)`` produce byte-identical reports.
"""

from __future__ import annotations

import dataclasses
import json
import shutil
from pathlib import Path
from typing import Callable

from repro.analysis.diagnosis import Diagnoser, DiagnosisReport
from repro.common.errors import ConfigError
from repro.common.timebase import Micros
from repro.ntier.system import KERNELS
from repro.experiments.scenarios import (
    ScenarioRun,
    record_run_metadata,
    scenario_a,
    scenario_b,
    scenario_cache_stampede,
    scenario_dvfs,
    scenario_gc,
    scenario_lock_convoy,
    scenario_memory_leak,
    scenario_net_jitter,
    scenario_pool_exhaustion,
    scenario_retry_storm,
    scenario_vm,
)
from repro.telemetry.spans import NULL_TELEMETRY, TelemetryCollector
from repro.transformer.errorpolicy import QUARANTINE, SKIP, ErrorPolicy
from repro.transformer.live import LiveTransformer
from repro.transformer.pipeline import MScopeDataTransformer
from repro.validation.schedule import FaultSchedule
from repro.validation.scoring import (
    DEFAULT_SLACK_US,
    ValidationScore,
    score_reports,
)
from repro.warehouse.db import MScopeDB
from repro.warehouse.sharded import ShardedMScopeDB, open_warehouse

__all__ = [
    "MODES",
    "SCENARIOS",
    "ScenarioSpec",
    "ScenarioOutcome",
    "ScenarioRunner",
]

SCHEDULE_FILE = "fault_schedule.json"

#: Warehouse-construction modes the pipeline claims equivalent.  Every
#: mode ends in the same diagnosis; ``diagnose-jobs2`` additionally
#: fans anomaly windows across worker processes, and ``sharded``
#: builds a host-partitioned :class:`ShardedMScopeDB` through the
#: parallel per-host shard writers instead of a monolithic file.
MODES = (
    "batch",
    "transform-jobs2",
    "live",
    "diagnose-jobs2",
    "policy-skip",
    "policy-quarantine",
    "sharded",
    "sampled",
    "sampled-sharded",
)

#: The fixed policy behind the ``sampled``/``sampled-sharded`` modes.
#: Head sampling is coherent (pure request-id hash) and stateless, so
#: it is deterministic under any job count and safe in the sharded
#: per-host fan-out — exactly what a layout-conformance pair needs.
CONFORMANCE_SAMPLING = "head:0.5"


@dataclasses.dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One registered validation scenario."""

    name: str
    description: str
    #: ``(seed, log_dir, kernel) -> ScenarioRun``; must run the
    #: simulation on the requested simulator kernel.
    build: Callable[[int, Path, str], ScenarioRun]
    #: Fast enough for the gating CI job (the rest run nightly).
    fast: bool
    #: Accuracy floors the gating/nightly checks assert.
    floors: dict[str, float]


SCENARIOS: dict[str, ScenarioSpec] = {
    "db_log_flush": ScenarioSpec(
        name="db_log_flush",
        description="database log flush saturates the DB disk (paper §V-A)",
        build=lambda seed, log_dir, kernel="scalar": scenario_a(
            seed=seed, log_dir=log_dir, kernel=kernel
        ),
        fast=True,
        floors={"precision": 0.9, "recall": 0.9, "attribution": 0.9},
    ),
    "dirty_page_flush": ScenarioSpec(
        name="dirty_page_flush",
        description=(
            "kernel dirty-page recycling saturates web/app CPUs (paper §V-B)"
        ),
        build=lambda seed, log_dir, kernel="scalar": scenario_b(
            seed=seed, log_dir=log_dir, kernel=kernel
        ),
        fast=True,
        floors={"precision": 0.9, "recall": 0.9, "attribution": 0.9},
    ),
    "jvm_gc": ScenarioSpec(
        name="jvm_gc",
        description="stop-the-world JVM collection on the app tier (§II)",
        build=lambda seed, log_dir, kernel="scalar": scenario_gc(
            seed=seed, log_dir=log_dir, kernel=kernel
        ),
        fast=False,
        floors={"precision": 0.9, "recall": 0.9, "attribution": 0.5},
    ),
    "dvfs_slowdown": ScenarioSpec(
        name="dvfs_slowdown",
        description="CPU frequency scaling slows the app tier (§II)",
        build=lambda seed, log_dir, kernel="scalar": scenario_dvfs(
            seed=seed, log_dir=log_dir, kernel=kernel
        ),
        fast=False,
        floors={"precision": 0.9, "recall": 0.9, "attribution": 0.5},
    ),
    "vm_consolidation": ScenarioSpec(
        name="vm_consolidation",
        description="co-located VM steals app-tier CPU (§II)",
        build=lambda seed, log_dir, kernel="scalar": scenario_vm(
            seed=seed, log_dir=log_dir, kernel=kernel
        ),
        fast=False,
        floors={"precision": 0.9, "recall": 0.9, "attribution": 0.5},
    ),
    "retry_storm": ScenarioSpec(
        name="retry_storm",
        description="timeout-retry amplification saturates the app tier",
        build=lambda seed, log_dir, kernel="scalar": scenario_retry_storm(
            seed=seed, log_dir=log_dir, kernel=kernel
        ),
        fast=True,
        floors={"precision": 0.9, "recall": 0.9, "attribution": 0.9},
    ),
    "pool_exhaustion": ScenarioSpec(
        name="pool_exhaustion",
        description=(
            "connection-pool exhaustion on one of two MySQL replicas "
            "(replica-level blame)"
        ),
        build=lambda seed, log_dir, kernel="scalar": scenario_pool_exhaustion(
            seed=seed, log_dir=log_dir, kernel=kernel
        ),
        fast=True,
        floors={"precision": 0.9, "recall": 0.9, "attribution": 0.9},
    ),
    "lock_convoy": ScenarioSpec(
        name="lock_convoy",
        description="hot-lock convoy serializes the database tier",
        build=lambda seed, log_dir, kernel="scalar": scenario_lock_convoy(
            seed=seed, log_dir=log_dir, kernel=kernel
        ),
        fast=False,
        floors={"precision": 0.9, "recall": 0.9, "attribution": 0.9},
    ),
    "cache_stampede": ScenarioSpec(
        name="cache_stampede",
        description=(
            "buffer-pool stampede under the fan-out mix over three "
            "C-JDBC replicas"
        ),
        build=lambda seed, log_dir, kernel="scalar": scenario_cache_stampede(
            seed=seed, log_dir=log_dir, kernel=kernel
        ),
        fast=False,
        floors={"precision": 0.9, "recall": 0.9, "attribution": 0.9},
    ),
    "net_jitter": ScenarioSpec(
        name="net_jitter",
        description="noisy-neighbour network jitter plus CPU steal on the DB",
        build=lambda seed, log_dir, kernel="scalar": scenario_net_jitter(
            seed=seed, log_dir=log_dir, kernel=kernel
        ),
        fast=False,
        floors={"precision": 0.9, "recall": 0.9, "attribution": 0.9},
    ),
    "memory_leak": ScenarioSpec(
        name="memory_leak",
        description="slow memory leak thrashes reclaim on the middleware",
        build=lambda seed, log_dir, kernel="scalar": scenario_memory_leak(
            seed=seed, log_dir=log_dir, kernel=kernel
        ),
        fast=False,
        floors={"precision": 0.9, "recall": 0.9, "attribution": 0.9},
    ),
}


@dataclasses.dataclass(slots=True)
class ScenarioOutcome:
    """Everything one validated scenario run produced.

    The built warehouse stays on disk at :attr:`db_path`; dump
    accessors reopen it lazily and *stream*, so conformance can diff
    two warehouses line-by-line without ever holding a full dump in
    memory.
    """

    scenario: str
    seed: int
    mode: str
    score: ValidationScore
    reports: list[DiagnosisReport]
    schedule: FaultSchedule
    db_path: Path
    #: Simulator kernel the scenario ran on.
    kernel: str = "scalar"
    #: The simulated native-log directory this warehouse was built
    #: from (cross-kernel conformance normalizes its prefix away).
    log_dir: Path | None = None

    def dump_lines(self):
        """The warehouse SQL dump, streamed line by line."""
        db = open_warehouse(self.db_path)
        try:
            yield from db.iterdump()
        finally:
            db.close()

    def content_lines(self):
        """Canonical *content* lines — layout-independent, so a sharded
        and a monolithic warehouse built from the same logs compare
        equal (what the ``warehouse-sharded`` pair diffs)."""
        db = open_warehouse(self.db_path)
        try:
            yield from db.iterdump_content()
        finally:
            db.close()

    @property
    def warehouse_dump(self) -> str:
        """Full warehouse SQL dump as one string (materialized —
        prefer :meth:`dump_lines` for comparisons)."""
        return "\n".join(self.dump_lines())

    @property
    def report_texts(self) -> list[str]:
        return [report.to_text() for report in self.reports]

    def passes_floors(self, floors: dict[str, float]) -> list[str]:
        """Floor violations (empty = all floors met)."""
        actual = {
            "precision": self.score.precision,
            "recall": self.score.recall,
            "attribution": self.score.attribution_accuracy,
        }
        return [
            f"{metric} {actual[metric]:.3f} < floor {floor:.3f}"
            for metric, floor in sorted(floors.items())
            if actual[metric] < floor
        ]

    def to_dict(self) -> dict:
        """Deterministic summary: no wall-clock, no filesystem paths."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "mode": self.mode,
            "kernel": self.kernel,
            "score": self.score.to_dict(),
            "reports": self.report_texts,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_text(self) -> str:
        score = self.score
        latency = score.mean_detection_latency_us
        kernel = "" if self.kernel == "scalar" else f", kernel {self.kernel}"
        lines = [
            f"scenario {self.scenario} "
            f"(seed {self.seed}, mode {self.mode}{kernel})",
            f"  injected episodes : {score.labels_total}",
            f"  detected          : {score.labels_detected}",
            f"  precision         : {score.precision:.3f}",
            f"  recall            : {score.recall:.3f}",
            f"  attribution       : {score.attribution_accuracy:.3f}"
            f" (primary {score.primary_attribution_accuracy:.3f})",
            "  detection latency : "
            + (f"{latency / 1000:.0f} ms" if latency is not None else "n/a"),
        ]
        for match in score.matches:
            label = match.label
            span = f"[{label.start_us / 1e6:.3f}s, {label.stop_us / 1e6:.3f}s]"
            if match.detected:
                status = "detected" + (
                    ", attributed" if match.attributed else ", MISATTRIBUTED"
                )
            else:
                status = "MISSED"
            lines.append(
                f"    {label.cause} on {label.hostname} {span}: {status}"
            )
        return "\n".join(lines)


class ScenarioRunner:
    """Runs registry scenarios end to end and scores the diagnoses.

    Parameters
    ----------
    workdir:
        Where per-run directories (native logs, fault schedule,
        warehouse) are created.
    telemetry:
        Optional collector threaded through transform and diagnosis;
        its spans persist into the warehouse's ``pipeline_metrics``.
        Defaults to the no-op sink so conformance mode pairs compare
        pure monitoring data.
    """

    def __init__(
        self,
        workdir: Path,
        telemetry: TelemetryCollector | None = None,
    ) -> None:
        self.workdir = Path(workdir)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # One simulation per (scenario, seed, kernel), shared by every
        # mode: all modes then ingest the *same* native logs, so
        # warehouse dumps (which record source paths) are directly
        # comparable and any conformance divergence is the ingest
        # path's fault.
        self._runs: dict[
            tuple[str, int, str], tuple[ScenarioRun, FaultSchedule]
        ] = {}
        # One outcome per (scenario, seed, mode, sampling, kernel):
        # re-requesting a mode (e.g. the conformance pass after a
        # full-matrix sweep) must reuse the built warehouse, not
        # re-ingest into it.
        self._outcomes: dict[
            tuple[str, int, str, str | None, str], ScenarioOutcome
        ] = {}

    def run(
        self,
        scenario: str,
        seed: int = 7,
        mode: str = "batch",
        slack_us: Micros = DEFAULT_SLACK_US,
        sampling: str | None = None,
        kernel: str = "scalar",
    ) -> ScenarioOutcome:
        """Simulate, ingest (per ``mode``), diagnose, and score.

        ``sampling`` threads a log-volume-reduction policy spec into
        the warehouse build (the frontier sweep varies it); the
        ``sampled``/``sampled-sharded`` modes default it to
        :data:`CONFORMANCE_SAMPLING` so the conformance runner can
        name a fixed sampled pair.  ``kernel`` selects the simulator
        substrate (:data:`repro.ntier.system.KERNELS`); the vector
        kernel must produce the same logs, warehouse content, and
        scores, and the kernel conformance pair holds it to that.
        """
        spec = SCENARIOS.get(scenario)
        if spec is None:
            raise ConfigError(
                f"unknown scenario {scenario!r}; "
                f"registered: {', '.join(sorted(SCENARIOS))}"
            )
        if mode not in MODES:
            raise ConfigError(
                f"unknown mode {mode!r}; expected one of {MODES}"
            )
        if kernel not in KERNELS:
            raise ConfigError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}"
            )
        if sampling is None and mode in ("sampled", "sampled-sharded"):
            sampling = CONFORMANCE_SAMPLING
        done = self._outcomes.get((scenario, seed, mode, sampling, kernel))
        if done is not None:
            if done.score.slack_us == slack_us:
                return done
            # Same warehouse and reports; only the matching slack
            # changed — re-score without re-ingesting.
            return dataclasses.replace(
                done,
                score=score_reports(
                    done.schedule, done.reports, slack_us=slack_us
                ),
            )

        # The scalar kernel keeps the historical directory name, so
        # reused workdirs and existing tooling see unchanged paths.
        leaf_run = f"{scenario}-seed{seed}"
        if kernel != "scalar":
            leaf_run = f"{leaf_run}-{kernel}"
        rundir = self.workdir / leaf_run
        # Distinct policy specs build distinct warehouses; slug the
        # spec into the directory so a frontier sweep never collides.
        leaf = mode if sampling is None else f"{mode}+{sampling.replace(':', '_')}"
        mode_dir = rundir / leaf
        mode_dir.mkdir(parents=True, exist_ok=True)

        cached = self._runs.get((scenario, seed, kernel))
        if cached is None:
            # A leftover logs tree (reused --workdir) must not survive:
            # the monitors append to existing files, which would double
            # every log line on re-simulation.
            shutil.rmtree(rundir / "logs", ignore_errors=True)
            run = spec.build(seed, rundir / "logs", kernel)
            schedule = FaultSchedule.from_faults(run.system, run.faults)
            schedule.save(rundir / SCHEDULE_FILE)
            self._runs[(scenario, seed, kernel)] = (run, schedule)
        else:
            run, schedule = cached

        if mode in ("sharded", "sampled-sharded"):
            db_path = mode_dir / "mscope.shards"
            # Always build from scratch: appending to a leftover
            # warehouse (a reused --workdir, say) would silently
            # double every table.
            shutil.rmtree(db_path, ignore_errors=True)
        else:
            db_path = mode_dir / "mscope.db"
            db_path.unlink(missing_ok=True)
        db = self._build_warehouse(run, db_path, mode, mode_dir, sampling)
        try:
            jobs = 2 if mode == "diagnose-jobs2" else None
            diagnoser = Diagnoser(
                db,
                epoch_us=run.epoch_us,
                telemetry=self.telemetry,
                jobs=jobs,
            )
            reports = diagnoser.diagnose()
            self.telemetry.persist_stages(db)
        finally:
            db.close()
        score = score_reports(schedule, reports, slack_us=slack_us)
        outcome = ScenarioOutcome(
            scenario=scenario,
            seed=seed,
            mode=mode,
            score=score,
            reports=reports,
            schedule=schedule,
            db_path=db_path,
            kernel=kernel,
            log_dir=run.log_dir,
        )
        self._outcomes[(scenario, seed, mode, sampling, kernel)] = outcome
        return outcome

    def _build_warehouse(
        self,
        run: ScenarioRun,
        db_path: Path,
        mode: str,
        rundir: Path,
        sampling: str | None = None,
    ) -> MScopeDB | ShardedMScopeDB:
        assert run.log_dir is not None  # every spec passes a log_dir
        if mode in ("sharded", "sampled-sharded"):
            # Host-partitioned warehouse built through the parallel
            # per-host shard writers.  Host-only sharding (no time
            # window) keeps per-table row order identical to a serial
            # batch build, so even diagnosis-report equality holds.
            sharded = ShardedMScopeDB(db_path)
            transformer = MScopeDataTransformer(
                sharded, jobs=2, telemetry=self.telemetry, sampling=sampling
            )
            transformer.transform_directory(run.log_dir)
            record_run_metadata(run, sharded)
            return sharded
        db = MScopeDB(db_path)
        if mode == "live":
            # One catch-up refresh over the finished logs; incremental
            # split behaviour is covered by the live property test.
            live = LiveTransformer(db, telemetry=self.telemetry, sampling=sampling)
            live.refresh_directory(run.log_dir)
            live.flush_sampling()
        else:
            policy = None
            if mode == "policy-skip":
                policy = ErrorPolicy(mode=SKIP)
            elif mode == "policy-quarantine":
                policy = ErrorPolicy(
                    mode=QUARANTINE, quarantine_dir=rundir / "quarantine"
                )
            jobs = 2 if mode == "transform-jobs2" else 1
            transformer = MScopeDataTransformer(
                db,
                jobs=jobs,
                policy=policy,
                telemetry=self.telemetry,
                sampling=sampling,
            )
            transformer.transform_directory(run.log_dir)
        record_run_metadata(run, db)
        return db
