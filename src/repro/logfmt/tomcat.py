"""Tomcat application-log formats.

The Tomcat mScopeMonitor logs one bracketed key=value line per served
request.  Unlike Apache's positional fields, Tomcat's instrumented
format is self-describing — the extra logging thread the paper
describes (Section VI-B) writes variable-width records covering the
dynamic downstream communication, so key=value is the natural shape.
"""

from __future__ import annotations

from repro.common.records import BoundaryRecord
from repro.common.timebase import WallClock

__all__ = ["format_plain_tomcat", "format_mscope_tomcat"]


def format_plain_tomcat(
    wall: WallClock,
    interaction: str,
    boundary: BoundaryRecord,
) -> str:
    """Unmodified Tomcat localhost-access style line (second granularity)."""
    stamp = wall.hms(boundary.upstream_arrival)
    duration_ms = 0
    if boundary.upstream_departure is not None:
        duration_ms = (
            boundary.upstream_departure - boundary.upstream_arrival
        ) // 1000
    return (
        f'{stamp} INFO [http-worker] "GET /rubbos/{interaction} HTTP/1.1" '
        f"200 {duration_ms}ms"
    )


def format_mscope_tomcat(
    wall: WallClock,
    interaction: str,
    boundary: BoundaryRecord,
) -> str:
    """Tomcat mScopeMonitor line: bracketed timestamp + key=value fields."""
    if boundary.upstream_departure is None:
        raise ValueError(f"request {boundary.request_id} logged before departure")
    stamp = wall.hms_ms(boundary.upstream_arrival)
    parts = [
        f"[{stamp}]",
        f"servlet={interaction}",
        f"ID={boundary.request_id}",
        f"UA={wall.epoch_micros(boundary.upstream_arrival)}",
        f"DS={_maybe(wall, boundary.downstream_sending)}",
        f"DR={_maybe(wall, boundary.downstream_receiving)}",
        f"UD={wall.epoch_micros(boundary.upstream_departure)}",
        f"queries={len(boundary.downstream_calls)}",
    ]
    return " ".join(parts)


def _maybe(wall: WallClock, value):
    return wall.epoch_micros(value) if value is not None else "-"
