"""SAR (sysstat) output formats.

Two formats, matching the paper's two SAR paths through
mScopeDataTransformer (Figure 3):

* **Text** — the classic ``sar -u`` report: a banner line, a header
  row repeated periodically, data rows, and a trailing ``Average:``
  row.  This ambiguous shape is what the customized SAR mScopeParser
  has to untangle.
* **XML** — the ``sadf -x`` style output the authors switched to after
  upgrading SAR, which feeds the XML-to-CSV converter directly and
  "obviates the custom approach".
"""

from __future__ import annotations

from repro.common.timebase import Micros, WallClock

__all__ = [
    "SarCpuRow",
    "sar_text_banner",
    "sar_text_header",
    "format_sar_text_row",
    "format_sar_text_average",
    "sar_xml_open",
    "sar_xml_close",
    "format_sar_xml_row",
]


class SarCpuRow:
    """One CPU utilization sample in SAR's column order."""

    __slots__ = ("timestamp", "user", "system", "iowait", "steal", "idle")

    def __init__(
        self,
        timestamp: Micros,
        user: float,
        system: float,
        iowait: float,
        steal: float = 0.0,
    ) -> None:
        self.timestamp = timestamp
        self.user = user
        self.system = system
        self.iowait = iowait
        self.steal = steal
        self.idle = max(0.0, 100.0 - user - system - iowait - steal)


def sar_text_banner(wall: WallClock, hostname: str, cores: int) -> str:
    """The ``uname``-style banner SAR prints at the top of a report."""
    date = wall.at(0).strftime("%m/%d/%Y")
    return f"Linux 2.6.32-mscope ({hostname}) \t{date} \t_x86_64_\t({cores} CPU)"


def sar_text_header(wall: WallClock, timestamp: Micros) -> str:
    """The column-header row (repeated periodically inside a report)."""
    stamp = wall.hms_ms(timestamp)
    return (
        f"{stamp}     CPU     %user     %nice   %system   %iowait"
        "    %steal     %idle"
    )


def format_sar_text_row(wall: WallClock, row: SarCpuRow) -> str:
    """One ``all``-CPU data row."""
    stamp = wall.hms_ms(row.timestamp)
    return (
        f"{stamp}     all {row.user:9.2f} {0.0:9.2f} {row.system:9.2f}"
        f" {row.iowait:9.2f} {row.steal:9.2f} {row.idle:9.2f}"
    )


def format_sar_text_average(rows: list[SarCpuRow]) -> str:
    """The trailing ``Average:`` row of a SAR text report."""
    if not rows:
        return (
            "Average:        all      0.00      0.00      0.00      0.00"
            "      0.00    100.00"
        )
    n = len(rows)
    user = sum(r.user for r in rows) / n
    system = sum(r.system for r in rows) / n
    iowait = sum(r.iowait for r in rows) / n
    steal = sum(r.steal for r in rows) / n
    idle = sum(r.idle for r in rows) / n
    return (
        f"Average:        all {user:9.2f} {0.0:9.2f} {system:9.2f}"
        f" {iowait:9.2f} {steal:9.2f} {idle:9.2f}"
    )


def sar_xml_open(wall: WallClock, hostname: str, cores: int) -> str:
    """Opening lines of a ``sadf -x`` style XML document."""
    return (
        '<?xml version="1.0" encoding="UTF-8"?>\n'
        "<sysstat>\n"
        f'<host nodename="{hostname}" cpus="{cores}">\n'
        "<statistics>"
    )


def sar_xml_close() -> str:
    """Closing lines of the XML document."""
    return "</statistics>\n</host>\n</sysstat>"


def format_sar_xml_row(wall: WallClock, row: SarCpuRow) -> str:
    """One ``<timestamp>`` element with its ``cpu-load`` payload."""
    date = wall.date(row.timestamp)
    time = wall.hms_ms(row.timestamp)
    return (
        f'<timestamp date="{date}" time="{time}">'
        f'<cpu-load><cpu number="all" user="{row.user:.2f}" '
        f'system="{row.system:.2f}" iowait="{row.iowait:.2f}" '
        f'steal="{row.steal:.2f}" idle="{row.idle:.2f}"/></cpu-load>'
        "</timestamp>"
    )
