"""Collectl output formats (plain text and CSV).

Collectl is the paper's workhorse resource monitor: both illustrative
scenarios read its CPU, disk, and memory subsystems.  The CSV format
(``collectl -P``) writes a ``#``-prefixed header whose bracketed column
names identify subsystems — ``[CPU]User%``, ``[DSK]WriteKBTot``,
``[MEM]Dirty`` — followed by comma-separated data rows.
"""

from __future__ import annotations

from repro.common.timebase import Micros, WallClock

__all__ = [
    "CollectlSample",
    "COLLECTL_CSV_COLUMNS",
    "collectl_csv_header",
    "format_collectl_csv_row",
    "format_collectl_text_row",
    "collectl_text_header",
]


class CollectlSample:
    """One multi-subsystem Collectl sample."""

    __slots__ = (
        "timestamp",
        "cpu_user",
        "cpu_sys",
        "cpu_wait",
        "disk_read_kb",
        "disk_write_kb",
        "disk_util",
        "mem_dirty_kb",
    )

    def __init__(
        self,
        timestamp: Micros,
        cpu_user: float,
        cpu_sys: float,
        cpu_wait: float,
        disk_read_kb: float,
        disk_write_kb: float,
        disk_util: float,
        mem_dirty_kb: float,
    ) -> None:
        self.timestamp = timestamp
        self.cpu_user = cpu_user
        self.cpu_sys = cpu_sys
        self.cpu_wait = cpu_wait
        self.disk_read_kb = disk_read_kb
        self.disk_write_kb = disk_write_kb
        self.disk_util = disk_util
        self.mem_dirty_kb = mem_dirty_kb

    @property
    def cpu_idle(self) -> float:
        return max(0.0, 100.0 - self.cpu_user - self.cpu_sys - self.cpu_wait)


#: Column order of the CSV format (after Date and Time).
COLLECTL_CSV_COLUMNS = (
    "[CPU]User%",
    "[CPU]Sys%",
    "[CPU]Wait%",
    "[CPU]Idle%",
    "[DSK]ReadKBTot",
    "[DSK]WriteKBTot",
    "[DSK]PctUtil",
    "[MEM]Dirty",
)


def collectl_csv_header() -> str:
    """The ``#``-prefixed CSV header row."""
    return "#Date,Time," + ",".join(COLLECTL_CSV_COLUMNS)


def format_collectl_csv_row(wall: WallClock, sample: CollectlSample) -> str:
    """One CSV data row."""
    date = wall.at(sample.timestamp).strftime("%Y%m%d")
    time = wall.hms_ms(sample.timestamp)
    values = (
        f"{sample.cpu_user:.1f}",
        f"{sample.cpu_sys:.1f}",
        f"{sample.cpu_wait:.1f}",
        f"{sample.cpu_idle:.1f}",
        f"{sample.disk_read_kb:.1f}",
        f"{sample.disk_write_kb:.1f}",
        f"{sample.disk_util:.1f}",
        f"{sample.mem_dirty_kb:.0f}",
    )
    return f"{date},{time}," + ",".join(values)


def collectl_text_header() -> str:
    """Header of the interactive ``collectl -scdm`` text display."""
    return (
        "#Time         CPU%  SysT%  Wait%  KBRead KBWrite DskUtil DirtyKB"
    )


def format_collectl_text_row(wall: WallClock, sample: CollectlSample) -> str:
    """One plain-text row."""
    time = wall.hms_ms(sample.timestamp)
    return (
        f"{time} {sample.cpu_user:6.1f} {sample.cpu_sys:6.1f}"
        f" {sample.cpu_wait:6.1f} {sample.disk_read_kb:7.1f}"
        f" {sample.disk_write_kb:7.1f} {sample.disk_util:7.1f}"
        f" {sample.mem_dirty_kb:7.0f}"
    )
