"""IOstat extended-device-report format (``iostat -dxt`` style).

Each sample is a block: a timestamp line, the ``Device:`` header, one
row per device, then a blank line.  Block structure — not line
structure — is what the IOstat mScopeParser must recover.
"""

from __future__ import annotations

from repro.common.timebase import Micros, WallClock

__all__ = ["IostatDeviceRow", "format_iostat_block"]


class IostatDeviceRow:
    """One device's extended statistics for one interval."""

    __slots__ = (
        "device",
        "reads_per_sec",
        "writes_per_sec",
        "read_kb_per_sec",
        "write_kb_per_sec",
        "avg_queue",
        "util_pct",
    )

    def __init__(
        self,
        device: str,
        reads_per_sec: float,
        writes_per_sec: float,
        read_kb_per_sec: float,
        write_kb_per_sec: float,
        avg_queue: float,
        util_pct: float,
    ) -> None:
        self.device = device
        self.reads_per_sec = reads_per_sec
        self.writes_per_sec = writes_per_sec
        self.read_kb_per_sec = read_kb_per_sec
        self.write_kb_per_sec = write_kb_per_sec
        self.avg_queue = avg_queue
        self.util_pct = util_pct


_HEADER = (
    "Device:         r/s     w/s    rkB/s    wkB/s avgqu-sz  %util"
)


def format_iostat_block(
    wall: WallClock,
    timestamp: Micros,
    rows: list[IostatDeviceRow],
) -> list[str]:
    """Render one sample block (timestamp, header, device rows, blank)."""
    date = wall.at(timestamp).strftime("%m/%d/%Y")
    time = wall.hms_ms(timestamp)
    lines = [f"{date} {time}", _HEADER]
    for row in rows:
        lines.append(
            f"{row.device:<12} {row.reads_per_sec:7.2f} {row.writes_per_sec:7.2f}"
            f" {row.read_kb_per_sec:8.2f} {row.write_kb_per_sec:8.2f}"
            f" {row.avg_queue:8.2f} {row.util_pct:6.2f}"
        )
    lines.append("")
    return lines
