"""MySQL query-log formats.

The MySQL mScopeMonitor reproduces the paper's Appendix A convention:
the propagated request ID arrives *inside a SQL comment*
(``/*ID=R0A000000042*/``) appended to each statement by the upstream
instrumentation, and the monitor logs each statement with its boundary
timestamps in a tab-separated, general-query-log-like format.
"""

from __future__ import annotations

import zlib

from repro.common.records import BoundaryRecord
from repro.common.timebase import WallClock

__all__ = [
    "format_plain_binlog",
    "format_mscope_query",
    "statement_with_id",
]


def statement_with_id(statement: str, request_id: str) -> str:
    """Append the milliScope ID comment to a SQL statement."""
    return f"{statement} /*ID={request_id}*/"


def format_plain_binlog(
    wall: WallClock,
    boundary: BoundaryRecord,
    statement: str,
) -> str:
    """Unmodified MySQL's general-query-log line (no ID, no boundaries).

    The paper's overhead comparison is against servers with their
    stock logging on; the general log records the bare statement with
    a second-granularity stamp and a connection id.
    """
    stamp = wall.at(boundary.upstream_arrival).strftime("%y%m%d %H:%M:%S")
    conn = zlib.crc32(boundary.request_id.encode()) % 97 + 2
    return f"{stamp}\t{conn:5d} Query\t{statement}"


def format_mscope_query(
    wall: WallClock,
    boundary: BoundaryRecord,
    statement: str,
) -> str:
    """MySQL mScopeMonitor line: tab-separated with the ID comment intact."""
    if boundary.upstream_departure is None:
        raise ValueError(f"request {boundary.request_id} logged before departure")
    stamp = wall.at(boundary.upstream_arrival).strftime("%y%m%d %H:%M:%S")
    arrival = wall.epoch_micros(boundary.upstream_arrival)
    departure = wall.epoch_micros(boundary.upstream_departure)
    instrumented = statement_with_id(statement, boundary.request_id)
    return f"{stamp}\tQuery\t{arrival}\t{departure}\t{instrumented}"
