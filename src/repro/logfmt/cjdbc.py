"""C-JDBC middleware log formats (log4j-style).

C-JDBC (the clustered JDBC middleware RUBBoS deploys between Tomcat and
MySQL) logs through log4j; the C-JDBC mScopeMonitor adds the propagated
request ID and the microsecond boundary pair to each routed statement's
log record.
"""

from __future__ import annotations

from repro.common.records import BoundaryRecord
from repro.common.timebase import WallClock

__all__ = ["format_plain_cjdbc", "format_mscope_cjdbc"]


def format_plain_cjdbc(
    wall: WallClock,
    boundary: BoundaryRecord,
    statement: str,
) -> str:
    """Unmodified C-JDBC log4j line for a routed statement."""
    date = wall.date(boundary.upstream_arrival)
    stamp = wall.hms(boundary.upstream_arrival)
    head = statement.split(" ", 1)[0]
    return (
        f"{date} {stamp} INFO controller.RequestManager "
        f"routed {head} to backend mysql1"
    )


def format_mscope_cjdbc(
    wall: WallClock,
    boundary: BoundaryRecord,
    statement: str,
) -> str:
    """C-JDBC mScopeMonitor line with request ID and boundary pair."""
    if boundary.upstream_departure is None:
        raise ValueError(f"request {boundary.request_id} logged before departure")
    date = wall.date(boundary.upstream_arrival)
    stamp = wall.hms_ms(boundary.upstream_arrival).replace(".", ",")
    return (
        f"{date} {stamp} INFO controller.RequestManager "
        f"req={boundary.request_id} "
        f"ua={wall.epoch_micros(boundary.upstream_arrival)} "
        f"ds={_maybe(wall, boundary.downstream_sending)} "
        f"dr={_maybe(wall, boundary.downstream_receiving)} "
        f"ud={wall.epoch_micros(boundary.upstream_departure)}"
    )


def _maybe(wall: WallClock, value):
    return wall.epoch_micros(value) if value is not None else "-"
