"""Native log format emitters for every monitored component."""

from repro.logfmt.apache import (
    MSCOPE_ACCESS_FIELDS,
    format_mscope_access,
    format_plain_access,
)
from repro.logfmt.cjdbc import format_mscope_cjdbc, format_plain_cjdbc
from repro.logfmt.collectl import (
    COLLECTL_CSV_COLUMNS,
    CollectlSample,
    collectl_csv_header,
    collectl_text_header,
    format_collectl_csv_row,
    format_collectl_text_row,
)
from repro.logfmt.iostat import IostatDeviceRow, format_iostat_block
from repro.logfmt.mysql import (
    format_mscope_query,
    format_plain_binlog,
    statement_with_id,
)
from repro.logfmt.sar import (
    SarCpuRow,
    format_sar_text_average,
    format_sar_text_row,
    format_sar_xml_row,
    sar_text_banner,
    sar_text_header,
    sar_xml_close,
    sar_xml_open,
)
from repro.logfmt.tomcat import format_mscope_tomcat, format_plain_tomcat

__all__ = [
    "COLLECTL_CSV_COLUMNS",
    "CollectlSample",
    "IostatDeviceRow",
    "MSCOPE_ACCESS_FIELDS",
    "SarCpuRow",
    "collectl_csv_header",
    "collectl_text_header",
    "format_collectl_csv_row",
    "format_collectl_text_row",
    "format_iostat_block",
    "format_mscope_access",
    "format_mscope_cjdbc",
    "format_mscope_query",
    "format_mscope_tomcat",
    "format_plain_access",
    "format_plain_binlog",
    "format_plain_cjdbc",
    "format_plain_tomcat",
    "format_sar_text_average",
    "format_sar_text_row",
    "format_sar_xml_row",
    "sar_text_banner",
    "sar_text_header",
    "sar_xml_close",
    "sar_xml_open",
    "statement_with_id",
]
