"""Apache HTTPD access-log formats.

Two formats are emitted:

* :func:`format_plain_access` — the stock combined-ish access log of an
  unmodified Apache (second-granularity CLF timestamp, no request ID).
* :func:`format_mscope_access` — the Apache mScopeMonitor format from
  the paper's Appendix A: the request ID is injected into the URL
  (``?ID=...``) and the four boundary timestamps (epoch microseconds)
  are appended by the modified ``mod_log_config``; the two connector
  timestamps come from the ``request_rec`` extension recorded around
  the ModJK call.
"""

from __future__ import annotations

from repro.common.records import BoundaryRecord
from repro.common.timebase import WallClock

__all__ = [
    "format_plain_access",
    "format_mscope_access",
    "MSCOPE_ACCESS_FIELDS",
]

#: Positional meaning of the four appended microsecond fields.
MSCOPE_ACCESS_FIELDS = (
    "upstream_arrival_us",
    "downstream_sending_us",
    "downstream_receiving_us",
    "upstream_departure_us",
)

_CLIENT = "10.10.1.100"


def _status_and_bytes(response_bytes: int) -> str:
    return f"200 {response_bytes}"


def format_plain_access(
    wall: WallClock,
    url: str,
    boundary: BoundaryRecord,
    response_bytes: int,
) -> str:
    """Stock access-log line of an unmodified Apache."""
    stamp = wall.apache_clf(boundary.upstream_arrival)
    return (
        f'{_CLIENT} - - [{stamp}] "GET {url} HTTP/1.1" '
        f"{_status_and_bytes(response_bytes)}"
    )


def format_mscope_access(
    wall: WallClock,
    url_with_id: str,
    boundary: BoundaryRecord,
    response_bytes: int,
) -> str:
    """Apache mScopeMonitor access-log line (ID in URL + 4 timestamps)."""
    stamp = wall.apache_clf(boundary.upstream_arrival)
    fields = [
        wall.epoch_micros(boundary.upstream_arrival),
        _maybe(wall, boundary.downstream_sending),
        _maybe(wall, boundary.downstream_receiving),
        wall.epoch_micros(_required_departure(boundary)),
    ]
    rendered = " ".join(str(f) for f in fields)
    return (
        f'{_CLIENT} - - [{stamp}] "GET {url_with_id} HTTP/1.1" '
        f"{_status_and_bytes(response_bytes)} {rendered}"
    )


def _maybe(wall: WallClock, value):
    return wall.epoch_micros(value) if value is not None else "-"


def _required_departure(boundary: BoundaryRecord):
    if boundary.upstream_departure is None:
        raise ValueError(
            f"request {boundary.request_id} logged before departure"
        )
    return boundary.upstream_departure
