"""Discrete-event simulation kernel: engine, processes, resources, tracking."""

from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf, Event, EventState, Timeout
from repro.sim.process import Process
from repro.sim.resources import Acquire, Resource, Store
from repro.sim.tracking import StepSeries

__all__ = [
    "Acquire",
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "EventState",
    "Process",
    "Resource",
    "StepSeries",
    "Store",
]
