"""Discrete-event simulation kernel: engine, processes, resources, tracking."""

from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf, Event, EventState, Timeout
from repro.sim.process import Process
from repro.sim.resources import Acquire, Resource, Store
from repro.sim.tracking import StepSeries
from repro.sim.vector import (
    EventCalendar,
    TierLoad,
    TrafficGenerator,
    TrafficReport,
    VectorEngine,
)

__all__ = [
    "Acquire",
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "EventCalendar",
    "EventState",
    "Process",
    "Resource",
    "StepSeries",
    "Store",
    "TierLoad",
    "TrafficGenerator",
    "TrafficReport",
    "VectorEngine",
]
