"""Time-weighted series tracking.

:class:`StepSeries` records a right-continuous step function — queue
lengths, busy-server counts, buffer levels — and supports the queries
analysis and the resource monitors need: instantaneous value, window
integral/mean/max, and uniform resampling.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator

from repro.common.errors import SimulationError
from repro.common.timebase import Micros

__all__ = ["StepSeries"]


class StepSeries:
    """A right-continuous step function of simulation time.

    The value recorded at time ``t`` holds for ``[t, t_next)``.  Before
    the first record the series holds ``initial``.

    Examples
    --------
    >>> s = StepSeries(initial=0)
    >>> s.record(10, 2)
    >>> s.record(20, 5)
    >>> s.value_at(15)
    2
    >>> s.integral(0, 30)
    70
    """

    __slots__ = ("_times", "_values", "_cumulative", "_dirty")

    def __init__(self, initial: float = 0) -> None:
        self._times: list[Micros] = [0]
        self._values: list[float] = [initial]
        self._cumulative: list[float] = [0.0]
        self._dirty = False

    def record(self, time: Micros, value: float) -> None:
        """Record that the series takes ``value`` from ``time`` onward."""
        last = self._times[-1]
        if time < last:
            raise SimulationError(
                f"StepSeries.record out of order: {time} < {last}"
            )
        if time == last:
            self._values[-1] = value
        else:
            self._times.append(time)
            self._values.append(value)
        self._dirty = True

    def adjust(self, time: Micros, delta: float) -> float:
        """Add ``delta`` to the current value at ``time``; return the new value."""
        new_value = self._values[-1] + delta
        self.record(time, new_value)
        return new_value

    @property
    def current(self) -> float:
        """The most recently recorded value."""
        return self._values[-1]

    @property
    def last_change(self) -> Micros:
        """The time of the most recent record."""
        return self._times[-1]

    def __len__(self) -> int:
        return len(self._times)

    def value_at(self, time: Micros) -> float:
        """Instantaneous value at ``time`` (right-continuous)."""
        if time < 0:
            raise SimulationError(f"negative query time: {time}")
        index = bisect_right(self._times, time) - 1
        return self._values[index]

    def _ensure_cumulative(self) -> None:
        if not self._dirty and len(self._cumulative) == len(self._times):
            return
        cumulative = [0.0]
        for i in range(1, len(self._times)):
            span = self._times[i] - self._times[i - 1]
            cumulative.append(cumulative[-1] + span * self._values[i - 1])
        self._cumulative = cumulative
        self._dirty = False

    def integral(self, start: Micros, stop: Micros) -> float:
        """Integral of the series over ``[start, stop)`` (value·µs)."""
        if stop < start:
            raise SimulationError(f"integral window reversed: [{start}, {stop})")
        if stop == start:
            return 0.0
        self._ensure_cumulative()
        return self._integral_to(stop) - self._integral_to(start)

    def _integral_to(self, time: Micros) -> float:
        index = bisect_right(self._times, time) - 1
        base = self._cumulative[index]
        return base + (time - self._times[index]) * self._values[index]

    def mean(self, start: Micros, stop: Micros) -> float:
        """Time-weighted mean over ``[start, stop)``."""
        if stop <= start:
            raise SimulationError(f"mean window empty: [{start}, {stop})")
        return self.integral(start, stop) / (stop - start)

    def max_between(self, start: Micros, stop: Micros) -> float:
        """Maximum instantaneous value over ``[start, stop)``."""
        if stop <= start:
            raise SimulationError(f"max window empty: [{start}, {stop})")
        lo = bisect_right(self._times, start) - 1
        hi = bisect_right(self._times, stop - 1)
        return max(self._values[lo:hi])

    def resample(
        self, start: Micros, stop: Micros, step: Micros
    ) -> tuple[list[Micros], list[float]]:
        """Instantaneous values on a uniform grid over ``[start, stop)``."""
        if step <= 0:
            raise SimulationError(f"resample step must be positive: {step}")
        times: list[Micros] = []
        values: list[float] = []
        t = start
        while t < stop:
            times.append(t)
            values.append(self.value_at(t))
            t += step
        return times, values

    def window_means(
        self, start: Micros, stop: Micros, step: Micros
    ) -> tuple[list[Micros], list[float]]:
        """Time-weighted means over consecutive windows of width ``step``.

        Each returned timestamp is the window start.
        """
        if step <= 0:
            raise SimulationError(f"window step must be positive: {step}")
        times: list[Micros] = []
        values: list[float] = []
        t = start
        while t < stop:
            end = min(t + step, stop)
            times.append(t)
            values.append(self.mean(t, end))
            t = end
        return times, values

    def changes(self) -> Iterator[tuple[Micros, float]]:
        """Iterate the raw ``(time, value)`` change points."""
        return iter(zip(self._times, self._values))
