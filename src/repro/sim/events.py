"""Core event types for the discrete-event kernel.

The kernel follows the classic event-scheduling design: an
:class:`Event` carries a value (or an exception), a list of callbacks,
and a three-state lifecycle — *pending* → *triggered* (scheduled on the
engine's agenda) → *processed* (callbacks ran).  Processes (see
:mod:`repro.sim.process`) suspend by yielding events and are resumed by
the engine when those events are processed.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable

from repro.common.errors import SimulationError
from repro.common.timebase import Micros

if TYPE_CHECKING:
    from repro.sim.engine import Engine

__all__ = ["Event", "Timeout", "AllOf", "AnyOf", "EventState"]


class EventState(enum.Enum):
    """Lifecycle states of an :class:`Event`."""

    PENDING = "pending"
    TRIGGERED = "triggered"
    PROCESSED = "processed"


class Event:
    """An occurrence that processes can wait on.

    Events succeed (with an optional value) or fail (with an exception).
    A failed event that nobody waits on raises :class:`SimulationError`
    when processed, unless it has been :meth:`defused <defuse>` — errors
    must never pass silently.
    """

    __slots__ = ("engine", "callbacks", "_value", "_exception", "_state", "_defused")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._exception: BaseException | None = None
        self._state = EventState.PENDING
        self._defused = False

    @property
    def state(self) -> EventState:
        """Current lifecycle state."""
        return self._state

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled (or already processed)."""
        return self._state is not EventState.PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have run."""
        return self._state is EventState.PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (valid only once triggered)."""
        if self._state is EventState.PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._exception is None

    @property
    def value(self) -> Any:
        """The success value (or raises the failure exception)."""
        if self._state is EventState.PENDING:
            raise SimulationError("event has not been triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        """The failure exception, if the event failed."""
        return self._exception

    def succeed(self, value: Any = None, delay: Micros = 0) -> "Event":
        """Mark the event successful and schedule its processing."""
        self._require_pending()
        self._value = value
        self._state = EventState.TRIGGERED
        self.engine._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: Micros = 0) -> "Event":
        """Mark the event failed and schedule its processing."""
        self._require_pending()
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._exception = exception
        self._state = EventState.TRIGGERED
        self.engine._schedule(self, delay)
        return self

    def defuse(self) -> "Event":
        """Permit this event to fail without a waiter (suppresses the raise)."""
        self._defused = True
        return self

    def _require_pending(self) -> None:
        if self._state is not EventState.PENDING:
            raise SimulationError(f"event already {self._state.value}")

    def _process(self) -> None:
        """Run callbacks; called by the engine at the scheduled time."""
        self._state = EventState.PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)
        if self._exception is not None and not self._defused and not callbacks:
            raise self._exception


class Timeout(Event):
    """An event that succeeds after a fixed delay.

    Parameters
    ----------
    engine:
        The owning engine.
    delay:
        Delay in microseconds; must be non-negative.
    value:
        Value delivered to the waiter when the timeout fires.
    """

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: Micros, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = delay
        self.succeed(value, delay=delay)


class _Condition(Event):
    """Base for events composed of several child events."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, engine: "Engine", events: list[Event]) -> None:
        super().__init__(engine)
        self._events = list(events)
        self._remaining = len(self._events)
        if not self._events:
            self.succeed([])
            return
        for event in self._events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when every child event succeeds; fails on the first failure."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child.value for child in self._events])


class AnyOf(_Condition):
    """Succeeds when the first child succeeds; fails if the first is a failure."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self.succeed(event.value)
