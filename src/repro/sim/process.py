"""Generator-based simulation processes.

A process wraps a Python generator.  The generator yields events; the
process suspends until each yielded event is processed, then resumes
with the event's value (or has the event's exception thrown into it).
A process is itself an event: other processes can wait for it to finish
and receive its return value.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.common.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:
    from repro.sim.engine import Engine

__all__ = ["Process"]


class Process(Event):
    """A running simulation process.

    Parameters
    ----------
    engine:
        The owning engine.
    generator:
        A generator that yields :class:`~repro.sim.events.Event`
        instances.  Its ``return`` value becomes the process's value.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, engine: "Engine", generator: Generator[Event, Any, Any]) -> None:
        super().__init__(engine)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        self._generator = generator
        self._waiting_on: Event | None = None
        bootstrap = Event(engine)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the process has not yet finished."""
        return not self.triggered

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self._waiting_on = None
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                event.defuse()
                target = self._generator.throw(event.exception)  # type: ignore[arg-type]
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return

        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process yielded {type(target).__name__}, expected Event"
                )
            )
            return
        if target.engine is not self.engine:
            self.fail(SimulationError("process yielded an event from another engine"))
            return

        self._waiting_on = target
        if target.processed:
            # The event already ran its callbacks; resume on a fresh
            # zero-delay event carrying the same outcome so ordering
            # stays strictly agenda-driven.
            relay = Event(self.engine)
            relay.callbacks.append(self._resume)
            if target.exception is None:
                relay.succeed(target.value)
            else:
                relay.fail(target.exception)
        else:
            target.callbacks.append(self._resume)
