"""The discrete-event engine.

The engine owns the simulation clock (integer microseconds) and the
agenda — a priority queue of triggered events.  Ties at the same
timestamp are broken by insertion order, which keeps runs deterministic.

``Engine`` is the *scalar* kernel: every occurrence is a Python
:class:`~repro.sim.events.Event` popped one at a time.  The vector
kernel (:class:`repro.sim.vector.VectorEngine`) extends it with a
numpy event calendar for high-volume typed events while reusing this
agenda for everything else; both kernels share the global
``(timestamp, sequence)`` ordering contract, which is what makes their
runs byte-identical.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator

from repro.common.errors import SimulationError
from repro.common.timebase import Micros
from repro.sim.events import Event, Timeout
from repro.sim.process import Process

__all__ = ["Engine"]

_heappush = heapq.heappush
_heappop = heapq.heappop


class Engine:
    """Discrete-event simulation engine.

    Examples
    --------
    >>> engine = Engine()
    >>> def hello():
    ...     yield engine.timeout(1_000)
    ...     return "done"
    >>> proc = engine.process(hello())
    >>> engine.run()
    >>> proc.value
    'done'
    """

    __slots__ = ("_now", "_agenda", "_sequence", "_running")

    #: Kernel name; the vector kernel overrides this.
    kernel = "scalar"

    def __init__(self) -> None:
        self._now: Micros = 0
        self._agenda: list[tuple[Micros, int, Event]] = []
        self._sequence = 0
        self._running = False

    @property
    def now(self) -> Micros:
        """Current simulation time in microseconds."""
        return self._now

    def _alloc_seq(self) -> int:
        """Claim the next agenda sequence number (kernel use only).

        Tie-breaking is global across everything the engine orders —
        scalar events *and* (in the vector kernel) calendar rows — so
        every schedulable occurrence must draw from this one counter.
        """
        sequence = self._sequence
        self._sequence = sequence + 1
        return sequence

    def _schedule(self, event: Event, delay: Micros = 0) -> None:
        """Place a triggered event on the agenda (kernel use only)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        # One tuple per entry is forced by heapq's API, but the hot
        # path stays free of repeated attribute loads: one read of the
        # agenda and counter, one write back.
        sequence = self._sequence
        self._sequence = sequence + 1
        _heappush(self._agenda, (self._now + delay, sequence, event))

    def event(self) -> Event:
        """Create a fresh, untriggered event bound to this engine."""
        return Event(self)

    def timeout(self, delay: Micros, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` microseconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator)

    def peek(self) -> Micros | None:
        """Timestamp of the next agenda entry, or ``None`` if empty."""
        if not self._agenda:
            return None
        return self._agenda[0][0]

    def step(self) -> None:
        """Process the single next event on the agenda."""
        if not self._agenda:
            raise SimulationError("agenda is empty")
        timestamp, _, event = _heappop(self._agenda)
        if timestamp < self._now:
            raise SimulationError("agenda went backwards in time")
        self._now = timestamp
        event._process()

    def run(self, until: Micros | None = None) -> None:
        """Run until the agenda drains or the clock reaches ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the last event fires earlier, so utilization
        integrals cover the whole requested horizon.
        """
        if self._running:
            raise SimulationError("engine is already running (no reentrant run)")
        self._running = True
        try:
            # Inlined pop loop: peeking and popping through step() costs
            # an extra method call plus double head indexing per event,
            # which is measurable at millions of events (the
            # scalar-kernel micro-bench in test_kernel_throughput.py
            # guards this fast path against regressing to step() rate).
            agenda = self._agenda
            while agenda:
                if until is not None and agenda[0][0] > until:
                    break
                timestamp, _, event = _heappop(agenda)
                self._now = timestamp
                event._process()
            if until is not None:
                if until < self._now:
                    raise SimulationError(
                        f"run(until={until}) is in the past (now={self._now})"
                    )
                self._now = until
        finally:
            self._running = False
