"""The vector kernel: a batched event-calendar for million-user scale.

The scalar :class:`~repro.sim.engine.Engine` pays Python-object prices
per occurrence — a :class:`~repro.sim.events.Event`, a heap tuple, a
generator resume.  At a few hundred emulated users that is fine; at
hundreds of thousands the client's think-timer churn alone dominates
the run.  This module provides the batched substrate:

* :class:`EventCalendar` — the agenda as a numpy structured array
  (``time``, ``seq``, ``code``, ``slot``), pushed and popped in blocks.
  Global ordering is the same ``(timestamp, sequence)`` contract the
  scalar agenda uses, so the two kernels interleave identically.
* :class:`VectorEngine` — an :class:`~repro.sim.engine.Engine` whose
  agenda is the classic heap *plus* a calendar of typed rows.  Scalar
  components (tier servers, faults, monitors) run unchanged; vector
  components (the flat client) schedule calendar rows instead of
  allocating ``Timeout``/``Process`` objects.  Sequence numbers come
  from the engine's one counter, which is what makes a
  ``kernel="vector"`` run dump-identical to ``kernel="scalar"``.
* :class:`TrafficGenerator` — open-loop traffic generation for
  capacity analysis: per-user think loops swept in numpy blocks with
  per-tier service-time draws from :class:`~repro.common.rng.RngStreams`
  substreams, and array-typed per-tier state (in-flight request
  tables, busy-server counts, queue depths).  This is the
  million-user fast path; it reports offered load, it does not emit
  monitor logs (the closed-loop system does that).
"""

from __future__ import annotations

import dataclasses
import heapq

import numpy as np

from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import RngStreams
from repro.common.timebase import Micros, US_PER_SEC
from repro.sim.engine import Engine

__all__ = [
    "EVENT_DTYPE",
    "EventCalendar",
    "VectorEngine",
    "TierLoad",
    "TrafficReport",
    "TrafficGenerator",
]

#: One calendar row: fire time, global tie-break sequence, the typed
#: channel the row belongs to, and a channel-defined payload slot
#: (for the flat client: the user index).
EVENT_DTYPE = np.dtype(
    [("time", np.int64), ("seq", np.int64), ("code", np.int32), ("slot", np.int64)]
)

_EMPTY = np.empty(0, dtype=EVENT_DTYPE)

#: A key greater than every real ``(time, seq)`` agenda key.
FAR_FUTURE = (np.iinfo(np.int64).max, np.iinfo(np.int64).max)


def _sort_rows(rows: np.ndarray) -> np.ndarray:
    """Rows ordered by the global agenda key ``(time, seq)``."""
    order = np.lexsort((rows["seq"], rows["time"]))
    return rows[order]


class EventCalendar:
    """A sorted numpy agenda with lazy batch merging.

    Three regions hold the pending rows:

    * ``main`` — a sorted structured array consumed through a cursor;
    * ``pending`` — a smaller sorted array of recently settled pushes
      (merging here keeps each settle cheap while ``main`` is large);
    * an unsorted push ``buffer`` (plain Python lists) whose minimum
      key is tracked incrementally, so pops only pay for sorting when
      the clock actually reaches buffered work.

    Pops never allocate per-row Python objects: single pops advance
    cursors; block pops return array slices merged with one
    ``lexsort`` over just the due rows.
    """

    __slots__ = (
        "_main",
        "_mi",
        "_pending",
        "_pi",
        "_buf_time",
        "_buf_seq",
        "_buf_code",
        "_buf_slot",
        "_buf_min",
    )

    def __init__(self) -> None:
        self._main = _EMPTY
        self._mi = 0
        self._pending = _EMPTY
        self._pi = 0
        self._buf_time: list[int] = []
        self._buf_seq: list[int] = []
        self._buf_code: list[int] = []
        self._buf_slot: list[int] = []
        self._buf_min = FAR_FUTURE

    def __len__(self) -> int:
        return (
            (len(self._main) - self._mi)
            + (len(self._pending) - self._pi)
            + len(self._buf_time)
        )

    # ------------------------------------------------------------------
    # pushes

    def push(self, time: int, seq: int, code: int, slot: int) -> None:
        """Schedule one row (buffered; sorted lazily on demand)."""
        self._buf_time.append(time)
        self._buf_seq.append(seq)
        self._buf_code.append(code)
        self._buf_slot.append(slot)
        if (time, seq) < self._buf_min:
            self._buf_min = (time, seq)

    def push_block(
        self,
        times: np.ndarray,
        seqs: np.ndarray,
        codes: np.ndarray,
        slots: np.ndarray,
    ) -> None:
        """Schedule a block of rows in one call (vector fast path)."""
        if len(times) == 0:
            return
        block = np.empty(len(times), dtype=EVENT_DTYPE)
        block["time"] = times
        block["seq"] = seqs
        block["code"] = codes
        block["slot"] = slots
        block = _sort_rows(block)
        self._merge_pending(block)

    # ------------------------------------------------------------------
    # internal settling

    def _settle_buffer(self) -> None:
        """Sort the push buffer and merge it into ``pending``."""
        if not self._buf_time:
            return
        block = np.empty(len(self._buf_time), dtype=EVENT_DTYPE)
        block["time"] = self._buf_time
        block["seq"] = self._buf_seq
        block["code"] = self._buf_code
        block["slot"] = self._buf_slot
        self._buf_time.clear()
        self._buf_seq.clear()
        self._buf_code.clear()
        self._buf_slot.clear()
        self._buf_min = FAR_FUTURE
        self._merge_pending(_sort_rows(block))

    def _merge_pending(self, block: np.ndarray) -> None:
        pending = self._pending[self._pi :]
        self._pi = 0
        if len(pending):
            block = _sort_rows(np.concatenate((pending, block)))
        remaining_main = len(self._main) - self._mi
        if remaining_main == 0:
            # Epoch sweeps drain main completely between pushes; the
            # settled block becomes the new main run with no re-sort.
            self._main = block
            self._mi = 0
            self._pending = _EMPTY
            return
        self._pending = block
        # Once the recent-push region outgrows what is left of main,
        # fold everything into one sorted run so pops stay two-way.
        if len(self._pending) > max(64, remaining_main):
            self._compact()

    def _compact(self) -> None:
        main = self._main[self._mi :]
        pending = self._pending[self._pi :]
        self._main = _sort_rows(np.concatenate((main, pending)))
        self._mi = 0
        self._pending = _EMPTY
        self._pi = 0

    # ------------------------------------------------------------------
    # pops

    def _head_key(self, region: np.ndarray, cursor: int) -> tuple[int, int]:
        if cursor >= len(region):
            return FAR_FUTURE
        row = region[cursor]
        return (int(row["time"]), int(row["seq"]))

    def peek(self) -> "tuple[int, int] | None":
        """Smallest ``(time, seq)`` key, or ``None`` when empty."""
        best = min(self._head_key(self._main, self._mi),
                   self._head_key(self._pending, self._pi))
        if self._buf_min < best:
            self._settle_buffer()
            best = min(self._head_key(self._main, self._mi),
                       self._head_key(self._pending, self._pi))
        if best == FAR_FUTURE:
            return None
        return best

    def pop_next(self) -> "tuple[int, int, int, int] | None":
        """Pop the single earliest row as ``(time, seq, code, slot)``."""
        if self.peek() is None:
            return None
        main_key = self._head_key(self._main, self._mi)
        pending_key = self._head_key(self._pending, self._pi)
        if main_key <= pending_key:
            row = self._main[self._mi]
            self._mi += 1
        else:
            row = self._pending[self._pi]
            self._pi += 1
        return (int(row["time"]), int(row["seq"]), int(row["code"]), int(row["slot"]))

    def pop_before(self, time: int, seq: int = 0) -> np.ndarray:
        """Pop every row with key strictly below ``(time, seq)``.

        Returns the due rows globally sorted.  Only the due slices are
        merged, so a sweep over a million-row calendar pays for the
        rows it fires, not the rows it keeps.
        """
        if self._buf_min < (time, seq):
            self._settle_buffer()
        main_due = self._due_slice(self._main, self._mi, time, seq)
        self._mi += len(main_due)
        pending_due = self._due_slice(self._pending, self._pi, time, seq)
        self._pi += len(pending_due)
        if len(pending_due) == 0:
            return main_due
        if len(main_due) == 0:
            return pending_due
        return _sort_rows(np.concatenate((main_due, pending_due)))

    @staticmethod
    def _due_slice(
        region: np.ndarray, cursor: int, time: int, seq: int
    ) -> np.ndarray:
        live = region[cursor:]
        split = int(np.searchsorted(live["time"], time, side="left"))
        # Rows at exactly `time` are due only while their seq < seq.
        boundary = int(np.searchsorted(live["time"], time, side="right"))
        if split < boundary and seq > 0:
            split += int(
                np.searchsorted(live["seq"][split:boundary], seq, side="left")
            )
        return live[:split]


class VectorEngine(Engine):
    """An engine whose agenda is the scalar heap plus an event calendar.

    Vector-aware components register a *channel* (an integer code and a
    ``handler(time, slot)``) and schedule rows through
    :meth:`schedule_row`; everything else uses the inherited scalar
    machinery untouched.  The run loop interleaves heap events and
    calendar rows by their global ``(time, seq)`` key, so determinism
    — and therefore monitor-log identity with a scalar run — holds by
    construction rather than by test luck.
    """

    __slots__ = ("calendar", "_handlers")

    #: Kernel name, mirrored into :class:`SystemConfig.kernel` checks.
    kernel = "vector"

    def __init__(self) -> None:
        super().__init__()
        self.calendar = EventCalendar()
        self._handlers: dict[int, object] = {}

    def register_channel(self, code: int, handler) -> None:
        """Bind ``handler(time, slot)`` to calendar rows of ``code``."""
        if code in self._handlers:
            raise SimulationError(f"calendar channel {code} already registered")
        self._handlers[int(code)] = handler

    def schedule_row(self, code: int, slot: int, delay: Micros = 0) -> None:
        """Schedule one typed calendar row ``delay`` µs from now.

        Draws from the same sequence counter as scalar events, so a
        row occupies exactly the agenda position the equivalent
        ``Timeout`` would have.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        self.calendar.push(self._now + delay, self._alloc_seq(), code, slot)

    def run(self, until: Micros | None = None) -> None:
        """Run heap events and calendar rows in global key order."""
        if self._running:
            raise SimulationError("engine is already running (no reentrant run)")
        self._running = True
        try:
            agenda = self._agenda
            calendar = self.calendar
            handlers = self._handlers
            heappop = heapq.heappop
            while True:
                cal_key = calendar.peek()
                heap_key = (agenda[0][0], agenda[0][1]) if agenda else None
                if cal_key is None and heap_key is None:
                    break
                # A handler may schedule new heap events at the current
                # timestamp, so rows are popped one at a time with the
                # heap head re-checked in between — block pops are for
                # pure-calendar sweeps (TrafficGenerator), where no
                # foreign events can interleave.
                if cal_key is not None and (heap_key is None or cal_key < heap_key):
                    if until is not None and cal_key[0] > until:
                        break
                    time, _seq, code, slot = calendar.pop_next()
                    self._now = time
                    handlers[code](time, slot)
                else:
                    if until is not None and heap_key[0] > until:
                        break
                    timestamp, _, event = heappop(agenda)
                    self._now = timestamp
                    event._process()
            if until is not None:
                if until < self._now:
                    raise SimulationError(
                        f"run(until={until}) is in the past (now={self._now})"
                    )
                self._now = until
        finally:
            self._running = False


# ----------------------------------------------------------------------
# Open-loop traffic generation (the million-user fast path)


@dataclasses.dataclass(slots=True)
class TierLoad:
    """Array-typed offered-load state of one tier.

    ``entry``/``exit`` are the in-flight request table (one row per
    generated request, µs); ``busy`` is the in-flight count sampled at
    every admission edge (paired with ``busy_times``; the count only
    rises at admissions, so peaks are never missed); queue depth clips
    busy against the configured worker pool.
    """

    tier: str
    workers: int
    entry: np.ndarray
    exit: np.ndarray
    busy_times: np.ndarray
    busy: np.ndarray

    @property
    def peak_in_flight(self) -> int:
        """Maximum simultaneous in-flight requests."""
        return int(self.busy.max()) if len(self.busy) else 0

    @property
    def peak_queue_depth(self) -> int:
        """Peak overflow past the worker pool (0 = never saturated)."""
        return max(0, self.peak_in_flight - self.workers)

    def offered_utilization(self, horizon_us: Micros) -> float:
        """Offered busy-time as a fraction of pool capacity."""
        if horizon_us <= 0:
            return 0.0
        busy_us = float((self.exit - self.entry).sum())
        return busy_us / (float(horizon_us) * self.workers)

    @property
    def saturated(self) -> bool:
        """Whether offered load ever exceeded the worker pool."""
        return self.peak_queue_depth > 0


@dataclasses.dataclass(slots=True)
class TrafficReport:
    """Everything one open-loop generation run produced."""

    users: int
    horizon_us: Micros
    #: Request launch times (µs, sorted) and the launching user.
    arrival_times: np.ndarray
    arrival_users: np.ndarray
    #: Index into the mix's profile list, per arrival.
    arrival_interactions: np.ndarray
    #: Calendar events processed (timer pops + pushes).
    events: int
    tiers: dict[str, TierLoad]

    @property
    def arrivals(self) -> int:
        """Number of generated requests."""
        return len(self.arrival_times)

    def arrival_rate_per_sec(self) -> float:
        """Offered request rate over the horizon."""
        if self.horizon_us <= 0:
            return 0.0
        return self.arrivals * US_PER_SEC / float(self.horizon_us)

    def to_dict(self) -> dict:
        """Deterministic summary (no wall-clock)."""
        return {
            "users": self.users,
            "horizon_us": int(self.horizon_us),
            "arrivals": self.arrivals,
            "arrival_rate_per_sec": round(self.arrival_rate_per_sec(), 3),
            "tiers": {
                name: {
                    "workers": load.workers,
                    "peak_in_flight": load.peak_in_flight,
                    "peak_queue_depth": load.peak_queue_depth,
                    "offered_utilization": round(
                        load.offered_utilization(self.horizon_us), 4
                    ),
                    "saturated": load.saturated,
                }
                for name, load in sorted(self.tiers.items())
            },
        }


class TrafficGenerator:
    """Open-loop million-user traffic generation on a dense timer bank.

    Each emulated user alternates exponential think time with one
    interaction from the mix, exactly like the closed-loop client —
    but the sweep is batched: every user owns exactly one pending
    think-timer, so instead of a sorted calendar the generator keeps a
    dense per-user next-wake array and selects due users with one mask
    comparison per round (the sorted :class:`EventCalendar` is the
    substrate for :class:`VectorEngine`, where heterogeneous events
    interleave and global order matters).  Think times and interaction
    choices are drawn in blocks from named
    :class:`~repro.common.rng.RngStreams` substreams
    (``vector.think``, ``vector.ramp``, ``vector.mix``,
    ``vector.<tier>.service``), and per-tier service demands propagate
    through array-typed tier state.  Open loop means no backpressure:
    the report says what load the users *offer* and where it exceeds
    the configured pools, which is the capacity question a
    million-user run asks.  Closed-loop dynamics (and monitor logs)
    remain the n-tier system's job.
    """

    #: Calendar channel code for user think-timers.
    WAKE = 1

    def __init__(
        self,
        workload,
        seed: int = 1,
        tier_workers: "dict[str, int] | None" = None,
        network_latency_us: Micros = 150,
    ) -> None:
        workload.validate()
        if workload.session_model != "weighted":
            raise ConfigError(
                "open-loop traffic generation supports the weighted session "
                "model (markov sessions are inherently sequential)"
            )
        self.workload = workload
        self.seed = int(seed)
        self.network_latency_us = int(network_latency_us)
        self.streams = RngStreams(seed)
        self.mix = workload.build_mix()
        profiles = self.mix.profiles
        self._weights = np.cumsum(
            np.array([p.weight for p in profiles], dtype=np.float64)
        )
        self._weights /= self._weights[-1]
        if tier_workers is None:
            from repro.ntier.system import default_tier_configs

            tier_workers = {
                tier: cfg.workers for tier, cfg in default_tier_configs().items()
            }
        self.tier_workers = dict(tier_workers)
        # Deterministic per-interaction demand tables (µs per tier).
        self._apache_us = np.array(
            [p.apache_cpu_us for p in profiles], dtype=np.int64
        )
        self._tomcat_us = np.array(
            [p.tomcat_cpu_us for p in profiles], dtype=np.int64
        )
        self._cjdbc_us = np.array(
            [sum(q.cjdbc_cpu_us for q in p.queries) for p in profiles],
            dtype=np.int64,
        )
        self._mysql_us = np.array(
            [sum(q.mysql_cpu_us for q in p.queries) for p in profiles],
            dtype=np.int64,
        )
        # The stochastic MySQL part: per-interaction query tables for
        # block bernoulli miss draws (disk fetch) plus write commits,
        # priced at the default Disk parameters (seek + bandwidth).
        def disk_us(nbytes: int) -> int:
            return 200 + (nbytes * US_PER_SEC) // (100 * 1024 * 1024)

        self._query_tables = []
        for p in profiles:
            rows = [
                (
                    float(q.miss_ratio),
                    disk_us(q.read_bytes),
                    disk_us(q.commit_bytes) if q.is_write else 0,
                )
                for q in p.queries
            ]
            self._query_tables.append(rows)

    def generate(
        self,
        horizon_us: Micros,
        epoch_us: "Micros | None" = None,
        max_arrivals: "int | None" = None,
        analyze_tiers: bool = True,
    ) -> TrafficReport:
        """Sweep the user population over ``horizon_us`` of traffic.

        ``epoch_us`` sets the sweep granularity (default: one mean
        think time, clamped to keep batches fat); ``max_arrivals``
        caps output for bounded-memory smoke runs — when it trips, the
        report's horizon shrinks to the last fully swept epoch.
        ``analyze_tiers=False`` skips the per-tier load resolution and
        returns an empty ``tiers`` map — the pure event-sweep mode the
        kernel throughput benchmark times.
        """
        users = self.workload.users
        think_us = max(1, int(self.workload.think_time_us))
        if epoch_us is None:
            epoch_us = max(1_000, min(int(horizon_us), think_us))
        think_rng = self.streams.block_generator("vector.think")
        ramp_rng = self.streams.block_generator("vector.ramp")
        mix_rng = self.streams.block_generator("vector.mix")

        # Dense timer bank: one pending wake per user.  Open-loop users
        # never have two outstanding timers, so "pop everything due
        # before the barrier" is a single mask compare — no sort, no
        # heap, no calendar merge on the hot path.
        if self.workload.ramp_up_us > 0:
            next_wake = (
                ramp_rng.random(users) * float(self.workload.ramp_up_us)
            ).astype(np.int64)
        else:
            next_wake = np.zeros(users, dtype=np.int64)
        events = users

        out_times: list[np.ndarray] = []
        out_users: list[np.ndarray] = []
        out_codes: list[np.ndarray] = []
        total = 0
        now = 0
        swept = 0
        truncated = False
        while now < horizon_us and not truncated:
            barrier = min(int(horizon_us), now + int(epoch_us))
            # Drain the epoch completely: a short think draw can land a
            # user's next wake *inside* the current epoch, so keep
            # selecting until nothing is due before the barrier
            # (rethink is >= 1 µs, so each round strictly advances
            # every due user).
            while not truncated:
                due = np.flatnonzero(next_wake < barrier)
                k = len(due)
                if k == 0:
                    break
                events += k
                fire_times = next_wake[due]
                # Each firing is one launched request...
                choice = np.searchsorted(
                    self._weights, mix_rng.random(k), side="right"
                ).astype(np.int64)
                out_times.append(fire_times)
                out_users.append(due)
                out_codes.append(choice)
                total += k
                if max_arrivals is not None and total >= max_arrivals:
                    truncated = True
                # ...followed by the next think sleep (min 1 µs so a
                # user cannot fire twice at one timestamp).
                rethink = (
                    think_rng.exponential(float(think_us), k).astype(np.int64) + 1
                )
                next_wake[due] = fire_times + rethink
                events += k
            now = barrier
            swept = barrier

        if out_times:
            times = np.concatenate(out_times)
            users_arr = np.concatenate(out_users)
            codes_arr = np.concatenate(out_codes)
            # Canonical arrival order: time-major, user tie-break (the
            # drain loop emits intra-epoch catch-up batches out of
            # order; radix-based lexsort restores the global order).
            order = np.lexsort((users_arr, times))
            times = times[order]
            users_arr = users_arr[order]
            codes_arr = codes_arr[order]
        else:
            times = np.empty(0, dtype=np.int64)
            users_arr = np.empty(0, dtype=np.int64)
            codes_arr = np.empty(0, dtype=np.int64)
        report_horizon = swept if swept else int(horizon_us)
        if analyze_tiers:
            tiers = self._tier_loads(times, codes_arr, report_horizon)
        else:
            tiers = {}
        return TrafficReport(
            users=users,
            horizon_us=report_horizon,
            arrival_times=times,
            arrival_users=users_arr,
            arrival_interactions=codes_arr,
            events=events,
            tiers=tiers,
        )

    # ------------------------------------------------------------------
    # per-tier offered load

    def _mysql_service_block(
        self, codes: np.ndarray, rng
    ) -> np.ndarray:
        """Per-request MySQL demand with block bernoulli miss draws."""
        service = self._mysql_us[codes].astype(np.int64)
        for index, rows in enumerate(self._query_tables):
            members = np.flatnonzero(codes == index)
            if len(members) == 0:
                continue
            extra = np.zeros(len(members), dtype=np.int64)
            for miss_ratio, read_us, commit_us in rows:
                if miss_ratio > 0 and read_us > 0:
                    extra += np.where(
                        rng.random(len(members)) < miss_ratio, read_us, 0
                    )
                extra += commit_us
            service[members] += extra
        return service

    def _tier_loads(
        self, times: np.ndarray, codes: np.ndarray, horizon_us: Micros
    ) -> dict[str, TierLoad]:
        from repro.ntier.tiers import TIER_ORDER

        service_rng = self.streams.block_generator("vector.mysql.service")
        hop = self.network_latency_us
        service = {
            "apache": self._apache_us[codes],
            "tomcat": self._tomcat_us[codes],
            "cjdbc": self._cjdbc_us[codes],
            "mysql": self._mysql_service_block(codes, service_rng),
        }
        # Entry times: one network hop per level of the tier chain.
        entries: dict[str, np.ndarray] = {}
        entry = times.astype(np.int64)
        for tier in TIER_ORDER:
            entry = entry + hop
            entries[tier] = entry
        # A tier holds a request from its own entry until its reply
        # returns: local service, the hop down, the whole downstream
        # residency, and the hop back.  Resolve innermost-first.
        exits: dict[str, np.ndarray] = {}
        downstream_residency: "np.ndarray | None" = None
        for tier in reversed(TIER_ORDER):
            residency = service[tier].astype(np.int64)
            if downstream_residency is not None:
                residency = residency + 2 * hop + downstream_residency
            exits[tier] = entries[tier] + residency
            downstream_residency = residency
        resolved: dict[str, TierLoad] = {}
        for tier in TIER_ORDER:
            busy_times, busy = _concurrency_series(entries[tier], exits[tier])
            resolved[tier] = TierLoad(
                tier=tier,
                workers=int(self.tier_workers.get(tier, 1)),
                entry=entries[tier],
                exit=exits[tier],
                busy_times=busy_times,
                busy=busy,
            )
        return resolved


def _concurrency_series(
    entry: np.ndarray, exit_: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorized in-flight count sampled at every admission.

    The count only rises at admissions, so sampling there captures
    every peak.  Counting departures with ``side="right"`` makes an
    exit at the same timestamp free its server before the simultaneous
    arrival is admitted.  ``kind="stable"`` selects numpy's radix sort
    for the int64 edge arrays — O(n), which keeps million-request
    tables cheap (an explicit +1/−1 edge walk profiles ~6× slower).
    """
    if len(entry) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    starts = np.sort(entry, kind="stable")
    ends = np.sort(exit_, kind="stable")
    departed = np.searchsorted(ends, starts, side="right")
    busy = np.arange(1, len(starts) + 1, dtype=np.int64) - departed
    return starts, busy
