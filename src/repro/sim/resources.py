"""Shared-resource primitives: multi-server queues and message stores.

:class:`Resource` models a pool of identical servers (worker threads,
CPU cores, a disk's single service channel) with a priority-FIFO wait
queue.  :class:`Store` is an unbounded FIFO of messages with blocking
``get`` — the building block for accept queues and the inter-tier
message bus.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.common.errors import SimulationError
from repro.common.timebase import Micros
from repro.sim.events import Event
from repro.sim.tracking import StepSeries

if TYPE_CHECKING:
    from repro.sim.engine import Engine

__all__ = ["Resource", "Acquire", "Store"]


class Acquire(Event):
    """A pending or granted claim on one server of a :class:`Resource`."""

    __slots__ = ("resource", "priority", "requested_at", "granted_at")

    def __init__(self, resource: "Resource", priority: int) -> None:
        super().__init__(resource.engine)
        self.resource = resource
        self.priority = priority
        self.requested_at: Micros = resource.engine.now
        self.granted_at: Micros | None = None

    def wait_time(self) -> Micros:
        """Queueing delay experienced before the claim was granted."""
        if self.granted_at is None:
            raise SimulationError("claim has not been granted yet")
        return self.granted_at - self.requested_at


class Resource:
    """A pool of ``capacity`` identical servers with a priority wait queue.

    Lower ``priority`` values are served first; ties are FIFO.  Busy
    counts and wait-queue lengths are tracked as
    :class:`~repro.sim.tracking.StepSeries` for utilization sampling.

    Examples
    --------
    >>> # inside a process generator:
    >>> # claim = resource.acquire()
    >>> # yield claim
    >>> # ... use the server ...
    >>> # resource.release(claim)
    """

    __slots__ = (
        "engine",
        "capacity",
        "name",
        "busy_series",
        "queue_series",
        "_users",
        "_waiting",
        "_sequence",
    )

    def __init__(self, engine: "Engine", capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1: {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.busy_series = StepSeries(initial=0)
        self.queue_series = StepSeries(initial=0)
        self._users: set[Acquire] = set()
        self._waiting: list[tuple[int, int, Acquire]] = []
        self._sequence = 0

    @property
    def in_use(self) -> int:
        """Number of servers currently held."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of claims waiting for a server."""
        return len(self._waiting)

    def acquire(self, priority: int = 0) -> Acquire:
        """Claim one server; the returned event fires when granted."""
        claim = Acquire(self, priority)
        if len(self._users) < self.capacity:
            self._grant(claim)
        else:
            heapq.heappush(self._waiting, (priority, self._sequence, claim))
            self._sequence += 1
            self.queue_series.record(self.engine.now, len(self._waiting))
        return claim

    def release(self, claim: Acquire) -> None:
        """Return the server held by ``claim`` and admit the next waiter."""
        if claim not in self._users:
            raise SimulationError(f"claim does not hold a server of {self.name!r}")
        self._users.discard(claim)
        self.busy_series.record(self.engine.now, len(self._users))
        if self._waiting:
            _, _, next_claim = heapq.heappop(self._waiting)
            self.queue_series.record(self.engine.now, len(self._waiting))
            self._grant(next_claim)

    def _grant(self, claim: Acquire) -> None:
        self._users.add(claim)
        claim.granted_at = self.engine.now
        self.busy_series.record(self.engine.now, len(self._users))
        claim.succeed(claim)

    def utilization(self, start: Micros, stop: Micros) -> float:
        """Fraction of total server capacity busy over ``[start, stop)``."""
        if stop <= start:
            raise SimulationError(f"utilization window empty: [{start}, {stop})")
        busy = self.busy_series.integral(start, stop)
        return busy / ((stop - start) * self.capacity)


class Store:
    """An unbounded FIFO message queue with blocking ``get``.

    Items put while getters wait are handed over immediately (FIFO on
    both sides); otherwise they buffer.  The buffer length is tracked
    as a :class:`~repro.sim.tracking.StepSeries`.
    """

    __slots__ = ("engine", "name", "_items", "_getters", "length_series")

    def __init__(self, engine: "Engine", name: str = "store") -> None:
        self.engine = engine
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.length_series = StepSeries(initial=0)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)
        self.length_series.record(self.engine.now, len(self._items))

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        event = Event(self.engine)
        if self._items:
            item = self._items.popleft()
            self.length_series.record(self.engine.now, len(self._items))
            event.succeed(item)
        else:
            self._getters.append(event)
        return event
