"""Uniform time series and alignment utilities for analysis.

Analysis routines exchange :class:`Series` — a pair of numpy arrays
(timestamps in microseconds, float values) — whether the data came from
simulator ground truth or from warehouse tables.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

import numpy as np

from repro.common.errors import AnalysisError
from repro.common.timebase import Micros

__all__ = ["Series", "pearson_correlation"]


@dataclasses.dataclass(slots=True)
class Series:
    """A time series: sorted microsecond timestamps and float values."""

    times: np.ndarray
    values: np.ndarray

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, float]]) -> "Series":
        """Build a series from ``(time, value)`` pairs (sorted by time)."""
        items = sorted(pairs)
        if not items:
            return cls(np.array([], dtype=np.int64), np.array([], dtype=float))
        times, values = zip(*items)
        return cls(np.asarray(times, dtype=np.int64), np.asarray(values, dtype=float))

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=float)
        if self.times.shape != self.values.shape:
            raise AnalysisError("series times/values length mismatch")
        if len(self.times) > 1 and np.any(np.diff(self.times) < 0):
            raise AnalysisError("series timestamps must be sorted")

    def __len__(self) -> int:
        return len(self.times)

    def is_empty(self) -> bool:
        return len(self.times) == 0

    def window(self, start: Micros, stop: Micros) -> "Series":
        """The sub-series with ``start <= t < stop``."""
        mask = (self.times >= start) & (self.times < stop)
        return Series(self.times[mask], self.values[mask])

    def max(self) -> float:
        """Maximum value (0.0 for an empty series)."""
        return float(self.values.max()) if len(self) else 0.0

    def mean(self) -> float:
        """Arithmetic mean (0.0 for an empty series)."""
        return float(self.values.mean()) if len(self) else 0.0

    def value_at(self, time: Micros) -> float:
        """Step interpolation: the last value at or before ``time``."""
        if self.is_empty():
            raise AnalysisError("cannot interpolate an empty series")
        index = int(np.searchsorted(self.times, time, side="right")) - 1
        if index < 0:
            return float(self.values[0])
        return float(self.values[index])

    def resample(self, grid: Sequence[Micros]) -> "Series":
        """Step-interpolate onto an explicit grid."""
        grid_arr = np.asarray(list(grid), dtype=np.int64)
        indices = np.searchsorted(self.times, grid_arr, side="right") - 1
        indices = np.clip(indices, 0, len(self.times) - 1)
        return Series(grid_arr, self.values[indices])


def pearson_correlation(a: Series, b: Series) -> float:
    """Pearson r between two series, step-aligned on ``a``'s grid.

    Raises :class:`AnalysisError` when either series is too short or
    constant (correlation undefined).
    """
    if len(a) < 3 or len(b) < 3:
        raise AnalysisError("need at least 3 points per series")
    aligned_b = b.resample(a.times)
    x = a.values
    y = aligned_b.values
    if float(np.std(x)) == 0.0 or float(np.std(y)) == 0.0:
        raise AnalysisError("correlation undefined for a constant series")
    return float(np.corrcoef(x, y)[0, 1])
