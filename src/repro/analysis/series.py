"""Uniform time series and alignment utilities for analysis.

Analysis routines exchange :class:`Series` — a pair of numpy arrays
(timestamps in microseconds, float values) — whether the data came from
simulator ground truth or from warehouse tables.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.common.errors import AnalysisError
from repro.common.timebase import Micros

__all__ = ["Series", "pearson_correlation"]


@dataclasses.dataclass(slots=True)
class Series:
    """A time series: sorted microsecond timestamps and float values."""

    times: np.ndarray
    values: np.ndarray

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, float]]) -> "Series":
        """Build a series from ``(time, value)`` pairs (sorted by time)."""
        items = sorted(pairs)
        if not items:
            return cls(np.array([], dtype=np.int64), np.array([], dtype=float))
        times, values = zip(*items)
        return cls(np.asarray(times, dtype=np.int64), np.asarray(values, dtype=float))

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=float)
        if self.times.shape != self.values.shape:
            raise AnalysisError("series times/values length mismatch")
        if len(self.times) > 1 and np.any(np.diff(self.times) < 0):
            raise AnalysisError("series timestamps must be sorted")

    def __len__(self) -> int:
        return len(self.times)

    def is_empty(self) -> bool:
        return len(self.times) == 0

    @classmethod
    def _from_sorted(cls, times: np.ndarray, values: np.ndarray) -> "Series":
        """Wrap arrays already known sorted/aligned, skipping validation.

        The slicing hot path: a diagnosis run takes thousands of
        window slices of already-validated series; re-running the
        O(n) ``__post_init__`` sortedness scan per slice would swamp
        the O(log n) slice itself.
        """
        series = object.__new__(cls)
        series.times = times
        series.values = values
        return series

    def _step_indices(self, times: np.ndarray) -> np.ndarray:
        """Step-interpolation kernel: index of the last sample at or
        before each query time (clamped to the first sample)."""
        indices = np.searchsorted(self.times, times, side="right") - 1
        return np.clip(indices, 0, len(self.times) - 1)

    def window(self, start: Micros, stop: Micros) -> "Series":
        """The sub-series with ``start <= t < stop``.

        Times are sorted, so the bounds come from two binary searches
        (O(log n)) and the result views the parent's arrays — no
        boolean mask, no copy.
        """
        lo = int(np.searchsorted(self.times, start, side="left"))
        hi = int(np.searchsorted(self.times, stop, side="left"))
        return Series._from_sorted(self.times[lo:hi], self.values[lo:hi])

    def max(self) -> float:
        """Maximum value (0.0 for an empty series)."""
        return float(self.values.max()) if len(self) else 0.0

    def mean(self) -> float:
        """Arithmetic mean (0.0 for an empty series)."""
        return float(self.values.mean()) if len(self) else 0.0

    def value_at(self, time: Micros) -> float:
        """Step interpolation: the last value at or before ``time``."""
        if self.is_empty():
            raise AnalysisError("cannot interpolate an empty series")
        index = self._step_indices(np.asarray(time, dtype=np.int64))
        return float(self.values[index])

    def resample(self, grid: Sequence[Micros]) -> "Series":
        """Step-interpolate onto an explicit (sorted) grid.

        The full constructor revalidates the caller-supplied grid —
        only :meth:`window`'s slices skip validation, because slices
        of a sorted array are sorted by construction.
        """
        grid_arr = np.asarray(list(grid), dtype=np.int64)
        return Series(grid_arr, self.values[self._step_indices(grid_arr)])


def pearson_correlation(
    a: Series,
    b: Series,
    resample: "Callable[[Series, np.ndarray], Series] | None" = None,
) -> float:
    """Pearson r between two series, step-aligned on ``a``'s grid.

    ``resample`` overrides how ``b`` is aligned onto ``a``'s grid —
    the :class:`~repro.analysis.cache.SeriesCache` passes its memoized
    kernel so repeated alignments of the same series are dict hits.

    Raises :class:`AnalysisError` when either series is too short or
    constant (correlation undefined).
    """
    if len(a) < 3 or len(b) < 3:
        raise AnalysisError("need at least 3 points per series")
    aligned_b = b.resample(a.times) if resample is None else resample(b, a.times)
    x = a.values
    y = aligned_b.values
    if float(np.std(x)) == 0.0 or float(np.std(y)) == 0.0:
        raise AnalysisError("correlation undefined for a constant series")
    return float(np.corrcoef(x, y)[0, 1])
