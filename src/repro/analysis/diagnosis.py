"""The end-to-end very-short-bottleneck diagnosis engine.

Automates the investigation the paper walks through manually in its
two illustrative scenarios:

1. find VLRT requests and cluster them into anomaly windows (Fig 2 /
   Fig 8a);
2. compute per-tier queue lengths from the event tables and identify
   cross-tier pushback — which tiers' queues amplified (Fig 6 / 8b);
3. pull every resource-metric candidate from the warehouse for the
   affected window, flag saturated ones, flag abrupt dirty-page drops,
   and correlate each with the front tier's queue (Fig 4, 7, 8c, 8d);
4. rank root causes by evidence strength.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.anomaly import (
    AnomalyWindow,
    cluster_anomaly_windows,
    detect_vlrt,
)
from repro.analysis.metrics import MetricCandidate, discover_candidates, metric_series
from repro.analysis.queues import tier_queue_lengths
from repro.analysis.response_time import (
    CompletionSample,
    completions_from_warehouse,
)
from repro.analysis.series import Series, pearson_correlation
from repro.common.errors import AnalysisError
from repro.common.timebase import Micros, ms
from repro.warehouse.db import MScopeDB

__all__ = ["QueueFinding", "RootCause", "DiagnosisReport", "Diagnoser"]


@dataclasses.dataclass(frozen=True, slots=True)
class QueueFinding:
    """One tier's queue behaviour inside an anomaly window."""

    tier: str
    peak_queue: float
    baseline_queue: float

    @property
    def amplification(self) -> float:
        """Peak over baseline (∞ ≈ large when the baseline is ~0)."""
        return self.peak_queue / max(self.baseline_queue, 0.5)


@dataclasses.dataclass(frozen=True, slots=True)
class RootCause:
    """One ranked root-cause hypothesis."""

    hostname: str
    kind: str
    label: str
    peak_value: float
    correlation: float | None
    score: float
    explanation: str
    #: Best cross-correlation lag of the front queue behind this
    #: metric (µs); positive = the metric led the queue (causal
    #: direction), ``None`` when the lag was not computable.
    lead_lag_us: int | None = None


@dataclasses.dataclass(slots=True)
class DiagnosisReport:
    """Everything milliScope concluded about one anomaly window."""

    window: AnomalyWindow
    queue_findings: list[QueueFinding]
    pushback_tiers: list[str]
    causes: list[RootCause]
    #: interaction name → (VLRT count, share of that interaction's
    #: traffic that went VLRT).  A skew toward one class of
    #: interactions is itself evidence: commit-blocking faults hit the
    #: writes, CPU faults hit everything.
    affected_interactions: dict[str, tuple[int, float]] = dataclasses.field(
        default_factory=dict
    )

    def primary_cause(self) -> RootCause | None:
        """The top-ranked root cause, if any evidence survived."""
        return self.causes[0] if self.causes else None

    def to_text(self) -> str:
        """A human-readable summary of the diagnosis."""
        lines = [
            f"Anomaly window [{self.window.start / 1e6:.3f}s, "
            f"{self.window.stop / 1e6:.3f}s]: {self.window.vlrt_count} VLRT "
            f"request(s), peak response {self.window.peak_response_ms:.1f} ms",
            "  Queue amplification by tier:",
        ]
        for finding in self.queue_findings:
            marker = " <-- pushback" if finding.tier in self.pushback_tiers else ""
            lines.append(
                f"    {finding.tier:8s} peak={finding.peak_queue:6.1f} "
                f"baseline={finding.baseline_queue:6.1f} "
                f"x{finding.amplification:5.1f}{marker}"
            )
        if self.affected_interactions:
            worst = sorted(
                self.affected_interactions.items(),
                key=lambda item: item[1][1],
                reverse=True,
            )[:4]
            rendered = ", ".join(
                f"{name} ({count} VLRT, {share * 100:.0f}% of its traffic)"
                for name, (count, share) in worst
            )
            lines.append(f"  Most affected interactions: {rendered}")
        if self.causes:
            lines.append("  Ranked root causes:")
            for index, cause in enumerate(self.causes, start=1):
                corr = (
                    f"r={cause.correlation:+.2f}"
                    if cause.correlation is not None
                    else "r=n/a"
                )
                lag = ""
                if cause.lead_lag_us is not None and cause.lead_lag_us > 0:
                    lag = f", led the queue by {cause.lead_lag_us / 1000:.0f} ms"
                lines.append(
                    f"    {index}. {cause.label} "
                    f"(peak {cause.peak_value:.1f}, {corr}{lag}, "
                    f"score {cause.score:.2f}) — {cause.explanation}"
                )
        else:
            lines.append("  No saturated resource found (inconclusive).")
        return "\n".join(lines)


class Diagnoser:
    """Diagnoses VSBs from a populated mScopeDB.

    Parameters
    ----------
    db:
        The warehouse holding event and resource tables.
    tier_tables:
        Tier → event-table mapping (defaults to the standard
        deployment's names).
    front_table:
        The first tier's event table, whose upstream pair defines
        response times.
    epoch_us:
        Epoch offset rebasing warehouse wall timestamps onto
        simulation time zero.
    """

    #: A metric is "saturated" above this value (percent).
    saturation_threshold = 80.0
    #: Hypervisor steal is devastating far below full saturation.
    steal_threshold = 30.0
    #: A dirty-page drop counts when the level falls by this fraction.
    dirty_drop_fraction = 0.4
    #: ... and only when the level was at least this high (Collectl
    #: reports Dirty in KB; drops of a few hundred KB are log-buffer
    #: noise, not page-cache recycling).
    dirty_min_level_kb = 8 * 1024

    def __init__(
        self,
        db: MScopeDB,
        tier_tables: dict[str, str] | None = None,
        front_table: str = "apache_events_web1",
        epoch_us: int = 0,
    ) -> None:
        from repro.analysis.causal import DEFAULT_EVENT_TABLES

        self.db = db
        requested = tier_tables or dict(DEFAULT_EVENT_TABLES)
        present = set(db.tables())
        # Not every deployment instruments every tier; analyze what
        # actually loaded.
        self.tier_tables = {
            tier: table for tier, table in requested.items() if table in present
        }
        if front_table not in present:
            raise AnalysisError(
                f"front event table {front_table!r} is not in the warehouse"
            )
        if not self.tier_tables:
            raise AnalysisError("no tier event tables found in the warehouse")
        self.front_table = front_table
        self.epoch_us = epoch_us

    # ------------------------------------------------------------------

    def diagnose(
        self,
        threshold_factor: float = 10.0,
        min_response_ms: float = 50.0,
        queue_step_us: Micros = ms(10),
    ) -> list[DiagnosisReport]:
        """Run the full pipeline; one report per anomaly window."""
        completions = completions_from_warehouse(
            self.db, self.front_table, self.epoch_us
        )
        if not completions:
            raise AnalysisError(f"no completions in {self.front_table!r}")
        vlrts = detect_vlrt(completions, threshold_factor, min_response_ms)
        windows = cluster_anomaly_windows(vlrts)
        candidates = discover_candidates(self.db)
        horizon = max(c.completed_at for c in completions)
        return [
            self._diagnose_window(window, completions, candidates, horizon, queue_step_us)
            for window in windows
        ]

    # ------------------------------------------------------------------

    def _diagnose_window(
        self,
        window: AnomalyWindow,
        completions: list[CompletionSample],
        candidates: list[MetricCandidate],
        horizon: Micros,
        queue_step_us: Micros,
    ) -> DiagnosisReport:
        queue_findings, pushback, front_queue = self._queue_analysis(
            window, horizon, queue_step_us
        )
        causes = self._resource_analysis(window, candidates, front_queue)
        return DiagnosisReport(
            window=window,
            queue_findings=queue_findings,
            pushback_tiers=pushback,
            causes=causes,
            affected_interactions=self._interaction_analysis(window, completions),
        )

    def _interaction_analysis(
        self, window: AnomalyWindow, completions: list[CompletionSample]
    ) -> dict[str, tuple[int, float]]:
        """Which interaction classes the window's VLRTs belong to."""
        vlrt_counts: dict[str, int] = {}
        totals: dict[str, int] = {}
        vlrt_ids = {
            v.request_id
            for v in detect_vlrt(completions)
            if window.start <= v.completed_at <= window.stop
        }
        for sample in completions:
            if not sample.interaction:
                continue
            totals[sample.interaction] = totals.get(sample.interaction, 0) + 1
            if sample.request_id in vlrt_ids:
                vlrt_counts[sample.interaction] = (
                    vlrt_counts.get(sample.interaction, 0) + 1
                )
        return {
            name: (count, count / totals[name])
            for name, count in vlrt_counts.items()
        }

    def _queue_analysis(
        self, window: AnomalyWindow, horizon: Micros, step: Micros
    ) -> tuple[list[QueueFinding], list[str], Series]:
        context_start = max(0, window.start - ms(1_000))
        context_stop = min(horizon, window.stop + ms(1_000))
        queues = tier_queue_lengths(
            self.db,
            self.tier_tables,
            context_start,
            context_stop,
            step,
            self.epoch_us,
        )
        findings: list[QueueFinding] = []
        for tier, series in queues.items():
            inside = series.window(window.start, window.stop)
            outside_values = [
                series.window(context_start, window.start).mean(),
                series.window(window.stop, context_stop).mean(),
            ]
            baseline = sum(outside_values) / len(outside_values)
            findings.append(
                QueueFinding(
                    tier=tier, peak_queue=inside.max(), baseline_queue=baseline
                )
            )
        pushback = [f.tier for f in findings if f.amplification >= 3.0]
        front_tier = next(iter(self.tier_tables))
        return findings, pushback, queues[front_tier]

    def _resource_analysis(
        self,
        window: AnomalyWindow,
        candidates: list[MetricCandidate],
        front_queue: Series,
    ) -> list[RootCause]:
        causes: list[RootCause] = []
        for candidate in candidates:
            series = metric_series(
                self.db,
                candidate.table,
                candidate.columns,
                epoch_us=self.epoch_us,
                start=window.start - ms(500),
                stop=window.stop + ms(500),
            )
            if series.is_empty():
                continue
            inside = series.window(window.start, window.stop)
            if inside.is_empty():
                continue
            if candidate.kind == "dirty_pages":
                cause = self._dirty_page_cause(candidate, inside)
            else:
                cause = self._saturation_cause(candidate, inside, front_queue, series)
            if cause is not None:
                causes.append(cause)
        causes.sort(key=lambda c: c.score, reverse=True)
        return causes

    def _saturation_cause(
        self,
        candidate: MetricCandidate,
        inside: Series,
        front_queue: Series,
        context: Series,
    ) -> RootCause | None:
        peak = inside.max()
        threshold = (
            self.steal_threshold
            if candidate.kind == "cpu_steal"
            else self.saturation_threshold
        )
        if peak < threshold:
            return None
        correlation: float | None
        lead_lag: int | None
        try:
            correlation = pearson_correlation(context, front_queue)
        except AnalysisError:
            correlation = None
        try:
            from repro.analysis.lag import lagged_correlation

            lag_result = lagged_correlation(
                context, front_queue, max_lag_us=ms(300), step_us=ms(25)
            )
            lead_lag = int(lag_result.best_lag_us)
        except AnalysisError:
            lead_lag = None
        score = peak / 100.0 + (abs(correlation) if correlation is not None else 0.0)
        if lead_lag is not None and lead_lag > 0:
            # The metric moved before the queue did: evidence of causal
            # direction, not mere co-occurrence.
            score += 0.1
        if candidate.kind == "disk_util":
            explanation = (
                f"disk on {candidate.hostname} saturated ({peak:.0f}%) "
                "during the anomaly window"
            )
        elif candidate.kind == "cpu_steal":
            score += 0.5  # steal implicates the hypervisor directly
            explanation = (
                f"hypervisor stole {peak:.0f}% of {candidate.hostname}'s "
                "CPU — co-located VM interference"
            )
        else:
            explanation = (
                f"CPU on {candidate.hostname} saturated ({peak:.0f}%) "
                "during the anomaly window"
            )
        return RootCause(
            hostname=candidate.hostname,
            kind=candidate.kind,
            label=candidate.label,
            peak_value=peak,
            correlation=correlation,
            score=score,
            explanation=explanation,
            lead_lag_us=lead_lag,
        )

    def _dirty_page_cause(
        self, candidate: MetricCandidate, inside: Series
    ) -> RootCause | None:
        high = inside.max()
        low = float(inside.values.min())
        if high < self.dirty_min_level_kb:
            return None
        drop = (high - low) / high
        if drop < self.dirty_drop_fraction:
            return None
        return RootCause(
            hostname=candidate.hostname,
            kind=candidate.kind,
            label=candidate.label,
            peak_value=high,
            correlation=None,
            score=0.5 + drop,
            explanation=(
                f"dirty page cache on {candidate.hostname} dropped "
                f"{drop * 100:.0f}% inside the window — dirty-page "
                f"recycling stole the CPU"
            ),
        )
