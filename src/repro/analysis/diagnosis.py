"""The end-to-end very-short-bottleneck diagnosis engine.

Automates the investigation the paper walks through manually in its
two illustrative scenarios:

1. find VLRT requests and cluster them into anomaly windows (Fig 2 /
   Fig 8a);
2. compute per-tier queue lengths from the event tables and identify
   cross-tier pushback — which tiers' queues amplified (Fig 6 / 8b);
3. pull every resource-metric candidate from the warehouse for the
   affected window, flag saturated ones, flag abrupt dirty-page drops,
   and correlate each with the front tier's queue (Fig 4, 7, 8c, 8d);
4. rank root causes by evidence strength.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.analysis.anomaly import (
    AnomalyWindow,
    cluster_anomaly_windows,
    detect_vlrt,
)
from repro.analysis.cache import SeriesCache
from repro.analysis.metrics import MetricCandidate, discover_candidates
from repro.analysis.response_time import (
    CompletionSample,
    completions_from_warehouse,
)
from repro.analysis.series import Series, pearson_correlation
from repro.common.errors import AnalysisError
from repro.common.timebase import Micros, ms
from repro.telemetry.spans import NULL_TELEMETRY, SpanData, TelemetryCollector
from repro.warehouse.db import MScopeDB

__all__ = ["QueueFinding", "RootCause", "DiagnosisReport", "Diagnoser"]


@dataclasses.dataclass(frozen=True, slots=True)
class QueueFinding:
    """One tier's queue behaviour inside an anomaly window."""

    tier: str
    peak_queue: float
    baseline_queue: float

    @property
    def amplification(self) -> float:
        """Peak over baseline (∞ ≈ large when the baseline is ~0)."""
        return self.peak_queue / max(self.baseline_queue, 0.5)


@dataclasses.dataclass(frozen=True, slots=True)
class RootCause:
    """One ranked root-cause hypothesis."""

    hostname: str
    kind: str
    label: str
    peak_value: float
    correlation: float | None
    score: float
    explanation: str
    #: Best cross-correlation lag of the front queue behind this
    #: metric (µs); positive = the metric led the queue (causal
    #: direction), ``None`` when the lag was not computable.
    lead_lag_us: int | None = None


@dataclasses.dataclass(slots=True)
class DiagnosisReport:
    """Everything milliScope concluded about one anomaly window."""

    window: AnomalyWindow
    queue_findings: list[QueueFinding]
    pushback_tiers: list[str]
    causes: list[RootCause]
    #: interaction name → (VLRT count, share of that interaction's
    #: traffic that went VLRT).  A skew toward one class of
    #: interactions is itself evidence: commit-blocking faults hit the
    #: writes, CPU faults hit everything.
    affected_interactions: dict[str, tuple[int, float]] = dataclasses.field(
        default_factory=dict
    )
    #: Present when the warehouse's ``sampling_ledger`` shows a
    #: log-volume-reduction policy thinned the evidence: the policy
    #: spec(s), cumulative seen/kept rows, and the context-widening
    #: factor the diagnosis applied to compensate.  ``None`` for an
    #: unsampled warehouse, keeping its reports byte-identical to
    #: pre-sampling ones.
    sampling: dict | None = None

    def primary_cause(self) -> RootCause | None:
        """The top-ranked root cause, if any evidence survived."""
        return self.causes[0] if self.causes else None

    def to_text(self) -> str:
        """A human-readable summary of the diagnosis."""
        lines = [
            f"Anomaly window [{self.window.start / 1e6:.3f}s, "
            f"{self.window.stop / 1e6:.3f}s]: {self.window.vlrt_count} VLRT "
            f"request(s), peak response {self.window.peak_response_ms:.1f} ms",
            "  Queue amplification by tier:",
        ]
        for finding in self.queue_findings:
            marker = " <-- pushback" if finding.tier in self.pushback_tiers else ""
            lines.append(
                f"    {finding.tier:8s} peak={finding.peak_queue:6.1f} "
                f"baseline={finding.baseline_queue:6.1f} "
                f"x{finding.amplification:5.1f}{marker}"
            )
        if self.affected_interactions:
            worst = sorted(
                self.affected_interactions.items(),
                key=lambda item: item[1][1],
                reverse=True,
            )[:4]
            rendered = ", ".join(
                f"{name} ({count} VLRT, {share * 100:.0f}% of its traffic)"
                for name, (count, share) in worst
            )
            lines.append(f"  Most affected interactions: {rendered}")
        if self.causes:
            lines.append("  Ranked root causes:")
            for index, cause in enumerate(self.causes, start=1):
                corr = (
                    f"r={cause.correlation:+.2f}"
                    if cause.correlation is not None
                    else "r=n/a"
                )
                lag = ""
                if cause.lead_lag_us is not None and cause.lead_lag_us > 0:
                    lag = f", led the queue by {cause.lead_lag_us / 1000:.0f} ms"
                lines.append(
                    f"    {index}. {cause.label} "
                    f"(peak {cause.peak_value:.1f}, {corr}{lag}, "
                    f"score {cause.score:.2f}) — {cause.explanation}"
                )
        else:
            lines.append("  No saturated resource found (inconclusive).")
        if self.sampling is not None:
            lines.append(
                f"  Evidence sampled ({self.sampling['policy']}): kept "
                f"{self.sampling['rows_kept']}/{self.sampling['rows_seen']} "
                f"rows; analysis context widened "
                f"x{self.sampling['widen']:.1f}"
            )
        return "\n".join(lines)


@dataclasses.dataclass(slots=True)
class _InteractionInputs:
    """Window-independent inputs of the interaction-skew analysis.

    The old engine re-ran :func:`detect_vlrt` (an O(n log n) sort of
    every completion) plus two full passes over the completions *per
    anomaly window*; everything here depends only on the run's
    completions, so it is computed once and shared by every window —
    and by every pool worker, which rebuilds it in its initializer.
    """

    completions: list[CompletionSample]
    #: VLRTs at the *default* thresholds (the skew analysis always
    #: used defaults, regardless of the run's detection parameters).
    vlrts: list  # list[VlrtRequest]
    #: interaction → total completions carrying that interaction.
    totals: dict[str, int]
    #: VLRT request id → {interaction: sample count} (multi-sample ids
    #: kept so the per-window counts match the old full-pass exactly;
    #: only VLRT ids, since no window ever consults the rest).
    id_counts: dict[str, dict[str, int]]


def _interaction_inputs(
    completions: list[CompletionSample],
    baseline_us: Micros | None = None,
) -> _InteractionInputs:
    vlrts = detect_vlrt(completions, baseline_us=baseline_us)
    vlrt_ids = {v.request_id for v in vlrts}
    totals: dict[str, int] = {}
    id_counts: dict[str, dict[str, int]] = {}
    for sample in completions:
        if not sample.interaction:
            continue
        totals[sample.interaction] = totals.get(sample.interaction, 0) + 1
        if sample.request_id in vlrt_ids:
            per_id = id_counts.setdefault(sample.request_id, {})
            per_id[sample.interaction] = per_id.get(sample.interaction, 0) + 1
    return _InteractionInputs(
        completions=completions,
        vlrts=vlrts,
        totals=totals,
        id_counts=id_counts,
    )


class Diagnoser:
    """Diagnoses VSBs from a populated mScopeDB.

    The bulk analysis engine: every warehouse table a diagnosis needs
    is read once per run into a :class:`SeriesCache`, and each anomaly
    window is served by ``searchsorted`` slices of the cached columns
    — the scalar per-window N+1 query pattern is gone.

    Parameters
    ----------
    db:
        The warehouse holding event and resource tables.
    tier_tables:
        Tier → event-table mapping (defaults to the standard
        deployment's names).
    front_table:
        The first tier's event table, whose upstream pair defines
        response times.
    epoch_us:
        Epoch offset rebasing warehouse wall timestamps onto
        simulation time zero.
    telemetry:
        Optional :class:`TelemetryCollector`; the engine then measures
        ``analysis.*`` stage spans (ingested in deterministic order)
        that ``mscope stats`` renders next to the ingest stages.
    jobs:
        Fan independent anomaly windows across this many worker
        processes (requires a file-backed warehouse).  Reports merge
        back in window order, so the output is identical to a serial
        run — the same guarantee style as the parallel transformer.
        ``None``/``1`` diagnoses in-process.
    window_us:
        Optional ``(start, stop)`` simulation-time window restricting
        the diagnosis to requests completing inside it (either side
        may be ``None``).  Every warehouse load is bounded to the
        window plus analysis context, so on a sharded warehouse only
        the overlapping shards are ever opened — diagnosing the last
        minute of a day-long run no longer reads the day.
    """

    #: Context padding applied to ``window_us`` when bounding series
    #: loads: queue analysis looks ±1 s around each anomaly window and
    #: resource analysis ±0.5 s, so ±1.5 s covers both.
    window_pad_us: Micros = ms(1_500)

    #: A metric is "saturated" above this value (percent).
    saturation_threshold = 80.0
    #: Hypervisor steal is devastating far below full saturation.
    steal_threshold = 30.0
    #: A dirty-page drop counts when the level falls by this fraction.
    dirty_drop_fraction = 0.4
    #: ... and only when the level was at least this high (Collectl
    #: reports Dirty in KB; drops of a few hundred KB are log-buffer
    #: noise, not page-cache recycling).
    dirty_min_level_kb = 8 * 1024

    def __init__(
        self,
        db: MScopeDB,
        tier_tables: "dict[str, str | list[str]] | None" = None,
        front_table: str = "apache_events_web1",
        epoch_us: int = 0,
        telemetry: TelemetryCollector | None = None,
        jobs: int | None = None,
        window_us: "tuple[Micros | None, Micros | None] | None" = None,
    ) -> None:
        from repro.analysis.causal import (
            DEFAULT_EVENT_TABLES,
            discover_tier_tables,
        )

        self.db = db
        present = set(db.tables())
        if tier_tables is None:
            # Discover whatever replicas this warehouse actually holds,
            # keeping the known upstream-to-downstream tier order (the
            # first tier's queue is the pushback reference).
            discovered = discover_tier_tables(db)
            order = [t for t in DEFAULT_EVENT_TABLES if t in discovered]
            order += [t for t in sorted(discovered) if t not in DEFAULT_EVENT_TABLES]
            requested: dict[str, str | list[str]] = {
                tier: discovered[tier] for tier in order
            }
            if not requested:
                requested = dict(DEFAULT_EVENT_TABLES)
        else:
            requested = dict(tier_tables)
        # Not every deployment instruments every tier, and a sampling
        # policy may have kept zero rows for a quiet replica; analyze
        # what actually loaded.  Single tables stay bare strings (the
        # established mapping shape); replicated tiers carry lists.
        self.tier_tables: dict[str, str | list[str]] = {}
        for tier, value in requested.items():
            kept = [
                table
                for table in ([value] if isinstance(value, str) else value)
                if table in present
            ]
            if kept:
                self.tier_tables[tier] = kept[0] if len(kept) == 1 else kept
        if front_table not in present:
            raise AnalysisError(
                f"front event table {front_table!r} is not in the warehouse"
            )
        if not self.tier_tables:
            raise AnalysisError("no tier event tables found in the warehouse")
        self.front_table = front_table
        self.epoch_us = epoch_us
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.jobs = jobs
        # Tier-table schemas resolve once, here; per-window code never
        # touches the catalog again.
        self.tier_columns: dict[str, set[str]] = {
            table: {name for name, _ in db.table_schema(table)}
            for value in self.tier_tables.values()
            for table in ([value] if isinstance(value, str) else value)
        }
        for table, columns in self.tier_columns.items():
            if "upstream_arrival_us" not in columns:
                raise AnalysisError(
                    f"tier table {table!r} has no upstream_arrival_us column"
                )
        # When a log-volume-reduction policy thinned the event streams
        # (the ledger says so — measured, not estimated), widen every
        # analysis context window by the inverse keep ratio (capped)
        # instead of silently correlating over thinner evidence.  The
        # widening is a pure function of warehouse state, so parallel
        # window workers rebuilding from the db path derive the exact
        # same context as the serial path.
        summary = getattr(db, "sampling_summary", lambda: None)()
        self.evidence_widen = 1.0
        self.sampling_note: dict | None = None
        if summary is not None and summary["rows_seen"] > summary["rows_kept"]:
            keep = summary["rows_kept"] / summary["rows_seen"]
            self.evidence_widen = min(4.0, 1.0 / max(keep, 1e-9))
            self.window_pad_us = Micros(
                int(self.window_pad_us * self.evidence_widen)
            )
            self.sampling_note = {
                "policy": ",".join(summary["policies"]),
                "rows_seen": summary["rows_seen"],
                "rows_kept": summary["rows_kept"],
                "widen": round(self.evidence_widen, 4),
            }
        self.queue_context_us = Micros(int(ms(1_000) * self.evidence_widen))
        self.resource_context_us = Micros(int(ms(500) * self.evidence_widen))
        self.window_us = window_us
        bounds: tuple[Micros | None, Micros | None] | None = None
        if window_us is not None:
            start, stop = window_us
            bounds = (
                start - self.window_pad_us if start is not None else None,
                stop + self.window_pad_us if stop is not None else None,
            )
        self._probe = self.telemetry.probe()
        self._spans: list[SpanData] = []
        self.cache = SeriesCache(
            db,
            epoch_us=epoch_us,
            probe=self._probe,
            spans=self._spans,
            bounds=bounds,
        )

    # ------------------------------------------------------------------

    def sampled_baseline_us(
        self, completions: "list[CompletionSample]"
    ) -> Micros | None:
        """Ledger-corrected response-time baseline under tail sampling.

        Tail sampling keeps every slow request but only ``base_rate``
        of the fast ones, so the surviving completion population is
        skewed toward the anomaly — a raw median over it inflates the
        VLRT cutoff until the anomaly hides itself.  Each kept fast
        completion represents ``1/base_rate`` originals (the policy's
        keep decision is exactly known), so the inverse-probability
        weighted median recovers the true population baseline.  Pure
        function of warehouse state + completions: parallel window
        workers derive the identical value.  ``None`` when no tail
        policy governed the warehouse (detection then estimates its
        own baseline, unchanged).
        """
        if self.sampling_note is None or not completions:
            return None
        base_rate = threshold_us = None
        for spec in self.sampling_note["policy"].split(","):
            parts = spec.split(":")
            if parts[0] == "tail" and len(parts) >= 3:
                base_rate = float(parts[1])
                threshold_us = ms(float(parts[2]))
        if not base_rate or threshold_us is None:
            return None
        ordered = sorted(c.response_time_us for c in completions)
        weights = [
            1.0 if rt >= threshold_us else 1.0 / base_rate for rt in ordered
        ]
        half = sum(weights) / 2.0
        acc = 0.0
        for rt, weight in zip(ordered, weights):
            acc += weight
            if acc >= half:
                return rt
        return ordered[-1]

    def diagnose(
        self,
        threshold_factor: float = 10.0,
        min_response_ms: float = 50.0,
        queue_step_us: Micros = ms(10),
    ) -> list[DiagnosisReport]:
        """Run the full pipeline; one report per anomaly window."""
        self._spans.clear()
        with self._probe.span(self._spans, "analysis.run") as run_span:
            window_start, window_stop = (
                self.window_us if self.window_us is not None else (None, None)
            )
            with self._probe.span(
                self._spans, "analysis.completions", source_path=self.front_table
            ) as span:
                completions = completions_from_warehouse(
                    self.db,
                    self.front_table,
                    self.epoch_us,
                    start=window_start,
                    stop=window_stop,
                )
                span.add(records=len(completions))
            if not completions:
                raise AnalysisError(f"no completions in {self.front_table!r}")
            baseline_us = self.sampled_baseline_us(completions)
            vlrts = detect_vlrt(
                completions, threshold_factor, min_response_ms,
                baseline_us=baseline_us,
            )
            windows = cluster_anomaly_windows(vlrts)
            with self._probe.span(
                self._spans, "analysis.candidates"
            ) as span:
                candidates = discover_candidates(self.db)
                span.add(records=len(candidates))
            with self._probe.span(self._spans, "analysis.skew") as span:
                skew = _interaction_inputs(completions, baseline_us)
                span.add(records=len(skew.vlrts))
            horizon = max(c.completed_at for c in completions)
            if self.jobs is not None and self.jobs > 1 and len(windows) > 1:
                reports = self._diagnose_parallel(windows, queue_step_us)
            else:
                reports = []
                for index, window in enumerate(windows):
                    with self._probe.span(
                        self._spans,
                        "analysis.window",
                        source_path=f"window{index}",
                    ) as span:
                        report = self._diagnose_window(
                            window, skew, candidates, horizon,
                            queue_step_us,
                        )
                        span.add(records=window.vlrt_count)
                    reports.append(report)
            run_span.add(records=len(completions), errors=0)
        self.telemetry.ingest(tuple(self._spans))
        return reports

    def _diagnose_parallel(
        self, windows: list[AnomalyWindow], queue_step_us: Micros
    ) -> list[DiagnosisReport]:
        """Fan windows across a process pool; merge in window order.

        Each worker opens its own connection to the file-backed
        warehouse, rebuilds the run inputs (completions, candidates —
        both deterministic functions of the immutable warehouse) once
        in its initializer, and diagnoses whole windows.  ``map``
        returns results in submission order, so the report list is
        identical to the serial one regardless of scheduling.
        """
        import concurrent.futures

        if self.db.path == ":memory:":
            raise AnalysisError(
                "jobs > 1 needs a file-backed warehouse (workers open "
                "their own connections); use jobs=1 for in-memory DBs"
            )
        workers = min(self.jobs or 1, len(windows))
        with self._probe.span(
            self._spans, "analysis.fanout", source_path=f"jobs{workers}"
        ) as span:
            span.add(records=len(windows))
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_window_worker,
                initargs=(
                    self.db.path,
                    self.tier_tables,
                    self.front_table,
                    self.epoch_us,
                    self.window_us,
                ),
            ) as pool:
                return list(
                    pool.map(
                        _diagnose_window_task,
                        ((window, queue_step_us) for window in windows),
                    )
                )

    # ------------------------------------------------------------------

    def _diagnose_window(
        self,
        window: AnomalyWindow,
        skew: "_InteractionInputs",
        candidates: list[MetricCandidate],
        horizon: Micros,
        queue_step_us: Micros,
    ) -> DiagnosisReport:
        queue_findings, pushback, front_queue = self._queue_analysis(
            window, horizon, queue_step_us
        )
        causes = self._resource_analysis(
            window, candidates, front_queue, queue_step_us
        )
        return DiagnosisReport(
            window=window,
            queue_findings=queue_findings,
            pushback_tiers=pushback,
            causes=causes,
            affected_interactions=self._interaction_analysis(window, skew),
            sampling=self.sampling_note,
        )

    def _interaction_analysis(
        self, window: AnomalyWindow, skew: "_InteractionInputs"
    ) -> dict[str, tuple[int, float]]:
        """Which interaction classes the window's VLRTs belong to.

        All O(completions) work lives in :func:`_interaction_inputs`,
        computed once per run; each window only walks the (small) VLRT
        list — the same numbers the old per-window full pass produced.
        """
        vlrt_counts: dict[str, int] = {}
        seen: set[str] = set()
        # Iterate the VLRT *list*, not an id set: list order is the
        # deterministic completions order, so dict insertion order —
        # which breaks ties in the report's top-interactions cut —
        # never depends on string-hash randomization across processes.
        for vlrt in skew.vlrts:
            if not window.start <= vlrt.completed_at <= window.stop:
                continue
            if vlrt.request_id in seen:
                continue
            seen.add(vlrt.request_id)
            for interaction, count in skew.id_counts.get(
                vlrt.request_id, {}
            ).items():
                vlrt_counts[interaction] = (
                    vlrt_counts.get(interaction, 0) + count
                )
        return {
            name: (count, count / skew.totals[name])
            for name, count in vlrt_counts.items()
        }

    def _queue_analysis(
        self, window: AnomalyWindow, horizon: Micros, step: Micros
    ) -> tuple[list[QueueFinding], list[str], Series]:
        context_start = max(0, window.start - self.queue_context_us)
        context_stop = min(horizon, window.stop + self.queue_context_us)
        findings: list[QueueFinding] = []
        front_queue: Series | None = None
        for tier, tables in self.tier_tables.items():
            # Boundary arrays load once per run; each window is just a
            # fresh grid over the cached sorted columns.
            series = self.cache.queue_series(
                tables, context_start, context_stop, step
            )
            if front_queue is None:
                front_queue = series
            inside = series.window(window.start, window.stop)
            baseline = self._context_baseline(
                series, context_start, window, context_stop
            )
            findings.append(
                QueueFinding(
                    tier=tier, peak_queue=inside.max(), baseline_queue=baseline
                )
            )
        pushback = [f.tier for f in findings if f.amplification >= 3.0]
        assert front_queue is not None  # tier_tables is non-empty (ctor)
        return findings, pushback, front_queue

    @staticmethod
    def _context_baseline(
        series: Series,
        context_start: Micros,
        window: AnomalyWindow,
        context_stop: Micros,
    ) -> float:
        """Mean queue level in the context outside the anomaly window.

        A window abutting the run boundary (fault in the first 100 ms,
        or still in flight at the last sample) has an *empty* context
        on that side; averaging in its 0.0 would halve the baseline and
        overstate amplification, so only populated sides contribute.
        """
        outside_values = [
            side.mean()
            for side in (
                series.window(context_start, window.start),
                series.window(window.stop, context_stop),
            )
            if not side.is_empty()
        ]
        if not outside_values:
            return 0.0
        return sum(outside_values) / len(outside_values)

    def _resource_analysis(
        self,
        window: AnomalyWindow,
        candidates: list[MetricCandidate],
        front_queue: Series,
        queue_step_us: Micros,
    ) -> list[RootCause]:
        # Candidates sharing a monitor table share a sample grid, so
        # aligning the front queue onto it repeats; memoize under a key
        # pinning everything the queue series depends on.
        front_key = ("front_queue", window.start, window.stop, queue_step_us)

        def align_front(series: Series, grid) -> Series:
            return self.cache.resample_keyed(front_key, series, grid)

        causes: list[RootCause] = []
        for candidate in candidates:
            series = self.cache.window(
                candidate.table,
                candidate.columns,
                window.start - self.resource_context_us,
                window.stop + self.resource_context_us,
            )
            if series.is_empty():
                continue
            inside = series.window(window.start, window.stop)
            if inside.is_empty():
                continue
            if candidate.kind == "dirty_pages":
                cause = self._dirty_page_cause(candidate, inside)
            else:
                cause = self._saturation_cause(
                    candidate, inside, front_queue, series, align_front
                )
            if cause is not None:
                causes.append(cause)
        causes.sort(key=lambda c: c.score, reverse=True)
        return causes

    def _saturation_cause(
        self,
        candidate: MetricCandidate,
        inside: Series,
        front_queue: Series,
        context: Series,
        align_front: "Callable[[Series, object], Series] | None" = None,
    ) -> RootCause | None:
        peak = inside.max()
        threshold = (
            self.steal_threshold
            if candidate.kind == "cpu_steal"
            else self.saturation_threshold
        )
        if peak < threshold:
            return None
        correlation: float | None
        lead_lag: int | None
        try:
            correlation = pearson_correlation(
                context, front_queue, resample=align_front
            )
        except AnalysisError:
            correlation = None
        try:
            from repro.analysis.lag import lagged_correlation

            lag_result = lagged_correlation(
                context, front_queue, max_lag_us=ms(300), step_us=ms(25)
            )
            lead_lag = int(lag_result.best_lag_us)
        except AnalysisError:
            lead_lag = None
        score = peak / 100.0 + (abs(correlation) if correlation is not None else 0.0)
        if lead_lag is not None and lead_lag > 0:
            # The metric moved before the queue did: evidence of causal
            # direction, not mere co-occurrence.
            score += 0.1
        if candidate.kind == "disk_util":
            explanation = (
                f"disk on {candidate.hostname} saturated ({peak:.0f}%) "
                "during the anomaly window"
            )
        elif candidate.kind == "cpu_steal":
            score += 0.5  # steal implicates the hypervisor directly
            explanation = (
                f"hypervisor stole {peak:.0f}% of {candidate.hostname}'s "
                "CPU — co-located VM interference"
            )
        else:
            explanation = (
                f"CPU on {candidate.hostname} saturated ({peak:.0f}%) "
                "during the anomaly window"
            )
        return RootCause(
            hostname=candidate.hostname,
            kind=candidate.kind,
            label=candidate.label,
            peak_value=peak,
            correlation=correlation,
            score=score,
            explanation=explanation,
            lead_lag_us=lead_lag,
        )

    def _dirty_page_cause(
        self, candidate: MetricCandidate, inside: Series
    ) -> RootCause | None:
        high = inside.max()
        low = float(inside.values.min())
        if high < self.dirty_min_level_kb:
            return None
        drop = (high - low) / high
        if drop < self.dirty_drop_fraction:
            return None
        return RootCause(
            hostname=candidate.hostname,
            kind=candidate.kind,
            label=candidate.label,
            peak_value=high,
            correlation=None,
            score=0.5 + drop,
            explanation=(
                f"dirty page cache on {candidate.hostname} dropped "
                f"{drop * 100:.0f}% inside the window — dirty-page "
                f"recycling stole the CPU"
            ),
        )


# ----------------------------------------------------------------------
# process-pool window workers
#
# Initialized once per worker process: each worker opens its own
# connection to the file-backed warehouse (WAL mode keeps readers
# concurrent) and recomputes the run inputs — completions, candidates,
# horizon are deterministic functions of the immutable warehouse, so
# recomputing them is cheaper and simpler than pickling 50k samples
# into every task.

_WORKER: (
    "tuple[Diagnoser, _InteractionInputs, list[MetricCandidate], Micros] | None"
) = None


def _init_window_worker(
    db_path: str,
    tier_tables: "dict[str, str | list[str]]",
    front_table: str,
    epoch_us: int,
    window_us: "tuple[Micros | None, Micros | None] | None" = None,
) -> None:
    global _WORKER
    from repro.warehouse.sharded import open_warehouse

    # Monolithic or sharded — the worker reopens whatever layout the
    # parent diagnosed, with the same query window.
    db = open_warehouse(db_path)
    diagnoser = Diagnoser(
        db,
        tier_tables=tier_tables,
        front_table=front_table,
        epoch_us=epoch_us,
        window_us=window_us,
    )
    start, stop = window_us if window_us is not None else (None, None)
    completions = completions_from_warehouse(
        db, front_table, epoch_us, start=start, stop=stop
    )
    skew = _interaction_inputs(
        completions, diagnoser.sampled_baseline_us(completions)
    )
    candidates = discover_candidates(db)
    horizon = max(c.completed_at for c in completions)
    _WORKER = (diagnoser, skew, candidates, horizon)


def _diagnose_window_task(
    task: "tuple[AnomalyWindow, Micros]",
) -> DiagnosisReport:
    window, queue_step_us = task
    assert _WORKER is not None, "worker used before initializer ran"
    diagnoser, skew, candidates, horizon = _WORKER
    return diagnoser._diagnose_window(
        window, skew, candidates, horizon, queue_step_us
    )
