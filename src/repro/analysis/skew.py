"""Clock-skew estimation and correction from event logs.

milliScope joins timestamps written by *different machines*; the
paper's testbed was NTP-disciplined, but in the wild per-node clock
offsets corrupt cross-node happens-before relations and latency
attribution.  The event monitors' four timestamps fortunately contain
enough redundancy to estimate the offsets back out:

For one downstream call, the caller logs ``DS`` (sending) and ``DR``
(receiving) on its clock while the callee logs ``UA`` (arrival) and
``UD`` (departure) on its own.  With symmetric network legs, the NTP
offset equation gives the callee clock's offset relative to the
caller's::

    theta = ((UA - DS) - (DR - UD)) / 2

Each matching (caller visit, callee visit) pair yields one ``theta``
sample; the median over thousands of requests is a robust estimate.
Chaining the pairwise estimates down the tier pipeline yields every
tier's offset relative to the front tier.
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.common.errors import AnalysisError
from repro.warehouse.db import MScopeDB, quote_identifier

__all__ = ["SkewEstimate", "estimate_pairwise_offset", "estimate_tier_offsets"]


@dataclasses.dataclass(frozen=True, slots=True)
class SkewEstimate:
    """Estimated clock offsets relative to the front tier (µs)."""

    offsets_us: dict[str, int]
    sample_counts: dict[str, int]

    def offset_of(self, tier: str) -> int:
        """The tier's estimated offset (0 for the front tier)."""
        try:
            return self.offsets_us[tier]
        except KeyError:
            raise AnalysisError(f"no offset estimated for tier {tier!r}") from None

    def to_text(self) -> str:
        lines = ["Estimated clock offsets (relative to the front tier):"]
        for tier, offset in self.offsets_us.items():
            count = self.sample_counts.get(tier, 0)
            lines.append(
                f"  {tier:8s} {offset / 1000.0:+8.3f} ms "
                f"({count} request pairs)"
            )
        return "\n".join(lines)


def _visits(db: MScopeDB, table: str) -> dict[str, list[tuple]]:
    """request_id → [(ua, ud, ds, dr), ...] ordered by arrival."""
    columns = {name for name, _ in db.table_schema(table)}
    if "request_id" not in columns:
        raise AnalysisError(f"table {table!r} has no request_id column")
    select_ds = (
        "downstream_sending_us" if "downstream_sending_us" in columns else "NULL"
    )
    select_dr = (
        "downstream_receiving_us"
        if "downstream_receiving_us" in columns
        else "NULL"
    )
    rows = db.query(
        f"SELECT request_id, upstream_arrival_us, upstream_departure_us, "
        f"{select_ds}, {select_dr} FROM {quote_identifier(table)} "
        f"WHERE upstream_departure_us IS NOT NULL "
        f"ORDER BY request_id, upstream_arrival_us"
    )
    grouped: dict[str, list[tuple]] = {}
    for request_id, ua, ud, ds, dr in rows:
        grouped.setdefault(request_id, []).append((ua, ud, ds, dr))
    return grouped


def estimate_pairwise_offset(
    db: MScopeDB,
    caller_table: str,
    callee_table: str,
    max_pairs: int = 5_000,
) -> tuple[float, int]:
    """Callee clock offset relative to the caller (µs), plus sample count.

    Matches caller visits to callee visits per request by order (the
    k-th downstream call lands as the k-th callee visit — calls are
    sequential) and applies the NTP offset equation to each pair.
    """
    caller_visits = _visits(db, caller_table)
    callee_visits = _visits(db, callee_table)
    thetas: list[float] = []
    for request_id, caller_list in caller_visits.items():
        callee_list = callee_visits.get(request_id)
        if not callee_list:
            continue
        # Only the unambiguous case: equal visit counts pair by order.
        callers_with_calls = [
            v for v in caller_list if v[2] is not None and v[3] is not None
        ]
        if len(callers_with_calls) != len(callee_list):
            continue
        for (c_ua, c_ud, ds, dr), (e_ua, e_ud, _, _) in zip(
            callers_with_calls, callee_list
        ):
            theta = ((e_ua - ds) - (dr - e_ud)) / 2.0
            thetas.append(theta)
            if len(thetas) >= max_pairs:
                break
        if len(thetas) >= max_pairs:
            break
    if len(thetas) < 10:
        raise AnalysisError(
            f"too few caller/callee pairs between {caller_table!r} and "
            f"{callee_table!r} ({len(thetas)})"
        )
    return statistics.median(thetas), len(thetas)


def estimate_tier_offsets(
    db: MScopeDB,
    tier_tables: dict[str, str] | None = None,
) -> SkewEstimate:
    """Offsets of every tier relative to the first, chained pairwise.

    ``tier_tables`` must be in upstream-to-downstream order (the
    default four-tier mapping is).
    """
    from repro.analysis.causal import DEFAULT_EVENT_TABLES

    tables = tier_tables or dict(DEFAULT_EVENT_TABLES)
    present = set(db.tables())
    ordered = [(t, tab) for t, tab in tables.items() if tab in present]
    if len(ordered) < 2:
        raise AnalysisError("need at least two tier tables to estimate skew")
    offsets: dict[str, int] = {ordered[0][0]: 0}
    counts: dict[str, int] = {ordered[0][0]: 0}
    running = 0.0
    for (caller_tier, caller_table), (callee_tier, callee_table) in zip(
        ordered, ordered[1:]
    ):
        pairwise, count = estimate_pairwise_offset(db, caller_table, callee_table)
        running += pairwise
        offsets[callee_tier] = round(running)
        counts[callee_tier] = count
    return SkewEstimate(offsets_us=offsets, sample_counts=counts)
