"""Resource-metric access over mScopeDB.

Builds metric series from the warehouse's dynamically created resource
tables and enumerates root-cause *candidates* from the monitor
registry — the same discovery path a researcher follows interactively
("what did Collectl see on db1 during this window?").
"""

from __future__ import annotations

import dataclasses

from repro.analysis.series import Series
from repro.common.errors import AnalysisError
from repro.warehouse.db import MScopeDB, quote_identifier

__all__ = ["MetricCandidate", "metric_series", "discover_candidates"]


@dataclasses.dataclass(frozen=True, slots=True)
class MetricCandidate:
    """One potential root-cause metric on one host."""

    hostname: str
    table: str
    columns: tuple[str, ...]
    kind: str  # "disk_util" | "cpu_busy" | "dirty_pages"
    label: str


def metric_series(
    db: MScopeDB,
    table: str,
    columns: tuple[str, ...],
    epoch_us: int = 0,
    start: int | None = None,
    stop: int | None = None,
) -> Series:
    """A series summing one or more numeric columns of a resource table.

    ``start``/``stop`` are simulation-time bounds on the load.  Metric
    tables partition on ``timestamp_us``, the very column bounded
    here, so on a sharded warehouse the read prunes exactly to the
    overlapping shards; when columnar sidecars are built the series
    comes straight from the numpy arrays, no SQL at all.
    """
    if not columns:
        raise AnalysisError("metric_series needs at least one column")
    wh_start = start + epoch_us if start is not None else None
    wh_stop = stop + epoch_us if stop is not None else None
    columnar = getattr(db, "columnar_series", None)
    if columnar is not None:
        arrays = columnar(table, columns, wh_start, wh_stop)
        if arrays is not None:
            times, values = arrays
            return Series._from_sorted(times - epoch_us, values)
    summed = " + ".join(
        f"COALESCE({quote_identifier(c)}, 0)" for c in columns
    )
    sql = f"SELECT timestamp_us, {summed} FROM {quote_identifier(table)}"
    conditions = []
    params: list = []
    if wh_start is not None:
        conditions.append("timestamp_us >= ?")
        params.append(wh_start)
    if wh_stop is not None:
        conditions.append("timestamp_us < ?")
        params.append(wh_stop)
    if conditions:
        sql += " WHERE " + " AND ".join(conditions)
    sql += " ORDER BY timestamp_us"
    with db.pruned(wh_start, wh_stop):
        rows = db.query(sql, params)
    return Series.from_pairs((t - epoch_us, float(v)) for t, v in rows)


#: Metric kinds recognized per monitor table, by column availability.
_KIND_RULES: list[tuple[str, tuple[str, ...], str]] = [
    ("disk_util", ("dsk_pctutil",), "disk utilization (collectl)"),
    ("disk_util", ("util_pct",), "disk utilization (iostat)"),
    ("cpu_busy", ("cpu_user_pct", "cpu_sys_pct", "cpu_wait_pct"), "CPU busy (collectl)"),
    ("cpu_busy", ("user_pct", "system_pct", "iowait_pct"), "CPU busy (sar)"),
    ("cpu_steal", ("steal_pct",), "CPU steal (sar)"),
    ("dirty_pages", ("mem_dirty",), "dirty page cache (collectl)"),
]


def discover_candidates(db: MScopeDB) -> list[MetricCandidate]:
    """Enumerate root-cause candidates from the monitor registry.

    For every (resource-monitor table, host) pair, each metric kind
    whose columns the table actually has becomes one candidate.
    """
    rows = db.query(
        "SELECT DISTINCT hostname, table_name FROM monitor_registry"
    )
    candidates: list[MetricCandidate] = []
    seen: set[tuple[str, str, str]] = set()
    for hostname, table in rows:
        columns = {name for name, _ in db.table_schema(table)}
        if "timestamp_us" not in columns:
            continue
        for kind, needed, label in _KIND_RULES:
            if not all(c in columns for c in needed):
                continue
            key = (hostname, kind, table)
            if key in seen:
                continue
            seen.add(key)
            candidates.append(
                MetricCandidate(
                    hostname=hostname,
                    table=table,
                    columns=needed,
                    kind=kind,
                    label=f"{hostname}: {label}",
                )
            )
    return candidates
