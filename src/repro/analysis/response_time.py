"""Point-in-time response time analysis (the paper's Figure 2 metric).

The *point-in-time* response time of a window is the maximum response
time among requests completing in that window; the VLRT phenomenon is
a window whose maximum exceeds the period average by an order of
magnitude or more, even though wider averages look flat.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, NamedTuple

from repro.common.errors import AnalysisError
from repro.common.records import RequestTrace
from repro.common.timebase import Micros, to_ms
from repro.warehouse.db import MScopeDB, quote_identifier

__all__ = [
    "CompletionSample",
    "IN_FLIGHT_SLACK_US",
    "PointInTimeWindow",
    "completions_from_traces",
    "completions_from_warehouse",
    "point_in_time_response_times",
    "sampled_average_response_times",
]

#: How far before a query window a request may have *arrived* (or been
#: stored, on a sharded warehouse that partitions by arrival time) and
#: still matter to it — the assumed bound on request duration.
#: Windowed reads widen their partition-pruning hint by this much so a
#: request spanning a shard boundary is never missed; 30 s is orders
#: of magnitude above any response time the n-tier scenarios produce.
IN_FLIGHT_SLACK_US: Micros = 30_000_000


class CompletionSample(NamedTuple):
    """One completed request: completion time and response time.

    A ``NamedTuple`` (like :class:`~repro.analysis.causal.CausalHop`):
    every diagnosis materializes one sample per completed request, and
    tuple construction is several times cheaper than a frozen
    dataclass's per-field ``object.__setattr__``.
    """

    completed_at: Micros
    response_time_us: Micros
    request_id: str = ""
    interaction: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class PointInTimeWindow:
    """One analysis window's response-time profile."""

    start: Micros
    stop: Micros
    count: int
    max_ms: float
    mean_ms: float


def completions_from_traces(
    traces: Iterable[RequestTrace],
) -> list[CompletionSample]:
    """Completion samples from simulator ground-truth traces."""
    samples = []
    for trace in traces:
        if trace.client_receive is None:
            continue
        samples.append(
            CompletionSample(
                completed_at=trace.client_receive,
                response_time_us=trace.response_time(),
                request_id=trace.request_id,
                interaction=trace.interaction,
            )
        )
    samples.sort(key=lambda s: s.completed_at)
    return samples


def completions_from_warehouse(
    db: MScopeDB,
    table: str = "apache_events_web1",
    epoch_us: int = 0,
    start: Micros | None = None,
    stop: Micros | None = None,
) -> list[CompletionSample]:
    """Completion samples from a first-tier event table in mScopeDB.

    The first tier's upstream pair brackets the whole request, so
    ``departure - arrival`` is the server-side response time.
    ``epoch_us`` rebases warehouse epoch timestamps onto simulation
    time (pass the experiment's epoch).

    ``start``/``stop`` (simulation time) restrict the load to requests
    *completing* in ``[start, stop)`` — the windowed-diagnosis path.
    On a sharded warehouse the read is partition-pruned: only shards
    overlapping the window (widened by :data:`IN_FLIGHT_SLACK_US`, so
    boundary-spanning requests are kept) are opened.
    """
    # Rebase/derive in SQL and build tuples via ``_make``: one sample
    # per warehouse request makes the per-row Python work visible in
    # whole-run profiles.
    sql = (
        f"SELECT upstream_departure_us - ?, "
        f"upstream_departure_us - upstream_arrival_us, "
        f"COALESCE(request_id, ''), COALESCE(interaction, '') "
        f"FROM {quote_identifier(table)} "
        f"WHERE upstream_departure_us IS NOT NULL"
    )
    params: list = [epoch_us]
    if start is not None:
        sql += " AND upstream_departure_us >= ?"
        params.append(start + epoch_us)
    if stop is not None:
        sql += " AND upstream_departure_us < ?"
        params.append(stop + epoch_us)
    sql += " ORDER BY upstream_departure_us"
    hint_start = (
        start + epoch_us - IN_FLIGHT_SLACK_US if start is not None else None
    )
    hint_stop = stop + epoch_us if stop is not None else None
    with db.pruned(hint_start, hint_stop):
        rows = db.query(sql, params)
    return list(map(CompletionSample._make, rows))


def point_in_time_response_times(
    samples: list[CompletionSample],
    window_us: Micros,
    start: Micros,
    stop: Micros,
) -> list[PointInTimeWindow]:
    """Max/mean response time per window over ``[start, stop)``."""
    if window_us <= 0:
        raise AnalysisError(f"window must be positive: {window_us}")
    if stop <= start:
        raise AnalysisError(f"analysis span empty: [{start}, {stop})")
    windows: list[PointInTimeWindow] = []
    t = start
    index = 0
    ordered = sorted(samples, key=lambda s: s.completed_at)
    while t < stop:
        end = min(t + window_us, stop)
        bucket: list[Micros] = []
        while index < len(ordered) and ordered[index].completed_at < end:
            if ordered[index].completed_at >= t:
                bucket.append(ordered[index].response_time_us)
            index += 1
        if bucket:
            windows.append(
                PointInTimeWindow(
                    start=t,
                    stop=end,
                    count=len(bucket),
                    max_ms=to_ms(max(bucket)),
                    mean_ms=to_ms(sum(bucket) / len(bucket)),
                )
            )
        else:
            windows.append(PointInTimeWindow(t, end, 0, 0.0, 0.0))
        t = end
    return windows


def percentile_windows(
    samples: list[CompletionSample],
    window_us: Micros,
    start: Micros,
    stop: Micros,
    percentiles: tuple[float, ...] = (50.0, 95.0, 99.0),
) -> list[dict[str, float]]:
    """Response-time percentiles (ms) per window over ``[start, stop)``.

    Each returned dict has ``"start"`` plus one ``"pNN"`` key per
    requested percentile (0.0 for empty windows).  Percentiles use the
    nearest-rank method, matching how load-test reports quote them.
    """
    if window_us <= 0:
        raise AnalysisError(f"window must be positive: {window_us}")
    if stop <= start:
        raise AnalysisError(f"analysis span empty: [{start}, {stop})")
    for p in percentiles:
        if not 0.0 < p <= 100.0:
            raise AnalysisError(f"percentile out of (0, 100]: {p}")
    ordered = sorted(samples, key=lambda s: s.completed_at)
    rows: list[dict[str, float]] = []
    t = start
    index = 0
    while t < stop:
        end = min(t + window_us, stop)
        bucket: list[Micros] = []
        while index < len(ordered) and ordered[index].completed_at < end:
            if ordered[index].completed_at >= t:
                bucket.append(ordered[index].response_time_us)
            index += 1
        bucket.sort()
        row: dict[str, float] = {"start": float(t)}
        for p in percentiles:
            if bucket:
                rank = max(0, -(-int(p * len(bucket)) // 100) - 1)
                rank = min(rank, len(bucket) - 1)
                row[f"p{p:g}"] = to_ms(bucket[rank])
            else:
                row[f"p{p:g}"] = 0.0
        rows.append(row)
        t = end
    return rows


def sampled_average_response_times(
    samples: list[CompletionSample],
    window_us: Micros,
    start: Micros,
    stop: Micros,
) -> list[PointInTimeWindow]:
    """The coarse baseline: per-window *averages* only.

    This is what a second-granularity sampling monitor reports — the
    series that misses the Figure 2 peak entirely.
    """
    return [
        PointInTimeWindow(w.start, w.stop, w.count, w.mean_ms, w.mean_ms)
        for w in point_in_time_response_times(samples, window_us, start, stop)
    ]
