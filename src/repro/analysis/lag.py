"""Lead/lag correlation between metric series.

Figure 7's evidence is a correlation between the database disk and the
Apache queue — but causality has a *direction*: the disk saturates
first and the queue builds after.  Lagged cross-correlation makes that
direction measurable: shifting the queue series back in time by the
propagation delay maximizes the correlation, and the sign of the best
lag says who led.
"""

from __future__ import annotations

import dataclasses

from scipy import stats

from repro.analysis.series import Series
from repro.common.errors import AnalysisError
from repro.common.timebase import Micros

__all__ = ["correlation_with_pvalue", "lagged_correlation", "LagResult"]


@dataclasses.dataclass(frozen=True, slots=True)
class LagResult:
    """Best-lag cross-correlation between two series."""

    best_lag_us: Micros
    best_correlation: float
    zero_lag_correlation: float

    @property
    def leader(self) -> str:
        """``"a"`` if the first series leads, ``"b"`` if the second."""
        if self.best_lag_us > 0:
            return "a"
        if self.best_lag_us < 0:
            return "b"
        return "simultaneous"


def correlation_with_pvalue(a: Series, b: Series) -> tuple[float, float]:
    """Pearson r and its two-sided p-value, step-aligned on ``a``'s grid."""
    if len(a) < 3 or len(b) < 3:
        raise AnalysisError("need at least 3 points per series")
    aligned = b.resample(a.times)
    if float(a.values.std()) == 0.0 or float(aligned.values.std()) == 0.0:
        raise AnalysisError("correlation undefined for a constant series")
    result = stats.pearsonr(a.values, aligned.values)
    return float(result.statistic), float(result.pvalue)


def lagged_correlation(
    a: Series,
    b: Series,
    max_lag_us: Micros,
    step_us: Micros,
) -> LagResult:
    """Find the lag of ``b`` (relative to ``a``) maximizing Pearson r.

    A *positive* best lag means ``a`` leads: shifting ``b`` backwards
    by that amount lines its response up with ``a``'s cause.
    """
    if step_us <= 0 or max_lag_us < step_us:
        raise AnalysisError("need max_lag >= step > 0")
    if len(a) < 3 or len(b) < 3:
        raise AnalysisError("need at least 3 points per series")

    def correlation_at(lag: Micros) -> float:
        shifted = b.resample([t + lag for t in a.times])
        if float(shifted.values.std()) == 0.0 or float(a.values.std()) == 0.0:
            return 0.0
        return float(stats.pearsonr(a.values, shifted.values).statistic)

    zero = correlation_at(0)
    best_lag: Micros = 0
    best = zero
    lag = -max_lag_us
    while lag <= max_lag_us:
        r = correlation_at(lag)
        if r > best:
            best = r
            best_lag = lag
        lag += step_us
    return LagResult(
        best_lag_us=best_lag,
        best_correlation=best,
        zero_lag_correlation=zero,
    )
