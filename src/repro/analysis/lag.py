"""Lead/lag correlation between metric series.

Figure 7's evidence is a correlation between the database disk and the
Apache queue — but causality has a *direction*: the disk saturates
first and the queue builds after.  Lagged cross-correlation makes that
direction measurable: shifting the queue series back in time by the
propagation delay maximizes the correlation, and the sign of the best
lag says who led.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import stats

from repro.analysis.series import Series
from repro.common.errors import AnalysisError
from repro.common.timebase import Micros

__all__ = ["correlation_with_pvalue", "lagged_correlation", "LagResult"]


@dataclasses.dataclass(frozen=True, slots=True)
class LagResult:
    """Best-lag cross-correlation between two series."""

    best_lag_us: Micros
    best_correlation: float
    zero_lag_correlation: float

    @property
    def leader(self) -> str:
        """``"a"`` if the first series leads, ``"b"`` if the second."""
        if self.best_lag_us > 0:
            return "a"
        if self.best_lag_us < 0:
            return "b"
        return "simultaneous"


def correlation_with_pvalue(a: Series, b: Series) -> tuple[float, float]:
    """Pearson r and its two-sided p-value, step-aligned on ``a``'s grid."""
    if len(a) < 3 or len(b) < 3:
        raise AnalysisError("need at least 3 points per series")
    aligned = b.resample(a.times)
    if float(a.values.std()) == 0.0 or float(aligned.values.std()) == 0.0:
        raise AnalysisError("correlation undefined for a constant series")
    result = stats.pearsonr(a.values, aligned.values)
    return float(result.statistic), float(result.pvalue)


def lagged_correlation(
    a: Series,
    b: Series,
    max_lag_us: Micros,
    step_us: Micros,
) -> LagResult:
    """Find the lag of ``b`` (relative to ``a``) maximizing Pearson r.

    A *positive* best lag means ``a`` leads: shifting ``b`` backwards
    by that amount lines its response up with ``a``'s cause.
    """
    if step_us <= 0 or max_lag_us < step_us:
        raise AnalysisError("need max_lag >= step > 0")
    if len(a) < 3 or len(b) < 3:
        raise AnalysisError("need at least 3 points per series")

    # All lags at once: one (n_lags, n_points) step-resample of ``b``
    # followed by a row-wise Pearson r.  The diagnosis engine calls
    # this once per candidate per anomaly window, so the per-lag
    # Python/scipy dispatch this replaces dominated whole runs.
    lags = np.arange(-max_lag_us, max_lag_us + 1, step_us, dtype=np.int64)
    probe_lags = np.concatenate((np.zeros(1, dtype=np.int64), lags))
    grids = a.times[np.newaxis, :] + probe_lags[:, np.newaxis]
    shifted = b.values[b._step_indices(grids)]

    x_dev = a.values - a.values.mean()
    x_norm = float(np.sqrt(np.dot(x_dev, x_dev)))
    y_dev = shifted - shifted.mean(axis=1, keepdims=True)
    y_norm = np.sqrt((y_dev * y_dev).sum(axis=1))
    # A constant slice (either side) has no defined correlation; the
    # scan treats it as 0.0 rather than failing the whole window.
    correlations = np.zeros(len(probe_lags))
    defined = (y_norm > 0.0) if x_norm > 0.0 else np.zeros(len(y_norm), dtype=bool)
    correlations[defined] = (y_dev[defined] @ x_dev) / (y_norm[defined] * x_norm)

    zero = float(correlations[0])
    best_lag: Micros = 0
    best = zero
    for lag, r in zip(lags.tolist(), correlations[1:]):
        if r > best:
            best = float(r)
            best_lag = int(lag)
    return LagResult(
        best_lag_us=best_lag,
        best_correlation=best,
        zero_lag_correlation=zero,
    )
