"""Causal-path reconstruction (the paper's Figure 5).

Joining the event records that share one request ID across every
tier's table reconstructs the request's execution path explicitly —
establishing happens-before relationships among component servers
*without assumptions about how servers interact*.
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import AnalysisError
from repro.common.timebase import Micros, to_ms
from repro.warehouse.db import MScopeDB, quote_identifier

__all__ = ["CausalHop", "CausalPath", "reconstruct_path", "DEFAULT_EVENT_TABLES"]

#: The standard deployment's tier → event table mapping.
DEFAULT_EVENT_TABLES = {
    "apache": "apache_events_web1",
    "tomcat": "tomcat_events_app1",
    "cjdbc": "cjdbc_events_mid1",
    "mysql": "mysql_events_db1",
}


@dataclasses.dataclass(frozen=True, slots=True)
class CausalHop:
    """One tier visit on a request's path."""

    tier: str
    upstream_arrival_us: Micros
    upstream_departure_us: Micros
    downstream_sending_us: Micros | None
    downstream_receiving_us: Micros | None

    def server_time_ms(self) -> float:
        """Total time on this tier visit (ms)."""
        return to_ms(self.upstream_departure_us - self.upstream_arrival_us)

    def local_time_ms(self) -> float:
        """Time on this tier excluding the downstream wait (ms)."""
        total = self.upstream_departure_us - self.upstream_arrival_us
        if (
            self.downstream_sending_us is not None
            and self.downstream_receiving_us is not None
        ):
            total -= self.downstream_receiving_us - self.downstream_sending_us
        return to_ms(total)


@dataclasses.dataclass(slots=True)
class CausalPath:
    """A request's reconstructed execution path."""

    request_id: str
    hops: list[CausalHop]

    def response_time_ms(self) -> float:
        """First-tier server time — the client-visible response time."""
        first = self.hops[0]
        return first.server_time_ms()

    def tier_breakdown_ms(self) -> dict[str, float]:
        """Local (exclusive) time per tier, summed over visits."""
        breakdown: dict[str, float] = {}
        for hop in self.hops:
            breakdown[hop.tier] = breakdown.get(hop.tier, 0.0) + hop.local_time_ms()
        return breakdown

    def dominant_tier(self) -> str:
        """The tier contributing the most exclusive time."""
        breakdown = self.tier_breakdown_ms()
        return max(breakdown, key=breakdown.__getitem__)

    def validate_happens_before(self) -> None:
        """Check the hop nesting is causally consistent.

        Every non-first hop must arrive after the first hop's arrival
        and depart before... strictly, within its caller's downstream
        window; the flat check here validates global ordering:
        arrivals are non-decreasing relative to the first arrival and
        every hop fits inside the first hop's span.
        """
        if not self.hops:
            raise AnalysisError(f"request {self.request_id} has no hops")
        first = self.hops[0]
        for hop in self.hops[1:]:
            if hop.upstream_arrival_us < first.upstream_arrival_us:
                raise AnalysisError(
                    f"hop {hop.tier} arrives before the first tier "
                    f"({self.request_id})"
                )
            if hop.upstream_departure_us > first.upstream_departure_us:
                raise AnalysisError(
                    f"hop {hop.tier} departs after the first tier "
                    f"({self.request_id})"
                )


def reconstruct_path(
    db: MScopeDB,
    request_id: str,
    tier_tables: dict[str, str] | None = None,
) -> CausalPath:
    """Join one request's records across every tier table."""
    tables = tier_tables or DEFAULT_EVENT_TABLES
    hops: list[CausalHop] = []
    for tier, table in tables.items():
        columns = {name for name, _ in db.table_schema(table)}
        if "request_id" not in columns:
            continue
        select_ds = (
            "downstream_sending_us" if "downstream_sending_us" in columns else "NULL"
        )
        select_dr = (
            "downstream_receiving_us"
            if "downstream_receiving_us" in columns
            else "NULL"
        )
        rows = db.query(
            f"SELECT upstream_arrival_us, upstream_departure_us, "
            f"{select_ds}, {select_dr} FROM {quote_identifier(table)} "
            f"WHERE request_id = ? ORDER BY upstream_arrival_us",
            (request_id,),
        )
        for arrival, departure, sending, receiving in rows:
            hops.append(
                CausalHop(
                    tier=tier,
                    upstream_arrival_us=arrival,
                    upstream_departure_us=departure,
                    downstream_sending_us=sending,
                    downstream_receiving_us=receiving,
                )
            )
    if not hops:
        raise AnalysisError(f"request {request_id!r} not found in any tier table")
    hops.sort(key=lambda h: h.upstream_arrival_us)
    return CausalPath(request_id=request_id, hops=hops)
