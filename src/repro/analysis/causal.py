"""Causal-path reconstruction (the paper's Figure 5).

Joining the event records that share one request ID across every
tier's table reconstructs the request's execution path explicitly —
establishing happens-before relationships among component servers
*without assumptions about how servers interact*.
"""

from __future__ import annotations

import dataclasses
from operator import attrgetter
from typing import Iterable, Iterator, NamedTuple

from repro.common.errors import AnalysisError
from repro.common.timebase import Micros, to_ms
from repro.warehouse.db import MScopeDB, quote_identifier

__all__ = [
    "CausalHop",
    "CausalPath",
    "reconstruct_path",
    "reconstruct_paths_bulk",
    "DEFAULT_EVENT_TABLES",
]

#: :func:`reconstruct_paths_bulk` switches a tier table from chunked
#: ``IN (...)`` probes to one full columnar scan when the requested id
#: set exceeds this fraction of the table's rows — at that density the
#: scan touches barely more rows than the probes would, without the
#: per-chunk query overhead.
FULL_SCAN_FRACTION = 0.2

_BY_ARRIVAL = attrgetter("upstream_arrival_us")

#: The standard deployment's tier → event table mapping.
DEFAULT_EVENT_TABLES = {
    "apache": "apache_events_web1",
    "tomcat": "tomcat_events_app1",
    "cjdbc": "cjdbc_events_mid1",
    "mysql": "mysql_events_db1",
}


class CausalHop(NamedTuple):
    """One tier visit on a request's path.

    A ``NamedTuple`` rather than a frozen dataclass: a bulk
    reconstruction materializes one hop per event row (150k+ on a 50k
    request warehouse), and tuple construction skips the per-field
    ``object.__setattr__`` a frozen dataclass pays.  Same immutability,
    field names, and value equality either way.
    """

    tier: str
    upstream_arrival_us: Micros
    upstream_departure_us: Micros
    downstream_sending_us: Micros | None
    downstream_receiving_us: Micros | None

    def server_time_ms(self) -> float:
        """Total time on this tier visit (ms)."""
        return to_ms(self.upstream_departure_us - self.upstream_arrival_us)

    def local_time_ms(self) -> float:
        """Time on this tier excluding the downstream wait (ms)."""
        total = self.upstream_departure_us - self.upstream_arrival_us
        if (
            self.downstream_sending_us is not None
            and self.downstream_receiving_us is not None
        ):
            total -= self.downstream_receiving_us - self.downstream_sending_us
        return to_ms(total)


@dataclasses.dataclass(slots=True)
class CausalPath:
    """A request's reconstructed execution path."""

    request_id: str
    hops: list[CausalHop]

    def response_time_ms(self) -> float:
        """First-tier server time — the client-visible response time."""
        first = self.hops[0]
        return first.server_time_ms()

    def tier_breakdown_ms(self) -> dict[str, float]:
        """Local (exclusive) time per tier, summed over visits."""
        breakdown: dict[str, float] = {}
        for hop in self.hops:
            breakdown[hop.tier] = breakdown.get(hop.tier, 0.0) + hop.local_time_ms()
        return breakdown

    def dominant_tier(self) -> str:
        """The tier contributing the most exclusive time."""
        breakdown = self.tier_breakdown_ms()
        return max(breakdown, key=breakdown.__getitem__)

    def validate_happens_before(self) -> None:
        """Check the hop nesting is causally consistent.

        Every non-first hop must arrive after the first hop's arrival
        and depart before... strictly, within its caller's downstream
        window; the flat check here validates global ordering:
        arrivals are non-decreasing relative to the first arrival and
        every hop fits inside the first hop's span.
        """
        if not self.hops:
            raise AnalysisError(f"request {self.request_id} has no hops")
        first = self.hops[0]
        for hop in self.hops[1:]:
            if hop.upstream_arrival_us < first.upstream_arrival_us:
                raise AnalysisError(
                    f"hop {hop.tier} arrives before the first tier "
                    f"({self.request_id})"
                )
            if hop.upstream_departure_us > first.upstream_departure_us:
                raise AnalysisError(
                    f"hop {hop.tier} departs after the first tier "
                    f"({self.request_id})"
                )


def _hop_selects(db: MScopeDB, table: str) -> tuple[str, str] | None:
    """The downstream-column select fragments for one tier table.

    ``None`` when the table has no ``request_id`` column (resource
    tables share directories with event tables; skip them).  Schema
    lookups hit :meth:`MScopeDB.table_schema`'s cache, so per-request
    scalar reconstruction no longer re-reads the catalog every call.
    """
    columns = {name for name, _ in db.table_schema(table)}
    if "request_id" not in columns:
        return None
    select_ds = (
        "downstream_sending_us" if "downstream_sending_us" in columns else "NULL"
    )
    select_dr = (
        "downstream_receiving_us"
        if "downstream_receiving_us" in columns
        else "NULL"
    )
    return select_ds, select_dr


def reconstruct_path(
    db: MScopeDB,
    request_id: str,
    tier_tables: dict[str, str] | None = None,
) -> CausalPath:
    """Join one request's records across every tier table."""
    tables = tier_tables or DEFAULT_EVENT_TABLES
    hops: list[CausalHop] = []
    for tier, table in tables.items():
        selects = _hop_selects(db, table)
        if selects is None:
            continue
        select_ds, select_dr = selects
        # rowid breaks arrival-time ties, pinning one deterministic hop
        # order shared with the bulk path.
        rows = db.query(
            f"SELECT upstream_arrival_us, upstream_departure_us, "
            f"{select_ds}, {select_dr} FROM {quote_identifier(table)} "
            f"WHERE request_id = ? ORDER BY upstream_arrival_us, rowid",
            (request_id,),
        )
        for arrival, departure, sending, receiving in rows:
            hops.append(
                CausalHop(
                    tier=tier,
                    upstream_arrival_us=arrival,
                    upstream_departure_us=departure,
                    downstream_sending_us=sending,
                    downstream_receiving_us=receiving,
                )
            )
    if not hops:
        raise AnalysisError(f"request {request_id!r} not found in any tier table")
    hops.sort(key=_BY_ARRIVAL)
    return CausalPath(request_id=request_id, hops=hops)


def reconstruct_paths_bulk(
    db: MScopeDB,
    request_ids: Iterable[str],
    tier_tables: dict[str, str] | None = None,
    *,
    strict: bool = False,
    full_scan_fraction: float = FULL_SCAN_FRACTION,
) -> Iterator[CausalPath]:
    """Reconstruct many requests' paths with one read per tier table.

    The batch counterpart of :func:`reconstruct_path`: instead of N×T
    point queries (N requests, T tiers), each tier table is fetched
    **once** — chunked ``WHERE request_id IN (...)`` probes against the
    importer's ``request_id`` index, or a single full columnar scan
    when the id set covers more than ``full_scan_fraction`` of the
    table — and hops are grouped in dicts.  Yields paths in first-seen
    ``request_ids`` order (duplicates collapse), each **identical** to
    what the scalar API returns for the same id (property-tested).

    Ids found in no tier table are skipped, unless ``strict`` — then
    the first missing id raises :class:`AnalysisError`, matching the
    scalar behaviour.
    """
    tables = tier_tables or DEFAULT_EVENT_TABLES
    ids = list(dict.fromkeys(request_ids))
    if not ids:
        return
    wanted = set(ids)
    hops_by_id: dict[str, list[CausalHop]] = {rid: [] for rid in ids}
    for tier, table in tables.items():
        selects = _hop_selects(db, table)
        if selects is None:
            continue
        select_ds, select_dr = selects
        select = (
            f"SELECT request_id, upstream_arrival_us, upstream_departure_us, "
            f"{select_ds}, {select_dr} FROM {quote_identifier(table)}"
        )
        if len(ids) >= full_scan_fraction * db.row_count(table):
            # Dense id set: one sequential scan beats thousands of
            # index probes.  ORDER BY (arrival, rowid) matches the
            # probe path, so per-id hop order is identical either way.
            rows = db.query(f"{select} ORDER BY upstream_arrival_us, rowid")
            rows = (row for row in rows if row[0] in wanted)
        else:
            rows = db.query_in_chunks(
                f"{select} WHERE request_id IN ({{placeholders}}) "
                f"ORDER BY upstream_arrival_us, rowid",
                ids,
            )
        for request_id, arrival, departure, sending, receiving in rows:
            hops_by_id[request_id].append(
                CausalHop(tier, arrival, departure, sending, receiving)
            )
    for request_id in ids:
        hops = hops_by_id[request_id]
        if not hops:
            if strict:
                raise AnalysisError(
                    f"request {request_id!r} not found in any tier table"
                )
            continue
        # Stable sort over per-tier runs already in (arrival, rowid)
        # order reproduces the scalar path's hop order exactly.
        hops.sort(key=_BY_ARRIVAL)
        yield CausalPath(request_id=request_id, hops=hops)
