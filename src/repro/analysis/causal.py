"""Causal-path reconstruction (the paper's Figure 5).

Joining the event records that share one request ID across every
tier's table reconstructs the request's execution path explicitly —
establishing happens-before relationships among component servers
*without assumptions about how servers interact*.
"""

from __future__ import annotations

import dataclasses
from operator import attrgetter
from typing import Iterable, Iterator, NamedTuple, Sequence

from repro.common.errors import AnalysisError, QueryError
from repro.common.timebase import Micros, to_ms
from repro.warehouse.db import MScopeDB, quote_identifier

__all__ = [
    "CausalHop",
    "CausalPath",
    "reconstruct_path",
    "reconstruct_paths_bulk",
    "discover_tier_tables",
    "DEFAULT_EVENT_TABLES",
]

#: :func:`reconstruct_paths_bulk` switches a tier table from chunked
#: ``IN (...)`` probes to one full columnar scan when the requested id
#: set exceeds this fraction of the table's rows — at that density the
#: scan touches barely more rows than the probes would, without the
#: per-chunk query overhead.
FULL_SCAN_FRACTION = 0.2

_BY_ARRIVAL = attrgetter("upstream_arrival_us")

#: The standard deployment's tier → event table mapping.  A replicated
#: deployment maps a tier to a *list* of per-replica tables instead
#: (see :func:`discover_tier_tables`).
DEFAULT_EVENT_TABLES = {
    "apache": "apache_events_web1",
    "tomcat": "tomcat_events_app1",
    "cjdbc": "cjdbc_events_mid1",
    "mysql": "mysql_events_db1",
}


def _host_of(table: str) -> str | None:
    """The host a ``{tier}_events_{host}`` table belongs to."""
    _, _, host = table.partition("_events_")
    return host or None


def _host_sort_key(table: str) -> tuple[str, int, str]:
    """Order replica tables host-number-aware (db2 before db10)."""
    host = _host_of(table) or table
    prefix = host.rstrip("0123456789")
    digits = host[len(prefix):]
    return (prefix, int(digits) if digits else 0, table)


def _tier_table_pairs(
    tables: "dict[str, str | Sequence[str]]",
) -> list[tuple[str, str]]:
    """Flatten a tier mapping's single-or-list values to (tier, table)."""
    pairs: list[tuple[str, str]] = []
    for tier, value in tables.items():
        if isinstance(value, str):
            pairs.append((tier, value))
        else:
            pairs.extend((tier, table) for table in value)
    return pairs


def discover_tier_tables(db: MScopeDB) -> dict[str, list[str]]:
    """Every tier's event tables actually present in a warehouse.

    A replicated deployment writes one ``{tier}_events_{host}`` table
    per replica; this inspects the catalog so reconstruction and
    diagnosis cover whatever replicas a run actually had (and skip
    tables a sampling policy kept no rows for).
    """
    found: dict[str, list[str]] = {}
    for table in db.tables():
        tier, sep, host = table.partition("_events_")
        if sep and host:
            found.setdefault(tier, []).append(table)
    return {
        tier: sorted(tables, key=_host_sort_key)
        for tier, tables in found.items()
    }


class CausalHop(NamedTuple):
    """One tier visit on a request's path.

    A ``NamedTuple`` rather than a frozen dataclass: a bulk
    reconstruction materializes one hop per event row (150k+ on a 50k
    request warehouse), and tuple construction skips the per-field
    ``object.__setattr__`` a frozen dataclass pays.  Same immutability,
    field names, and value equality either way.
    """

    tier: str
    upstream_arrival_us: Micros
    upstream_departure_us: Micros
    downstream_sending_us: Micros | None
    downstream_receiving_us: Micros | None
    #: Host whose event table recorded this visit (``None`` on legacy
    #: single-replica mappings) — what lets blame name a replica.
    host: str | None = None

    def server_time_ms(self) -> float:
        """Total time on this tier visit (ms)."""
        return to_ms(self.upstream_departure_us - self.upstream_arrival_us)

    def local_time_ms(self) -> float:
        """Time on this tier excluding the downstream wait (ms)."""
        total = self.upstream_departure_us - self.upstream_arrival_us
        if (
            self.downstream_sending_us is not None
            and self.downstream_receiving_us is not None
        ):
            total -= self.downstream_receiving_us - self.downstream_sending_us
        return to_ms(total)


@dataclasses.dataclass(slots=True)
class CausalPath:
    """A request's reconstructed execution path."""

    request_id: str
    hops: list[CausalHop]

    def response_time_ms(self) -> float:
        """First-tier server time — the client-visible response time."""
        first = self.hops[0]
        return first.server_time_ms()

    def tier_breakdown_ms(self) -> dict[str, float]:
        """Local (exclusive) time per tier, summed over visits."""
        breakdown: dict[str, float] = {}
        for hop in self.hops:
            breakdown[hop.tier] = breakdown.get(hop.tier, 0.0) + hop.local_time_ms()
        return breakdown

    def dominant_tier(self) -> str:
        """The tier contributing the most exclusive time."""
        breakdown = self.tier_breakdown_ms()
        return max(breakdown, key=breakdown.__getitem__)

    def host_breakdown_ms(self) -> dict[tuple[str, str | None], float]:
        """Local (exclusive) time per ``(tier, host)``, summed over visits."""
        breakdown: dict[tuple[str, str | None], float] = {}
        for hop in self.hops:
            key = (hop.tier, hop.host)
            breakdown[key] = breakdown.get(key, 0.0) + hop.local_time_ms()
        return breakdown

    def dominant_replica(self) -> tuple[str, str | None]:
        """The ``(tier, host)`` contributing the most exclusive time.

        Replica-level blame: with a scaled-out tier the dominant tier
        alone cannot say *which* backend held the request; the host
        recorded on each hop can.
        """
        breakdown = self.host_breakdown_ms()
        return max(breakdown, key=breakdown.__getitem__)

    def hosts_per_tier(self) -> dict[str, set[str]]:
        """Distinct hosts visited per logical tier (``None`` excluded)."""
        visited: dict[str, set[str]] = {}
        for hop in self.hops:
            if hop.host is not None:
                visited.setdefault(hop.tier, set()).add(hop.host)
        return visited

    def validate_happens_before(self) -> None:
        """Check the hop nesting is causally consistent.

        Every non-first hop must arrive after the first hop's arrival
        and depart before... strictly, within its caller's downstream
        window; the flat check here validates global ordering:
        arrivals are non-decreasing relative to the first arrival and
        every hop fits inside the first hop's span.
        """
        if not self.hops:
            raise AnalysisError(f"request {self.request_id} has no hops")
        first = self.hops[0]
        for hop in self.hops[1:]:
            if hop.upstream_arrival_us < first.upstream_arrival_us:
                raise AnalysisError(
                    f"hop {hop.tier} arrives before the first tier "
                    f"({self.request_id})"
                )
            if hop.upstream_departure_us > first.upstream_departure_us:
                raise AnalysisError(
                    f"hop {hop.tier} departs after the first tier "
                    f"({self.request_id})"
                )


def _hop_selects(db: MScopeDB, table: str) -> tuple[str, str] | None:
    """The downstream-column select fragments for one tier table.

    ``None`` when the table has no ``request_id`` column (resource
    tables share directories with event tables; skip them) or does not
    exist at all — a head-sampling policy that kept zero rows for a
    low-traffic replica never creates its table, and a missing branch
    must degrade to a partial path, not crash the join.  Schema
    lookups hit :meth:`MScopeDB.table_schema`'s cache, so per-request
    scalar reconstruction no longer re-reads the catalog every call.
    """
    try:
        columns = {name for name, _ in db.table_schema(table)}
    except QueryError:
        return None
    if "request_id" not in columns:
        return None
    select_ds = (
        "downstream_sending_us" if "downstream_sending_us" in columns else "NULL"
    )
    select_dr = (
        "downstream_receiving_us"
        if "downstream_receiving_us" in columns
        else "NULL"
    )
    return select_ds, select_dr


def reconstruct_path(
    db: MScopeDB,
    request_id: str,
    tier_tables: "dict[str, str | Sequence[str]] | None" = None,
) -> CausalPath:
    """Join one request's records across every tier (and replica) table."""
    tables = tier_tables or DEFAULT_EVENT_TABLES
    hops: list[CausalHop] = []
    for tier, table in _tier_table_pairs(tables):
        selects = _hop_selects(db, table)
        if selects is None:
            continue
        select_ds, select_dr = selects
        host = _host_of(table)
        # rowid breaks arrival-time ties, pinning one deterministic hop
        # order shared with the bulk path.
        rows = db.query(
            f"SELECT upstream_arrival_us, upstream_departure_us, "
            f"{select_ds}, {select_dr} FROM {quote_identifier(table)} "
            f"WHERE request_id = ? ORDER BY upstream_arrival_us, rowid",
            (request_id,),
        )
        for arrival, departure, sending, receiving in rows:
            hops.append(
                CausalHop(
                    tier=tier,
                    upstream_arrival_us=arrival,
                    upstream_departure_us=departure,
                    downstream_sending_us=sending,
                    downstream_receiving_us=receiving,
                    host=host,
                )
            )
    if not hops:
        raise AnalysisError(f"request {request_id!r} not found in any tier table")
    hops.sort(key=_BY_ARRIVAL)
    return CausalPath(request_id=request_id, hops=hops)


def reconstruct_paths_bulk(
    db: MScopeDB,
    request_ids: Iterable[str],
    tier_tables: "dict[str, str | Sequence[str]] | None" = None,
    *,
    strict: bool = False,
    full_scan_fraction: float = FULL_SCAN_FRACTION,
) -> Iterator[CausalPath]:
    """Reconstruct many requests' paths with one read per tier table.

    The batch counterpart of :func:`reconstruct_path`: instead of N×T
    point queries (N requests, T tiers), each tier table is fetched
    **once** — chunked ``WHERE request_id IN (...)`` probes against the
    importer's ``request_id`` index, or a single full columnar scan
    when the id set covers more than ``full_scan_fraction`` of the
    table — and hops are grouped in dicts.  Yields paths in first-seen
    ``request_ids`` order (duplicates collapse), each **identical** to
    what the scalar API returns for the same id (property-tested).

    Ids found in no tier table are skipped, unless ``strict`` — then
    the first missing id raises :class:`AnalysisError`, matching the
    scalar behaviour.
    """
    tables = tier_tables or DEFAULT_EVENT_TABLES
    ids = list(dict.fromkeys(request_ids))
    if not ids:
        return
    wanted = set(ids)
    hops_by_id: dict[str, list[CausalHop]] = {rid: [] for rid in ids}
    for tier, table in _tier_table_pairs(tables):
        selects = _hop_selects(db, table)
        if selects is None:
            continue
        select_ds, select_dr = selects
        host = _host_of(table)
        select = (
            f"SELECT request_id, upstream_arrival_us, upstream_departure_us, "
            f"{select_ds}, {select_dr} FROM {quote_identifier(table)}"
        )
        if len(ids) >= full_scan_fraction * db.row_count(table):
            # Dense id set: one sequential scan beats thousands of
            # index probes.  ORDER BY (arrival, rowid) matches the
            # probe path, so per-id hop order is identical either way.
            rows = db.query(f"{select} ORDER BY upstream_arrival_us, rowid")
            rows = (row for row in rows if row[0] in wanted)
        else:
            rows = db.query_in_chunks(
                f"{select} WHERE request_id IN ({{placeholders}}) "
                f"ORDER BY upstream_arrival_us, rowid",
                ids,
            )
        for request_id, arrival, departure, sending, receiving in rows:
            hops_by_id[request_id].append(
                CausalHop(tier, arrival, departure, sending, receiving, host)
            )
    for request_id in ids:
        hops = hops_by_id[request_id]
        if not hops:
            if strict:
                raise AnalysisError(
                    f"request {request_id!r} not found in any tier table"
                )
            continue
        # Stable sort over per-tier runs already in (arrival, rowid)
        # order reproduces the scalar path's hop order exactly.
        hops.sort(key=_BY_ARRIVAL)
        yield CausalPath(request_id=request_id, hops=hops)
