"""Per-tier latency decomposition.

The event mScopeMonitors exist to answer "the contribution of each
server to the response time of each request" (Section IV-A).  Given
the four boundary timestamps, each tier visit's *local* time is its
server time minus its downstream wait; summed per tier they decompose
a request's response time exactly (up to network hops).
"""

from __future__ import annotations

from repro.analysis.series import Series
from repro.common.errors import AnalysisError
from repro.common.records import RequestTrace
from repro.common.timebase import Micros, to_ms

__all__ = ["request_breakdown_ms", "tier_latency_series", "NETWORK_LABEL"]

#: Pseudo-tier label for time not attributable to any server (network
#: hops and client-side queueing).
NETWORK_LABEL = "network"


def request_breakdown_ms(trace: RequestTrace) -> dict[str, float]:
    """Decompose one request's response time by tier (plus network).

    The per-tier entries are the summed local times of the tier's
    visits; ``network`` absorbs the remainder, so the values add up to
    the client-observed response time.
    """
    if not trace.is_complete():
        raise AnalysisError(f"request {trace.request_id} never completed")
    breakdown: dict[str, float] = {}
    for visit in trace.visits:
        if visit.upstream_departure is None:
            continue
        local = visit.local_time()
        breakdown[visit.tier] = breakdown.get(visit.tier, 0.0) + to_ms(local)
    attributed = sum(breakdown.values())
    breakdown[NETWORK_LABEL] = max(0.0, trace.response_time_ms() - attributed)
    return breakdown


def tier_latency_series(
    traces: list[RequestTrace],
    window_us: Micros,
    start: Micros,
    stop: Micros,
) -> dict[str, Series]:
    """Mean per-request latency contribution of each tier, per window.

    Each series' value at window ``w`` is the average (over requests
    completing in ``w``) of the tier's local-time contribution —
    the stacked-area view that shows *where* response time goes when a
    VSB strikes.
    """
    if window_us <= 0:
        raise AnalysisError(f"window must be positive: {window_us}")
    if stop <= start:
        raise AnalysisError(f"span empty: [{start}, {stop})")
    completed = sorted(
        (t for t in traces if t.is_complete()), key=lambda t: t.client_receive
    )
    tiers: set[str] = {NETWORK_LABEL}
    for trace in completed:
        tiers.update(v.tier for v in trace.visits)

    window_starts: list[Micros] = []
    sums: dict[str, list[float]] = {tier: [] for tier in tiers}
    counts: list[int] = []

    t = start
    index = 0
    while t < stop:
        end = min(t + window_us, stop)
        bucket: list[dict[str, float]] = []
        while index < len(completed) and completed[index].client_receive < end:
            if completed[index].client_receive >= t:
                bucket.append(request_breakdown_ms(completed[index]))
            index += 1
        window_starts.append(t)
        counts.append(len(bucket))
        for tier in tiers:
            total = sum(b.get(tier, 0.0) for b in bucket)
            sums[tier].append(total / len(bucket) if bucket else 0.0)
        t = end

    return {
        tier: Series.from_pairs(zip(window_starts, values))
        for tier, values in sums.items()
    }
