"""Markdown investigation reports.

Bundles everything milliScope learned about a monitoring session into
one human-readable document: traffic summary, point-in-time response
times (with sparklines), anomaly diagnoses, the slowest requests, and
per-interaction statistics.  The output is the artifact a performance
engineer would attach to an incident ticket.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.anomaly import cluster_anomaly_windows, detect_vlrt
from repro.analysis.diagnosis import Diagnoser
from repro.analysis.render import sparkline
from repro.analysis.response_time import (
    completions_from_warehouse,
    point_in_time_response_times,
)
from repro.analysis.series import Series
from repro.common.errors import AnalysisError
from repro.common.timebase import ms
from repro.warehouse.db import MScopeDB
from repro.warehouse.explorer import WarehouseExplorer

__all__ = ["build_markdown_report", "write_markdown_report"]


def build_markdown_report(
    db: MScopeDB,
    epoch_us: int = 0,
    front_table: str = "apache_events_web1",
    title: str = "milliScope investigation report",
) -> str:
    """Render the full investigation as a Markdown document."""
    explorer = WarehouseExplorer(db, front_table=front_table, epoch_us=epoch_us)
    completions = completions_from_warehouse(db, front_table, epoch_us)
    if not completions:
        raise AnalysisError("warehouse has no completed requests to report on")
    horizon = max(c.completed_at for c in completions)
    lines: list[str] = [f"# {title}", ""]

    # -- session summary ------------------------------------------------
    total_rt = sum(c.response_time_us for c in completions)
    mean_ms = total_rt / len(completions) / 1000.0
    lines += [
        "## Session",
        "",
        f"* requests: **{len(completions)}** over "
        f"{horizon / 1e6:.1f} s simulated",
        f"* mean response time: **{mean_ms:.2f} ms**",
        f"* hosts: {', '.join(explorer.hosts()) or 'unregistered'}",
        f"* warehouse tables: {len(db.dynamic_tables())} "
        f"({len(explorer.event_tables())} event, "
        f"{len(explorer.resource_tables())} resource)",
        "",
    ]

    # -- point-in-time response time ------------------------------------
    windows = point_in_time_response_times(completions, ms(50), 0, horizon)
    pit = Series.from_pairs((w.start, w.max_ms) for w in windows)
    lines += [
        "## Point-in-time response time (50 ms windows)",
        "",
        "```",
        f"max RT ms  {sparkline(pit, width=70)}",
        f"peak {pit.max():.1f} ms / mean {mean_ms:.1f} ms",
        "```",
        "",
    ]

    # -- anomalies -------------------------------------------------------
    vlrts = detect_vlrt(completions)
    windows_found = cluster_anomaly_windows(vlrts)
    lines += ["## Anomalies", ""]
    if windows_found:
        reports = Diagnoser(db, front_table=front_table, epoch_us=epoch_us).diagnose()
        for report in reports:
            lines += ["```", report.to_text(), "```", ""]
    else:
        lines += ["No VLRT requests detected — the session looks healthy.", ""]

    # -- slowest requests -------------------------------------------------
    lines += [
        "## Slowest requests",
        "",
        "| request | interaction | response (ms) | completed at (s) |",
        "|---|---|---:|---:|",
    ]
    for slow in explorer.slowest_requests(5):
        lines.append(
            f"| `{slow.request_id}` | {slow.interaction} "
            f"| {slow.response_ms:.1f} | {slow.completed_at_us / 1e6:.3f} |"
        )
    lines.append("")

    # -- per-interaction stats --------------------------------------------
    lines += [
        "## Interactions",
        "",
        "| interaction | count | mean (ms) | max (ms) |",
        "|---|---:|---:|---:|",
    ]
    for stats in explorer.interaction_stats():
        lines.append(
            f"| {stats.interaction} | {stats.count} "
            f"| {stats.mean_ms:.2f} | {stats.max_ms:.1f} |"
        )
    lines.append("")
    return "\n".join(lines)


def write_markdown_report(
    db: MScopeDB,
    destination: Path | str,
    epoch_us: int = 0,
    front_table: str = "apache_events_web1",
) -> Path:
    """Write the report to ``destination`` and return the path."""
    destination = Path(destination)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(
        build_markdown_report(db, epoch_us=epoch_us, front_table=front_table)
    )
    return destination
