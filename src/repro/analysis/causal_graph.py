"""Causal graphs over reconstructed execution paths.

Builds a networkx DAG from a request's tier visits: nodes are visits,
edges are happens-before relations (caller → callee for downstream
calls, sequential order between sibling visits).  The weighted longest
path is the request's *critical path* — the chain of local times that
actually determined its response time, which is where optimization
effort should go.
"""

from __future__ import annotations

import networkx as nx

from repro.analysis.causal import CausalHop, CausalPath
from repro.common.errors import AnalysisError

__all__ = ["path_to_graph", "critical_path", "critical_path_ms"]

#: Node attribute keys.
_TIER = "tier"
_LOCAL_MS = "local_ms"


def _node_id(index: int, hop: CausalHop) -> str:
    return f"{index}:{hop.tier}"


def path_to_graph(path: CausalPath) -> nx.DiGraph:
    """Build the happens-before DAG of one request.

    A hop *contains* another when the other's span nests inside its
    downstream window; contained hops become children.  Hops that
    share a parent are ordered sequentially by arrival.
    """
    if not path.hops:
        raise AnalysisError(f"request {path.request_id} has no hops")
    graph = nx.DiGraph(request_id=path.request_id)
    ordered = sorted(path.hops, key=lambda h: h.upstream_arrival_us)
    ids = [_node_id(i, hop) for i, hop in enumerate(ordered)]
    for node, hop in zip(ids, ordered):
        graph.add_node(
            node,
            **{
                _TIER: hop.tier,
                _LOCAL_MS: hop.local_time_ms(),
                "arrival_us": hop.upstream_arrival_us,
                "departure_us": hop.upstream_departure_us,
            },
        )

    def contains(parent: CausalHop, child: CausalHop) -> bool:
        if parent is child:
            return False
        if (
            parent.downstream_sending_us is None
            or parent.downstream_receiving_us is None
        ):
            return False
        return (
            parent.downstream_sending_us <= child.upstream_arrival_us
            and child.upstream_departure_us <= parent.downstream_receiving_us
        )

    # Parent = the *smallest* containing hop (innermost caller).
    parents: dict[int, int | None] = {}
    for i, hop in enumerate(ordered):
        candidates = [
            j
            for j, other in enumerate(ordered)
            if contains(other, hop)
        ]
        if candidates:
            parents[i] = min(
                candidates,
                key=lambda j: ordered[j].upstream_departure_us
                - ordered[j].upstream_arrival_us,
            )
        else:
            parents[i] = None

    # Edges: parent -> child, plus sequential edges between siblings.
    children: dict[int | None, list[int]] = {}
    for i, parent in parents.items():
        children.setdefault(parent, []).append(i)
    for parent, kids in children.items():
        kids.sort(key=lambda i: ordered[i].upstream_arrival_us)
        if parent is not None:
            graph.add_edge(ids[parent], ids[kids[0]], relation="calls")
        for a, b in zip(kids, kids[1:]):
            graph.add_edge(ids[a], ids[b], relation="then")
    if not nx.is_directed_acyclic_graph(graph):
        raise AnalysisError(f"request {path.request_id} graph has a cycle")
    return graph


def critical_path(path: CausalPath) -> list[str]:
    """Node ids of the node-weighted longest chain through the DAG."""
    graph = path_to_graph(path)
    best: dict[str, tuple[float, list[str]]] = {}
    for node in nx.topological_sort(graph):
        weight = graph.nodes[node][_LOCAL_MS]
        incoming = [
            best[pred] for pred in graph.predecessors(node) if pred in best
        ]
        if incoming:
            base_weight, base_chain = max(incoming, key=lambda wc: wc[0])
        else:
            base_weight, base_chain = 0.0, []
        best[node] = (base_weight + weight, base_chain + [node])
    return max(best.values(), key=lambda wc: wc[0])[1]


def critical_path_ms(path: CausalPath) -> float:
    """Total local time along the critical path (ms)."""
    graph = path_to_graph(path)
    nodes = critical_path(path)
    return sum(graph.nodes[n][_LOCAL_MS] for n in nodes)
