"""Analysis over mScopeDB: response times, queues, causality, diagnosis."""

from repro.analysis.breakdown import (
    NETWORK_LABEL,
    request_breakdown_ms,
    tier_latency_series,
)
from repro.analysis.causal_graph import (
    critical_path,
    critical_path_ms,
    path_to_graph,
)
from repro.analysis.lag import (
    LagResult,
    correlation_with_pvalue,
    lagged_correlation,
)
from repro.analysis.export import to_chrome_trace, to_span_tree, write_chrome_trace
from repro.analysis.render import ascii_chart, sparkline
from repro.analysis.skew import (
    SkewEstimate,
    estimate_pairwise_offset,
    estimate_tier_offsets,
)
from repro.analysis.report import build_markdown_report, write_markdown_report
from repro.analysis.anomaly import (
    AnomalyWindow,
    VlrtRequest,
    cluster_anomaly_windows,
    detect_vlrt,
)
from repro.analysis.cache import SeriesCache
from repro.analysis.causal import (
    CausalHop,
    CausalPath,
    DEFAULT_EVENT_TABLES,
    reconstruct_path,
    reconstruct_paths_bulk,
)
from repro.analysis.diagnosis import (
    Diagnoser,
    DiagnosisReport,
    QueueFinding,
    RootCause,
)
from repro.analysis.metrics import MetricCandidate, discover_candidates, metric_series
from repro.analysis.queues import (
    concurrency_from_sorted,
    concurrency_series,
    spans_from_traces,
    spans_from_warehouse,
    tier_queue_lengths,
)
from repro.analysis.response_time import (
    CompletionSample,
    PointInTimeWindow,
    completions_from_traces,
    completions_from_warehouse,
    percentile_windows,
    point_in_time_response_times,
    sampled_average_response_times,
)
from repro.analysis.series import Series, pearson_correlation

__all__ = [
    "AnomalyWindow",
    "CausalHop",
    "CausalPath",
    "CompletionSample",
    "DEFAULT_EVENT_TABLES",
    "Diagnoser",
    "DiagnosisReport",
    "LagResult",
    "ascii_chart",
    "build_markdown_report",
    "to_chrome_trace",
    "to_span_tree",
    "write_chrome_trace",
    "write_markdown_report",
    "correlation_with_pvalue",
    "critical_path",
    "critical_path_ms",
    "lagged_correlation",
    "path_to_graph",
    "sparkline",
    "MetricCandidate",
    "NETWORK_LABEL",
    "PointInTimeWindow",
    "QueueFinding",
    "RootCause",
    "Series",
    "SeriesCache",
    "SkewEstimate",
    "VlrtRequest",
    "estimate_pairwise_offset",
    "estimate_tier_offsets",
    "cluster_anomaly_windows",
    "completions_from_traces",
    "completions_from_warehouse",
    "concurrency_from_sorted",
    "concurrency_series",
    "detect_vlrt",
    "discover_candidates",
    "metric_series",
    "pearson_correlation",
    "percentile_windows",
    "point_in_time_response_times",
    "reconstruct_path",
    "reconstruct_paths_bulk",
    "request_breakdown_ms",
    "sampled_average_response_times",
    "spans_from_traces",
    "spans_from_warehouse",
    "tier_latency_series",
    "tier_queue_lengths",
]
