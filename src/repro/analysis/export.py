"""Trace export to standard tooling formats.

milliScope reconstructs per-request execution paths; modern trace
viewers already know how to display them.  Two exporters:

* :func:`to_chrome_trace` — the Chrome trace-event format
  (``chrome://tracing`` / Perfetto): one complete ("X") event per tier
  visit, tiers as process rows.
* :func:`to_span_tree` — an OpenTelemetry-like span list (dicts with
  ``traceId`` / ``spanId`` / ``parentSpanId`` / nanosecond times),
  nesting inferred from the downstream windows.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.causal import CausalPath
from repro.common.errors import AnalysisError

__all__ = ["to_chrome_trace", "to_span_tree", "write_chrome_trace"]


def to_chrome_trace(paths: list[CausalPath]) -> dict:
    """Render causal paths as a Chrome trace-event document."""
    if not paths:
        raise AnalysisError("no paths to export")
    events = []
    tiers: dict[str, int] = {}
    for path in paths:
        for hop in path.hops:
            pid = tiers.setdefault(hop.tier, len(tiers) + 1)
            events.append(
                {
                    "name": f"{path.request_id}",
                    "cat": hop.tier,
                    "ph": "X",
                    "ts": hop.upstream_arrival_us,
                    "dur": hop.upstream_departure_us - hop.upstream_arrival_us,
                    "pid": pid,
                    "tid": 1,
                    "args": {
                        "request_id": path.request_id,
                        "local_ms": hop.local_time_ms(),
                    },
                }
            )
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": tier},
        }
        for tier, pid in tiers.items()
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(paths: list[CausalPath], destination: Path | str) -> Path:
    """Write the Chrome trace JSON to ``destination``."""
    destination = Path(destination)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(json.dumps(to_chrome_trace(paths), indent=1))
    return destination


def _span_id(request_id: str, index: int) -> str:
    return f"{request_id}-{index:04d}"


def to_span_tree(path: CausalPath) -> list[dict]:
    """Render one causal path as OpenTelemetry-style span dicts.

    A hop's parent is the *innermost* hop whose downstream window
    contains it — the same containment rule the causal graph uses.
    """
    if not path.hops:
        raise AnalysisError(f"request {path.request_id} has no hops")
    ordered = sorted(path.hops, key=lambda h: h.upstream_arrival_us)

    def contains(parent, child) -> bool:
        if parent is child:
            return False
        if parent.downstream_sending_us is None:
            return False
        return (
            parent.downstream_sending_us <= child.upstream_arrival_us
            and child.upstream_departure_us <= parent.downstream_receiving_us
        )

    spans = []
    for index, hop in enumerate(ordered):
        candidates = [
            j for j, other in enumerate(ordered) if contains(other, hop)
        ]
        parent_index = (
            min(
                candidates,
                key=lambda j: ordered[j].upstream_departure_us
                - ordered[j].upstream_arrival_us,
            )
            if candidates
            else None
        )
        spans.append(
            {
                "traceId": path.request_id,
                "spanId": _span_id(path.request_id, index),
                "parentSpanId": (
                    _span_id(path.request_id, parent_index)
                    if parent_index is not None
                    else None
                ),
                "name": hop.tier,
                "startTimeUnixNano": hop.upstream_arrival_us * 1_000,
                "endTimeUnixNano": hop.upstream_departure_us * 1_000,
                "attributes": {
                    "tier": hop.tier,
                    "local_ms": hop.local_time_ms(),
                },
            }
        )
    return spans
