"""Columnar series cache for the bulk analysis engine.

The scalar diagnosis path re-pulled every metric series from the
warehouse *per anomaly window* and re-fetched every tier's boundary
timestamps per window on top — an N+1 query pattern that dominates
diagnosis time on large warehouses.  :class:`SeriesCache` inverts
that: each warehouse table is read **once per diagnosis run** into
numpy columns, and every window afterwards is served by
``np.searchsorted`` slicing (O(log n)) against the cached arrays.

Three caches live here:

* **metric series** — one full :class:`~repro.analysis.series.Series`
  per ``(table, columns)`` pair, rebased onto simulation time;
* **tier boundary arrays** — per event table, the sorted arrival and
  departure arrays the queue-length kernel grids against;
* **resampled grids** — step-resampled series memoized by ``(key,
  grid)``, so aligning the same series onto the same window grid
  twice (candidates sharing a monitor table do this constantly) costs
  one dict hit.

Loads are credited to telemetry spans (``analysis.load_metric`` /
``analysis.load_spans``) when the owning engine measures itself.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.analysis.metrics import metric_series
from repro.analysis.queues import concurrency_from_sorted
from repro.analysis.response_time import IN_FLIGHT_SLACK_US
from repro.analysis.series import Series
from repro.common.timebase import Micros
from repro.telemetry.spans import NULL_PROBE, SpanData, SpanProbe
from repro.warehouse.db import MScopeDB, quote_identifier

__all__ = ["SeriesCache"]


class SeriesCache:
    """Per-run columnar cache over one warehouse's series tables.

    Parameters
    ----------
    db:
        The populated warehouse.
    epoch_us:
        Epoch offset rebasing warehouse wall timestamps onto
        simulation time zero (applied once, at load).
    probe / spans:
        Optional telemetry measurement side: loads open spans into
        ``spans`` via ``probe``, which the owning engine ingests in
        deterministic order.
    bounds:
        Optional ``(start, stop)`` simulation-time window restricting
        every load (either side may be ``None`` for half-open).  The
        windowed-diagnosis path: on a sharded warehouse each load then
        prunes to the shards its window overlaps instead of scanning
        the whole history.  Event-table span loads keep requests that
        *arrived* up to ``IN_FLIGHT_SLACK_US`` before ``start``, since
        those may still occupy a queue inside the window.

    The cache holds **loaded data only** — it never invalidates, by
    design: a diagnosis run analyzes one immutable warehouse snapshot.
    Build a fresh cache (or call :meth:`clear`) to observe new loads.
    """

    def __init__(
        self,
        db: MScopeDB,
        epoch_us: int = 0,
        probe: SpanProbe = NULL_PROBE,
        spans: list[SpanData] | None = None,
        bounds: tuple[Micros | None, Micros | None] | None = None,
    ) -> None:
        self.db = db
        self.epoch_us = epoch_us
        self.bounds = bounds
        self._probe = probe
        self._spans: list[SpanData] = spans if spans is not None else []
        self._metrics: dict[tuple[str, tuple[str, ...]], Series] = {}
        self._tier_spans: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._resampled: dict[tuple[Hashable, bytes], Series] = {}
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        """Drop everything cached (e.g. after the warehouse changed)."""
        self._metrics.clear()
        self._tier_spans.clear()
        self._resampled.clear()

    # ------------------------------------------------------------------
    # metric series

    def metric(self, table: str, columns: Sequence[str]) -> Series:
        """The full metric series of ``(table, columns)``, loaded once."""
        key = (table, tuple(columns))
        series = self._metrics.get(key)
        if series is not None:
            self.hits += 1
            return series
        self.misses += 1
        start, stop = self.bounds if self.bounds is not None else (None, None)
        with self._probe.span(
            self._spans, "analysis.load_metric", source_path=table
        ) as span:
            series = metric_series(
                self.db,
                table,
                tuple(columns),
                epoch_us=self.epoch_us,
                start=start,
                stop=stop,
            )
            span.add(records=len(series))
        self._metrics[key] = series
        return series

    def window(
        self, table: str, columns: Sequence[str], start: Micros, stop: Micros
    ) -> Series:
        """A ``[start, stop)`` slice of the cached series — two binary
        searches against the loaded arrays, no SQL."""
        return self.metric(table, columns).window(start, stop)

    def resampled(
        self, table: str, columns: Sequence[str], grid: Sequence[Micros]
    ) -> Series:
        """The cached metric series step-resampled onto ``grid``,
        memoized by ``(table, columns, grid)``."""
        return self.resample_keyed(
            (table, tuple(columns)), self.metric(table, columns), grid
        )

    def resample_keyed(
        self, key: Hashable, series: Series, grid: Sequence[Micros]
    ) -> Series:
        """Memoized step-resample of any series under a caller key.

        The diagnosis engine aligns the front tier's queue series onto
        each candidate's sample grid; candidates sharing a monitor
        table share the grid, so the second alignment is a dict hit.
        """
        grid_arr = np.asarray(list(grid), dtype=np.int64)
        cache_key = (key, grid_arr.tobytes())
        resampled = self._resampled.get(cache_key)
        if resampled is not None:
            self.hits += 1
            return resampled
        self.misses += 1
        resampled = series.resample(grid_arr)
        self._resampled[cache_key] = resampled
        return resampled

    # ------------------------------------------------------------------
    # event-table boundary arrays

    def tier_spans(self, table: str) -> tuple[np.ndarray, np.ndarray]:
        """One event table's sorted (arrivals, departures) arrays.

        Loaded once per run; every anomaly window's queue-length grid
        re-uses them through :func:`concurrency_from_sorted`.
        """
        cached = self._tier_spans.get(table)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        start, stop = self.bounds if self.bounds is not None else (None, None)
        # A request that arrived before the window may still be in
        # flight inside it; keep arrivals back to start - slack.
        wh_start = (
            start + self.epoch_us - IN_FLIGHT_SLACK_US
            if start is not None
            else None
        )
        wh_stop = stop + self.epoch_us if stop is not None else None
        columnar = getattr(self.db, "columnar_spans", None)
        if columnar is not None:
            arrays = columnar(table, wh_start, wh_stop)
            if arrays is not None:
                arrivals = arrays[0] - self.epoch_us
                departures = arrays[1] - self.epoch_us
                self._tier_spans[table] = (arrivals, departures)
                return arrivals, departures
        sql = (
            f"SELECT upstream_arrival_us, upstream_departure_us "
            f"FROM {quote_identifier(table)} "
            f"WHERE upstream_departure_us IS NOT NULL"
        )
        params: list = []
        if wh_start is not None:
            sql += " AND upstream_arrival_us >= ?"
            params.append(wh_start)
        if wh_stop is not None:
            sql += " AND upstream_arrival_us < ?"
            params.append(wh_stop)
        with self._probe.span(
            self._spans, "analysis.load_spans", source_path=table
        ) as span:
            with self.db.pruned(wh_start, wh_stop):
                rows = self.db.query(sql, params)
            span.add(records=len(rows))
        if rows:
            data = np.asarray(rows, dtype=np.int64) - self.epoch_us
            arrivals = np.sort(data[:, 0])
            departures = np.sort(data[:, 1])
        else:
            arrivals = np.array([], dtype=np.int64)
            departures = np.array([], dtype=np.int64)
        self._tier_spans[table] = (arrivals, departures)
        return arrivals, departures

    def queue_series(
        self,
        tables: str | Iterable[str],
        start: Micros,
        stop: Micros,
        step: Micros,
    ) -> Series:
        """A tier's queue-length series over ``[start, stop)``.

        ``tables`` may be one event table or several (a replicated
        tier's per-host tables aggregate into one logical series,
        matching :func:`~repro.analysis.queues.tier_queue_lengths`).
        """
        if isinstance(tables, str):
            tables = [tables]
        parts = [self.tier_spans(table) for table in tables]
        if len(parts) == 1:
            arrivals, departures = parts[0]
        else:
            arrivals = np.sort(np.concatenate([p[0] for p in parts]))
            departures = np.sort(np.concatenate([p[1] for p in parts]))
        return concurrency_from_sorted(arrivals, departures, start, stop, step)
