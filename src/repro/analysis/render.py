"""Terminal rendering of analysis series.

The repository has no plotting dependency; these helpers render a
:class:`~repro.analysis.series.Series` as a compact ASCII chart so the
examples can *show* the paper's figures in a terminal.
"""

from __future__ import annotations

from repro.analysis.series import Series
from repro.common.errors import AnalysisError

__all__ = ["sparkline", "ascii_chart"]

_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def sparkline(series: Series, width: int = 60) -> str:
    """One-line sparkline of the series, resampled to ``width`` points."""
    if series.is_empty():
        raise AnalysisError("cannot render an empty series")
    if width < 1:
        raise AnalysisError(f"width must be positive: {width}")
    start, stop = int(series.times[0]), int(series.times[-1])
    if stop == start:
        grid = [start]
    else:
        step = max(1, (stop - start) // width)
        grid = list(range(start, stop, step))[:width]
    resampled = series.resample(grid)
    low = float(resampled.values.min())
    high = float(resampled.values.max())
    span = high - low
    cells = []
    for value in resampled.values:
        if span == 0:
            level = 0
        else:
            level = round((value - low) / span * (len(_SPARK_LEVELS) - 1))
        cells.append(_SPARK_LEVELS[level])
    return "".join(cells)


def ascii_chart(
    series: Series,
    width: int = 60,
    height: int = 10,
    label: str = "",
) -> str:
    """A multi-line ASCII chart with a value axis.

    Examples
    --------
    >>> s = Series.from_pairs([(i, float(i % 7)) for i in range(100)])
    >>> print(ascii_chart(s, width=20, height=4))  # doctest: +SKIP
    """
    if series.is_empty():
        raise AnalysisError("cannot render an empty series")
    if width < 1 or height < 2:
        raise AnalysisError("chart needs width >= 1 and height >= 2")
    start, stop = int(series.times[0]), int(series.times[-1])
    if stop == start:
        grid = [start]
    else:
        step = max(1, (stop - start) // width)
        grid = list(range(start, stop, step))[:width]
    resampled = series.resample(grid)
    low = float(resampled.values.min())
    high = float(resampled.values.max())
    span = high - low or 1.0

    rows = []
    for row in range(height, 0, -1):
        threshold = low + span * (row - 0.5) / height
        cells = "".join(
            "█" if value >= threshold else " " for value in resampled.values
        )
        axis = f"{low + span * row / height:8.1f} |"
        rows.append(axis + cells)
    footer = " " * 9 + "+" + "-" * len(grid)
    time_axis = (
        " " * 10
        + f"{start / 1e6:<.2f}s"
        + " " * max(1, len(grid) - 12)
        + f"{stop / 1e6:>.2f}s"
    )
    title = f"  {label}" if label else ""
    return "\n".join(([title] if title else []) + rows + [footer, time_axis])
