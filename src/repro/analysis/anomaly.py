"""VLRT detection and anomaly-window clustering.

Very long response time (VLRT) requests take one to two orders of
magnitude longer than the average.  Because the bottlenecks causing
them live for only tens to hundreds of milliseconds, detection works
on individual completions, never on period averages.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.response_time import CompletionSample
from repro.common.errors import AnalysisError
from repro.common.timebase import Micros, ms, to_ms

__all__ = ["VlrtRequest", "AnomalyWindow", "detect_vlrt", "cluster_anomaly_windows"]


@dataclasses.dataclass(frozen=True, slots=True)
class VlrtRequest:
    """One very-long-response-time request."""

    request_id: str
    completed_at: Micros
    response_time_us: Micros

    @property
    def started_at(self) -> Micros:
        return self.completed_at - self.response_time_us

    def response_time_ms(self) -> float:
        return to_ms(self.response_time_us)


@dataclasses.dataclass(frozen=True, slots=True)
class AnomalyWindow:
    """A contiguous span containing clustered VLRT requests."""

    start: Micros
    stop: Micros
    vlrt_count: int
    peak_response_ms: float


def detect_vlrt(
    samples: list[CompletionSample],
    threshold_factor: float = 10.0,
    min_response_ms: float = 50.0,
    baseline_us: Micros | None = None,
) -> list[VlrtRequest]:
    """Completions whose response time is anomalously long.

    A request qualifies when its response time exceeds both
    ``threshold_factor`` × the population *median* and
    ``min_response_ms``.  The median — not the mean — is the baseline:
    the VLRT requests themselves inflate the mean enough to hide a
    large anomaly, while the median tracks what a normal request
    costs.  The absolute floor keeps a fast, idle system from
    flagging noise.

    ``baseline_us`` overrides the median estimation entirely — the
    Diagnoser passes a ledger-corrected baseline when a tail-sampling
    policy skewed the surviving population toward slow requests (a
    raw median over that population would inflate the cutoff and hide
    the anomaly).
    """
    if threshold_factor <= 1.0:
        raise AnalysisError("threshold factor must exceed 1")
    if not samples:
        return []
    if baseline_us is not None:
        median_rt = baseline_us
    else:
        ordered = sorted(s.response_time_us for s in samples)
        median_rt = ordered[len(ordered) // 2]
        # When the anomaly dominates the snapshot — a fault in the
        # first 100 ms of a short run can make VLRTs the *majority* of
        # logged completions — the median itself is inflated by an
        # order of magnitude and the window silently vanishes from
        # diagnosis.  The lower quartile still tracks normal-request
        # cost in that regime: fall back to it whenever the median
        # sits implausibly far above it (the same factor that defines
        # "anomalous" in the first place).
        lower_quartile = ordered[len(ordered) // 4]
        if lower_quartile > 0 and median_rt > threshold_factor * lower_quartile:
            median_rt = lower_quartile
    cutoff = max(median_rt * threshold_factor, ms(min_response_ms))
    return [
        VlrtRequest(s.request_id, s.completed_at, s.response_time_us)
        for s in samples
        if s.response_time_us > cutoff
    ]


def cluster_anomaly_windows(
    vlrts: list[VlrtRequest],
    gap_us: Micros = ms(500),
    margin_us: Micros = ms(100),
) -> list[AnomalyWindow]:
    """Group VLRT requests into anomaly windows.

    Each window spans from the earliest *start* of its member requests
    (a VLRT was queued somewhere for most of its lifetime) to the last
    completion, padded by ``margin_us``; requests closer than
    ``gap_us`` merge into the same window.
    """
    if not vlrts:
        return []
    ordered = sorted(vlrts, key=lambda v: v.started_at)
    windows: list[AnomalyWindow] = []
    group: list[VlrtRequest] = [ordered[0]]
    for vlrt in ordered[1:]:
        if vlrt.started_at - max(g.completed_at for g in group) <= gap_us:
            group.append(vlrt)
        else:
            windows.append(_window_from(group, margin_us))
            group = [vlrt]
    windows.append(_window_from(group, margin_us))
    return windows


def _window_from(group: list[VlrtRequest], margin_us: Micros) -> AnomalyWindow:
    start = min(v.started_at for v in group) - margin_us
    stop = max(v.completed_at for v in group) + margin_us
    peak = max(v.response_time_ms() for v in group)
    return AnomalyWindow(
        start=max(0, start),
        stop=stop,
        vlrt_count=len(group),
        peak_response_ms=peak,
    )
