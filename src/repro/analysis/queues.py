"""Per-tier instantaneous queue lengths from boundary timestamps.

The paper derives each tier's *queue length* — the number of requests
that have arrived but not yet departed — purely from the event
mScopeMonitors' four timestamps (Figures 6, 8b, 9).  Because the
monitors trace **every** request, the count is exact, not a sampled
estimate; that exactness is milliScope's argument against
sampling-based tracers.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import AnalysisError
from repro.common.records import RequestTrace
from repro.common.timebase import Micros
from repro.analysis.series import Series
from repro.warehouse.db import MScopeDB, quote_identifier

__all__ = [
    "spans_from_warehouse",
    "spans_from_traces",
    "concurrency_from_sorted",
    "concurrency_series",
    "tier_queue_lengths",
]

Span = tuple[Micros, Micros]


def spans_from_warehouse(
    db: MScopeDB, table: str, epoch_us: int = 0
) -> list[Span]:
    """``(arrival, departure)`` spans from one tier's event table."""
    rows = db.query(
        f"SELECT upstream_arrival_us, upstream_departure_us "
        f"FROM {quote_identifier(table)} "
        f"WHERE upstream_departure_us IS NOT NULL"
    )
    return [(a - epoch_us, d - epoch_us) for a, d in rows]


def spans_from_traces(traces: list[RequestTrace], tier: str) -> list[Span]:
    """``(arrival, departure)`` spans for one tier from ground truth."""
    spans: list[Span] = []
    for trace in traces:
        for visit in trace.visits_for(tier):
            if visit.upstream_departure is not None:
                spans.append((visit.upstream_arrival, visit.upstream_departure))
    return spans


def concurrency_from_sorted(
    arrivals: np.ndarray,
    departures: np.ndarray,
    start: Micros,
    stop: Micros,
    step: Micros,
) -> Series:
    """Concurrency at each grid point, from pre-sorted boundary arrays.

    The kernel behind :func:`concurrency_series`, split out so the
    :class:`~repro.analysis.cache.SeriesCache` can sort each tier's
    boundary arrays once per diagnosis run and re-grid every anomaly
    window against them with two ``searchsorted`` calls.
    """
    if step <= 0:
        raise AnalysisError(f"grid step must be positive: {step}")
    if stop <= start:
        raise AnalysisError(f"grid span empty: [{start}, {stop})")
    grid = np.arange(start, stop, step, dtype=np.int64)
    if not len(arrivals):
        return Series(grid, np.zeros(len(grid)))
    arrived = np.searchsorted(arrivals, grid, side="right")
    departed = np.searchsorted(departures, grid, side="right")
    return Series(grid, (arrived - departed).astype(float))


def concurrency_series(
    spans: list[Span],
    start: Micros,
    stop: Micros,
    step: Micros,
) -> Series:
    """Number of concurrent spans at each grid point in ``[start, stop)``.

    A span covers grid point ``t`` when ``arrival <= t < departure``.
    """
    if not spans:
        arrivals = np.array([], dtype=np.int64)
        departures = np.array([], dtype=np.int64)
    else:
        arrivals = np.sort(np.array([s[0] for s in spans], dtype=np.int64))
        departures = np.sort(np.array([s[1] for s in spans], dtype=np.int64))
    return concurrency_from_sorted(arrivals, departures, start, stop, step)


def tier_queue_lengths(
    db: MScopeDB,
    tier_tables: "dict[str, str | list[str]]",
    start: Micros,
    stop: Micros,
    step: Micros,
    epoch_us: int = 0,
) -> dict[str, Series]:
    """Queue-length series for several tiers from warehouse tables.

    ``tier_tables`` maps tier name → event table name(s).  A list of
    tables (a replicated tier's per-host tables, e.g.
    ``["tomcat_events_app1", "tomcat_events_app2"]``) aggregates into
    one logical-tier series.
    """
    result: dict[str, Series] = {}
    for tier, tables in tier_tables.items():
        if isinstance(tables, str):
            tables = [tables]
        spans: list[Span] = []
        for table in tables:
            spans.extend(spans_from_warehouse(db, table, epoch_us))
        result[tier] = concurrency_series(spans, start, stop, step)
    return result
