"""RUBBoS workload generation.

The benchmark's load unit is the *concurrent user*: each emulated user
alternates between an exponentially distributed think time and one
interaction chosen from a mix.  ``workload = number of users`` exactly
as the paper uses the term ("the value of the workload represents the
number of concurrent users").
"""

from __future__ import annotations

import dataclasses
import random

from repro.common.errors import ConfigError
from repro.common.timebase import Micros, ms
from repro.rubbos.interactions import (
    BROWSE_ONLY_MIX,
    FANOUT_MIX,
    READ_WRITE_MIX,
    InteractionProfile,
    default_interactions,
    fanout_interactions,
)

__all__ = ["InteractionMix", "WorkloadSpec"]


class InteractionMix:
    """A weighted interaction mix with deterministic sampling.

    Parameters
    ----------
    profiles:
        The interactions and their weights (``weight`` field).
    """

    def __init__(self, profiles: tuple[InteractionProfile, ...]) -> None:
        active = [p for p in profiles if p.weight > 0]
        if not active:
            raise ConfigError("interaction mix has no positive-weight entries")
        self._profiles = active
        self._weights = [p.weight for p in active]
        total = sum(self._weights)
        self._write_share = (
            sum(p.weight for p in active if p.is_write) / total
        )

    @classmethod
    def named(cls, name: str) -> "InteractionMix":
        """Build one of the standard mixes (read-write, browse-only, fanout)."""
        profiles = default_interactions()
        if name == READ_WRITE_MIX:
            return cls(profiles)
        if name == BROWSE_ONLY_MIX:
            reads = tuple(p for p in profiles if not p.is_write)
            return cls(reads)
        if name == FANOUT_MIX:
            return cls(fanout_interactions())
        raise ConfigError(f"unknown interaction mix {name!r}")

    @property
    def profiles(self) -> list[InteractionProfile]:
        """Active interactions in this mix."""
        return list(self._profiles)

    @property
    def write_share(self) -> float:
        """Fraction of the mix weight on write interactions."""
        return self._write_share

    def sample(self, rng: random.Random) -> InteractionProfile:
        """Draw one interaction according to the mix weights."""
        return rng.choices(self._profiles, weights=self._weights, k=1)[0]


@dataclasses.dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Client-side workload parameters.

    Parameters
    ----------
    users:
        Number of concurrent emulated users (the paper's "workload").
    think_time_us:
        Mean of the exponential think time.  RUBBoS's default is 7 s;
        scenario experiments shorten it to raise request rates with
        fewer user processes.
    ramp_up_us:
        Users start uniformly spread over this interval so the first
        samples are not a synchronized thundering herd.
    mix_name:
        ``"read_write"``, ``"browse_only"``, or ``"fanout"``.
    session_model:
        ``"weighted"`` draws interactions independently from the mix;
        ``"markov"`` walks the RUBBoS transition table per user (the
        real benchmark's behaviour).
    """

    users: int
    think_time_us: Micros = ms(7_000)
    ramp_up_us: Micros = ms(1_000)
    mix_name: str = READ_WRITE_MIX
    session_model: str = "weighted"

    def validate(self) -> None:
        """Raise :class:`ConfigError` on an impossible workload."""
        if self.users < 1:
            raise ConfigError(f"workload needs >= 1 user, got {self.users}")
        if self.think_time_us < 0 or self.ramp_up_us < 0:
            raise ConfigError("think/ramp times must be non-negative")
        if self.session_model not in ("weighted", "markov"):
            raise ConfigError(f"unknown session model {self.session_model!r}")

    def build_mix(self) -> InteractionMix:
        """Instantiate the interaction mix this spec names."""
        return InteractionMix.named(self.mix_name)
