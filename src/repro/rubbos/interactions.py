"""The RUBBoS interaction catalog.

RUBBoS (the Rice University Bulletin Board System benchmark) models a
Slashdot-style news site.  Its workload consists of 24 distinct
interactions — browsing stories, searching, registering, submitting and
moderating content — each exercising the four tiers differently.

Every interaction here carries a *demand profile*: CPU time on Apache
and Tomcat, and a list of SQL queries, each with C-JDBC routing cost,
MySQL CPU cost, a probability of missing the buffer pool (and thus
reading from disk), and, for writes, a synchronous commit record that
lands in the database log.  The numbers are calibrated so a lightly
loaded system answers in a few milliseconds and the read/write mix
roughly matches the benchmark's read-heavy behaviour; absolute values
are not meant to match any specific testbed.
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import ConfigError

__all__ = [
    "QuerySpec",
    "InteractionProfile",
    "default_interactions",
    "fanout_interactions",
    "interaction_by_name",
    "READ_WRITE_MIX",
    "BROWSE_ONLY_MIX",
    "FANOUT_MIX",
]


@dataclasses.dataclass(frozen=True, slots=True)
class QuerySpec:
    """One SQL statement issued by a servlet.

    Parameters
    ----------
    statement:
        The SQL text template (without the propagated request-ID
        comment, which the Tomcat mScopeMonitor appends).
    cjdbc_cpu_us / mysql_cpu_us:
        CPU demand on the middleware and database tiers.
    read_bytes:
        Bytes fetched from disk when the buffer pool misses.
    miss_ratio:
        Probability that this query misses the buffer pool.
    is_write:
        Whether the query modifies data (forces a synchronous log
        commit of ``commit_bytes``).
    commit_bytes:
        Size of the database log record for a write.
    """

    statement: str
    cjdbc_cpu_us: int = 150
    mysql_cpu_us: int = 700
    read_bytes: int = 16 * 1024
    miss_ratio: float = 0.05
    is_write: bool = False
    commit_bytes: int = 2 * 1024

    def __post_init__(self) -> None:
        if not 0.0 <= self.miss_ratio <= 1.0:
            raise ConfigError(f"miss_ratio out of range: {self.miss_ratio}")
        if min(self.cjdbc_cpu_us, self.mysql_cpu_us, self.read_bytes) < 0:
            raise ConfigError("query demands must be non-negative")


@dataclasses.dataclass(frozen=True, slots=True)
class InteractionProfile:
    """Demand profile of one RUBBoS interaction.

    ``weight`` is the interaction's share in the read-write mix; the
    browse-only mix zeroes the write interactions.
    """

    name: str
    apache_cpu_us: int
    tomcat_cpu_us: int
    queries: tuple[QuerySpec, ...]
    weight: float
    response_bytes: int = 8 * 1024
    #: Fan-out/fan-in call graph: the servlet issues every query
    #: *concurrently* (one branch per query, spread over the downstream
    #: replicas) and joins on all replies, instead of the default
    #: sequential statement loop.
    fanout: bool = False

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ConfigError(f"negative weight for {self.name}")
        if min(self.apache_cpu_us, self.tomcat_cpu_us) < 0:
            raise ConfigError(f"negative CPU demand for {self.name}")

    @property
    def is_write(self) -> bool:
        """Whether any query modifies data."""
        return any(q.is_write for q in self.queries)

    def total_queries(self) -> int:
        """Number of SQL statements this interaction issues."""
        return len(self.queries)


def _read(statement: str, mysql_us: int = 700, **kwargs) -> QuerySpec:
    return QuerySpec(statement, mysql_cpu_us=mysql_us, **kwargs)


def _write(statement: str, mysql_us: int = 900, **kwargs) -> QuerySpec:
    return QuerySpec(statement, mysql_cpu_us=mysql_us, is_write=True, **kwargs)


def default_interactions() -> tuple[InteractionProfile, ...]:
    """The 24 RUBBoS interactions with calibrated demand profiles."""
    i = InteractionProfile
    return (
        i("Home", 400, 900,
          (_read("SELECT id,title FROM stories ORDER BY date DESC LIMIT 10"),),
          weight=10.0),
        i("StoriesOfTheDay", 450, 1300,
          (_read("SELECT id,title FROM stories WHERE date=CURDATE()"),
           _read("SELECT count(*) FROM comments WHERE story_id=?", 500)),
          weight=12.0),
        i("Register", 350, 500, (), weight=1.0, response_bytes=4 * 1024),
        i("RegisterUser", 450, 1100,
          (_write("INSERT INTO users VALUES (?,?,?,?)"),),
          weight=0.6),
        i("BrowseCategories", 400, 800,
          (_read("SELECT id,name FROM categories"),),
          weight=8.0),
        i("BrowseStoriesByCategory", 450, 1200,
          (_read("SELECT id,title FROM stories WHERE category=?"),
           _read("SELECT count(*) FROM stories WHERE category=?", 450)),
          weight=9.0),
        i("OlderStories", 420, 1100,
          (_read("SELECT id,title FROM stories WHERE date<? LIMIT 20"),
           _read("SELECT count(*) FROM stories WHERE date<?", 400)),
          weight=6.0),
        i("ViewStory", 480, 1500,
          (_read("SELECT * FROM stories WHERE id=?", 800, read_bytes=24 * 1024),
           _read("SELECT id FROM comments WHERE story_id=?", 600)),
          weight=18.0, response_bytes=16 * 1024),
        i("ViewComment", 460, 1300,
          (_read("SELECT * FROM comments WHERE id=?", 700),
           _read("SELECT rating FROM comments WHERE id=?", 350)),
          weight=14.0),
        i("ModerateComment", 420, 1000,
          (_read("SELECT * FROM comments WHERE id=? FOR UPDATE", 650),),
          weight=1.0),
        i("StoreModerateLog", 430, 1100,
          (_write("UPDATE comments SET rating=rating+? WHERE id=?"),
           _write("INSERT INTO moderator_log VALUES (?,?,?)", 700)),
          weight=0.7),
        i("SubmitStory", 380, 700, (), weight=1.5, response_bytes=4 * 1024),
        i("StoreStory", 480, 1400,
          (_write("INSERT INTO submissions VALUES (?,?,?,?,?)", 1100,
                  commit_bytes=8 * 1024),),
          weight=1.2),
        i("SubmitComment", 400, 800,
          (_read("SELECT title FROM stories WHERE id=?", 400),),
          weight=2.0),
        i("StoreComment", 460, 1300,
          (_write("INSERT INTO comments VALUES (?,?,?,?,?)", 1000,
                  commit_bytes=4 * 1024),),
          weight=1.8),
        i("Search", 380, 600, (), weight=5.0, response_bytes=4 * 1024),
        i("SearchInStories", 500, 1600,
          (_read("SELECT id,title FROM stories WHERE title LIKE ?", 2200,
                 read_bytes=64 * 1024, miss_ratio=0.15),),
          weight=5.0),
        i("SearchInComments", 500, 1500,
          (_read("SELECT id FROM comments WHERE comment LIKE ?", 2500,
                 read_bytes=64 * 1024, miss_ratio=0.15),),
          weight=3.0),
        i("SearchInUsers", 480, 1200,
          (_read("SELECT id,nickname FROM users WHERE nickname LIKE ?", 1500,
                 read_bytes=32 * 1024, miss_ratio=0.10),),
          weight=2.0),
        i("AuthorLogin", 420, 900,
          (_read("SELECT id,password FROM users WHERE nickname=?", 450),),
          weight=0.8),
        i("AuthorTasks", 420, 1000,
          (_read("SELECT id,title FROM submissions", 800),),
          weight=0.6),
        i("ReviewStories", 450, 1300,
          (_read("SELECT * FROM submissions ORDER BY date", 900),
           _read("SELECT count(*) FROM submissions", 350)),
          weight=0.7),
        i("AcceptStory", 470, 1300,
          (_write("INSERT INTO stories SELECT * FROM submissions WHERE id=?",
                  1200, commit_bytes=8 * 1024),
           _write("DELETE FROM submissions WHERE id=?", 600)),
          weight=0.4),
        i("RejectStory", 440, 1000,
          (_write("DELETE FROM submissions WHERE id=?", 700),),
          weight=0.3),
    )


def fanout_interactions() -> tuple[InteractionProfile, ...]:
    """The catalog restructured as a fan-out microservice graph.

    Every multi-query interaction becomes fan-out/fan-in (the servlet
    issues its statements concurrently and joins), and the hottest page
    — ``StoriesOfTheDay`` — grows to a three-branch aggregation, the
    story list, the comment counts, and the moderation summary fetched
    from three backend services in parallel.
    """
    profiles = []
    for profile in default_interactions():
        if profile.name == "StoriesOfTheDay":
            profile = dataclasses.replace(
                profile,
                queries=(
                    _read("SELECT id,title FROM stories WHERE date=CURDATE()"),
                    _read("SELECT count(*) FROM comments WHERE story_id=?", 500),
                    _read("SELECT avg(rating) FROM comments WHERE story_id=?",
                          450),
                ),
                fanout=True,
            )
        elif len(profile.queries) > 1:
            profile = dataclasses.replace(profile, fanout=True)
        profiles.append(profile)
    return tuple(profiles)


#: Default read-write mix: the catalog weights as given (~5% writes).
READ_WRITE_MIX = "read_write"
#: Browse-only mix: write interactions removed.
BROWSE_ONLY_MIX = "browse_only"
#: Fan-out mix: multi-query interactions issue their statements
#: concurrently (fan-out/fan-in) instead of sequentially.
FANOUT_MIX = "fanout"


def interaction_by_name(name: str) -> InteractionProfile:
    """Look one interaction up by name."""
    for profile in default_interactions():
        if profile.name == name:
            return profile
    raise ConfigError(f"unknown RUBBoS interaction {name!r}")
