"""RUBBoS benchmark workload: interactions, mixes, workload specs."""

from repro.rubbos.interactions import (
    BROWSE_ONLY_MIX,
    FANOUT_MIX,
    READ_WRITE_MIX,
    InteractionProfile,
    QuerySpec,
    default_interactions,
    fanout_interactions,
    interaction_by_name,
)
from repro.rubbos.transitions import (
    START_STATE,
    TransitionModel,
    default_transition_table,
)
from repro.rubbos.workload import InteractionMix, WorkloadSpec

__all__ = [
    "BROWSE_ONLY_MIX",
    "FANOUT_MIX",
    "InteractionMix",
    "START_STATE",
    "TransitionModel",
    "default_transition_table",
    "InteractionProfile",
    "QuerySpec",
    "READ_WRITE_MIX",
    "WorkloadSpec",
    "default_interactions",
    "fanout_interactions",
    "interaction_by_name",
]
