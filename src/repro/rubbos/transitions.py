"""The RUBBoS user transition model.

The real RUBBoS client emulator does not draw interactions
independently: each emulated user walks a Markov chain whose
transition table encodes plausible browsing behaviour (you view a
story *after* landing on a story list; you store a comment *after*
submitting one).  This module provides that session model; the
simpler weighted-random mix remains available for quick runs.

The transition table here is hand-built to mirror the benchmark's
default "read-write" user behaviour, not copied from the original
properties files; the stationary distribution stays browse-heavy.
"""

from __future__ import annotations

import random

from repro.common.errors import ConfigError
from repro.rubbos.interactions import InteractionProfile, default_interactions

__all__ = ["TransitionModel", "default_transition_table", "START_STATE"]

#: The state a fresh session starts from (before the first request).
START_STATE = "_start"


def default_transition_table() -> dict[str, list[tuple[str, float]]]:
    """Per-state successor distributions (probabilities sum to 1).

    Unlisted interactions are reachable through the hub states
    (``Home``, ``StoriesOfTheDay``, ``Search``), like the real table's
    "back to home" columns.
    """
    return {
        START_STATE: [("Home", 0.7), ("StoriesOfTheDay", 0.3)],
        "Home": [
            ("StoriesOfTheDay", 0.45),
            ("BrowseCategories", 0.25),
            ("Search", 0.15),
            ("OlderStories", 0.10),
            ("AuthorLogin", 0.05),
        ],
        "StoriesOfTheDay": [
            ("ViewStory", 0.60),
            ("OlderStories", 0.15),
            ("Home", 0.15),
            ("Search", 0.10),
        ],
        "BrowseCategories": [
            ("BrowseStoriesByCategory", 0.75),
            ("Home", 0.25),
        ],
        "BrowseStoriesByCategory": [
            ("ViewStory", 0.60),
            ("BrowseCategories", 0.20),
            ("Home", 0.20),
        ],
        "OlderStories": [
            ("ViewStory", 0.55),
            ("OlderStories", 0.20),
            ("Home", 0.25),
        ],
        "ViewStory": [
            ("ViewComment", 0.40),
            ("SubmitComment", 0.08),
            ("StoriesOfTheDay", 0.27),
            ("Home", 0.25),
        ],
        "ViewComment": [
            ("ViewStory", 0.35),
            ("ModerateComment", 0.05),
            ("SubmitComment", 0.10),
            ("Home", 0.50),
        ],
        "ModerateComment": [("StoreModerateLog", 0.80), ("Home", 0.20)],
        "StoreModerateLog": [("Home", 1.0)],
        "SubmitComment": [("StoreComment", 0.85), ("Home", 0.15)],
        "StoreComment": [("ViewStory", 0.50), ("Home", 0.50)],
        "Search": [
            ("SearchInStories", 0.55),
            ("SearchInComments", 0.25),
            ("SearchInUsers", 0.20),
        ],
        "SearchInStories": [("ViewStory", 0.60), ("Search", 0.15), ("Home", 0.25)],
        "SearchInComments": [("ViewComment", 0.55), ("Search", 0.15), ("Home", 0.30)],
        "SearchInUsers": [("Home", 0.70), ("Search", 0.30)],
        "AuthorLogin": [("AuthorTasks", 0.90), ("Home", 0.10)],
        "AuthorTasks": [
            ("ReviewStories", 0.55),
            ("SubmitStory", 0.35),
            ("Home", 0.10),
        ],
        "ReviewStories": [
            ("AcceptStory", 0.45),
            ("RejectStory", 0.30),
            ("AuthorTasks", 0.25),
        ],
        "AcceptStory": [("ReviewStories", 0.60), ("Home", 0.40)],
        "RejectStory": [("ReviewStories", 0.60), ("Home", 0.40)],
        "SubmitStory": [("StoreStory", 0.85), ("AuthorTasks", 0.15)],
        "StoreStory": [("AuthorTasks", 0.50), ("Home", 0.50)],
        "Register": [("RegisterUser", 0.80), ("Home", 0.20)],
        "RegisterUser": [("Home", 1.0)],
    }


class TransitionModel:
    """A per-session Markov walk over the interaction catalog.

    Examples
    --------
    >>> import random
    >>> model = TransitionModel()
    >>> session = model.new_session()
    >>> first = model.advance(session, random.Random(1))
    >>> first.name in ("Home", "StoriesOfTheDay")
    True
    """

    def __init__(
        self, table: dict[str, list[tuple[str, float]]] | None = None
    ) -> None:
        self._table = table if table is not None else default_transition_table()
        self._validate()
        self._profiles: dict[str, InteractionProfile] = {
            p.name: p for p in default_interactions()
        }

    def _validate(self) -> None:
        known = {p.name for p in default_interactions()} | {START_STATE}
        if START_STATE not in self._table:
            raise ConfigError(f"transition table needs a {START_STATE!r} state")
        for state, successors in self._table.items():
            if state not in known:
                raise ConfigError(f"unknown state {state!r}")
            if not successors:
                raise ConfigError(f"state {state!r} has no successors")
            total = sum(p for _, p in successors)
            if abs(total - 1.0) > 1e-6:
                raise ConfigError(
                    f"state {state!r} probabilities sum to {total}, not 1"
                )
            for successor, probability in successors:
                if successor not in known or successor == START_STATE:
                    raise ConfigError(
                        f"state {state!r} transitions to unknown {successor!r}"
                    )
                if probability < 0:
                    raise ConfigError(f"negative probability in {state!r}")

    def new_session(self) -> dict:
        """Fresh per-user session state."""
        return {"state": START_STATE, "steps": 0}

    def advance(self, session: dict, rng: random.Random) -> InteractionProfile:
        """Move the session one step; returns the interaction to issue.

        States with no outgoing entry (a leaf not in the table) fall
        back to ``Home``, like the benchmark's back-to-home default.
        """
        successors = self._table.get(session["state"])
        if successors is None:
            successors = [("Home", 1.0)]
        names = [name for name, _ in successors]
        weights = [probability for _, probability in successors]
        chosen = rng.choices(names, weights=weights, k=1)[0]
        session["state"] = chosen
        session["steps"] += 1
        return self._profiles[chosen]

    def reachable_states(self) -> set[str]:
        """Interactions reachable from the start state."""
        seen: set[str] = set()
        frontier = [START_STATE]
        while frontier:
            state = frontier.pop()
            for successor, _ in self._table.get(state, [("Home", 1.0)]):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen

    def stationary_write_share(self, rng: random.Random, steps: int = 20_000) -> float:
        """Empirical share of write interactions on a long walk."""
        session = self.new_session()
        writes = 0
        for _ in range(steps):
            if self.advance(session, rng).is_write:
                writes += 1
        return writes / steps
